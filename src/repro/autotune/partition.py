"""The single partitioner module: every load-balancing split lives here.

Two strategies for the same problem — divide per-index ``costs`` over
``NP`` processors so the maximum per-processor work is small:

* :func:`balanced_bounds` — the greedy prefix-sum splitter.  Its pieces
  are **contiguous**, which is exactly what ``GENERAL_BLOCK(G)`` can
  express (§4.1.2): the returned list is the bounds vector ``G``.
* :func:`lpt_partition` — greedy longest-processing-time.  Its pieces
  are **non-contiguous** (heaviest indices scatter across processors),
  which no BLOCK/CYCLIC/GENERAL_BLOCK form can express — the owner
  array it returns is what an ``INDIRECT`` distribution takes.

LPT's makespan is never worse than the contiguous splitter's (it
optimizes over a strictly larger feasible set); the splitter is what a
*remappable* layout can actually adopt.  Both are consumed by the
distribution layer (:meth:`GeneralBlock.balanced_for_costs`), the
irregular workloads (:mod:`repro.workloads.irregular`) and the autotune
advisor — one implementation, three front doors.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["balanced_bounds", "imbalance", "lpt_partition",
           "partition_work"]

CostsLike = Union[Sequence[float], np.ndarray]


def balanced_bounds(costs: CostsLike, np_: int,
                    lower: int = 1) -> list[int]:
    """GENERAL_BLOCK bounds balancing ``costs`` over ``np_`` contiguous
    blocks (greedy prefix-sum splitter — the classic load-balancing use
    of GENERAL_BLOCK the paper motivates).

    ``lower`` is the dimension's lower bound; the returned ``NP - 1``
    entries are cumulative upper bounds in global index space, directly
    usable as the ``G`` vector of ``GENERAL_BLOCK(G)``.  Blocks may come
    out empty (adjacent equal bounds) under extreme skew — legal per the
    format's binding rules.
    """
    weights = np.asarray(costs, dtype=np.float64)
    n = len(weights)
    prefix = np.concatenate(([0.0], np.cumsum(weights)))
    total = prefix[-1]
    bounds: list[int] = []
    j = 0
    for p in range(1, np_):
        target = total * p / np_
        # smallest j with prefix[j] >= target; keep monotone
        j = max(j, int(np.searchsorted(prefix, target, side="left")))
        j = min(j, n)
        bounds.append(lower - 1 + j)
    return bounds


def lpt_partition(costs: CostsLike, n_processors: int) -> np.ndarray:
    """Greedy longest-processing-time partition: heaviest indices first,
    each to the currently least-loaded processor.

    The resulting owner array is non-contiguous in general — it needs an
    ``INDIRECT`` distribution, the user-defined generality the paper
    credits Kali/Vienna Fortran with.
    """
    weights = np.asarray(costs, dtype=np.float64)
    order = np.argsort(weights)[::-1]
    work = np.zeros(n_processors)
    owner = np.empty(len(weights), dtype=np.int64)
    for idx in order:
        p = int(work.argmin())
        owner[idx] = p
        work[p] += weights[idx]
    return owner


def partition_work(costs: CostsLike, owner_of_index: np.ndarray,
                   n_processors: int) -> np.ndarray:
    """Per-processor work vector of a 1-D partition."""
    weights = np.asarray(costs, dtype=np.float64)
    owners = np.asarray(owner_of_index)
    return np.bincount(owners, weights=weights, minlength=n_processors)


def imbalance(work: np.ndarray) -> float:
    """Max/mean ratio of a per-processor work vector (1.0 = perfect)."""
    vector = np.asarray(work, dtype=np.float64)
    mean = float(vector.sum()) / max(len(vector), 1)
    return float(vector.max() / mean) if mean > 0 else 1.0
