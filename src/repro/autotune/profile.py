"""The measurement half of the feedback loop: a passive work profile.

A :class:`WorkProfile` hangs off an accountant as its ``profile``
attribute; :func:`~repro.engine.executor.charge_schedule` — the single
deposit seam both executors share — calls :meth:`WorkProfile.observe`
after building each statement's report.  Observation is strictly
read-only: the profile copies per-processor work vectors and per-pattern
word attributions out of the schedule/report, and never touches the
machine ledgers — the bit-identical accounting contract of the seam is
untouched by measurement.

Marks (:meth:`WorkProfile.mark` / :meth:`WorkProfile.observed_since`)
give the tuner its trip-boundary deltas: "did the observation trips
actually run work" is the feedback gate between the advisor's static
model and a real REDISTRIBUTE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["ProfileMark", "WorkProfile"]


@dataclass(frozen=True)
class ProfileMark:
    """A snapshot of a profile's counters at one program point."""

    statements: int
    work: np.ndarray


class WorkProfile:
    """Per-processor work and per-pattern comm words, observed at the
    Accountant seam without perturbing what the machine is charged."""

    def __init__(self, n_processors: int) -> None:
        self.n_processors = int(n_processors)
        #: statement instances observed
        self.statements = 0
        #: accumulated per-processor iteration counts (owner-computes
        #: work), same vector the machine's ``compute`` ledger sees
        self.local_ops = np.zeros(self.n_processors, dtype=np.int64)
        #: full logical words across observed statements (pre-elision)
        self.logical_words = 0
        #: logical words attributed per classified pattern
        self.pattern_words: dict[str, int] = {}

    def observe(self, sched: Any, report: Any) -> None:
        """Record one charged statement (called by ``charge_schedule``)."""
        self.statements += 1
        work = getattr(sched, "work", None)
        if work is not None:
            self.local_ops += np.asarray(work, dtype=np.int64)
        self.logical_words += int(report.total_words)
        for pattern, words in report.words_by_pattern().items():
            self.pattern_words[pattern] = \
                self.pattern_words.get(pattern, 0) + int(words)

    def mark(self) -> ProfileMark:
        """Snapshot the counters (taken at loop entry by the tuner)."""
        return ProfileMark(self.statements, self.local_ops.copy())

    def observed_since(self, mark: ProfileMark) -> tuple[int, np.ndarray]:
        """(statements, per-processor work) accumulated since ``mark``."""
        return (self.statements - mark.statements,
                self.local_ops - mark.work)
