"""The actuation half of the feedback loop: adapt at trip boundaries.

An :class:`AutoTuner` rides inside a :class:`ProgramRunner` run under
``opt="auto"``.  At each loop's entry the runner asks
:meth:`AutoTuner.consider`; a non-``None`` :class:`Decision` tells the
runner to *split* the loop — run the observation trips unrolled, apply
the adaptation, then hand the remaining trips back to the ordinary
(replay-eligible) loop path.  Splitting is how replay legality is
preserved: the remap never lands inside a worker-resident replay
program, it lands *between* two legal loops.

Actuation itself goes through the runner's emit hook, which builds an
ordinary :class:`~repro.engine.ir.RedistributeNode` and executes it via
the same ``_remap`` path a user-recorded REDISTRIBUTE takes — epoch
bump, schedule-cache invalidation, accountant flush, ledger charge.
The tuner holds no side channel into the layouts (ARCHITECTURE
invariant 9); it only reads profiles and proposes nodes.

Honesty: every applied action is recorded as an :class:`Adaptation`
carrying both the *modeled* gain/cost and the words/messages actually
*charged* for the remap, surfaced on
:attr:`~repro.engine.passes.ProgramRunResult.adaptations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.autotune.advisor import Proposal, propose_for_loop
from repro.autotune.profile import ProfileMark, WorkProfile
from repro.engine.ir import LoopNode
from repro.machine.config import MachineConfig

__all__ = ["Adaptation", "AutoTuner", "Decision"]


@dataclass(frozen=True)
class Decision:
    """A planned loop split: observe trips ``[0, trip)``, adapt at the
    boundary, run the remaining ``count - trip`` trips normally."""

    loop: LoopNode
    trip: int
    proposals: tuple[Proposal, ...]
    #: profile snapshot at loop entry (the feedback baseline)
    mark: ProfileMark | None


@dataclass(frozen=True)
class Adaptation:
    """One applied proposal: modeled economics vs. what was charged."""

    array: str
    trip: int
    modeled_gain: float
    modeled_cost: float
    #: words/messages the machine was actually charged for the remap
    charged_words: int
    charged_messages: int
    #: the observation trips confirmed real work before acting
    confirmed: bool
    proposal: Proposal

    def describe(self) -> str:
        return (f"adapted {self.array} at trip {self.trip}: modeled "
                f"gain {self.modeled_gain:.1f} vs cost "
                f"{self.modeled_cost:.1f}; charged {self.charged_words} "
                f"words / {self.charged_messages} msgs")


class AutoTuner:
    """Decides once per static loop, adapts at most once per array."""

    def __init__(self, ds: Any, machine: Any, *,
                 config: MachineConfig | None = None,
                 profile: WorkProfile | None = None) -> None:
        self.ds = ds
        self.machine = machine
        self.config = config if config is not None else machine.config
        self.profile = profile
        #: every applied action, in order (report honesty)
        self.adaptations: list[Adaptation] = []
        self._adapted: set[str] = set()
        self._decided: set[int] = set()

    @property
    def adapted(self) -> frozenset[str]:
        return frozenset(self._adapted)

    def consider(self, loop: LoopNode) -> Decision | None:
        """Plan a split for ``loop`` (asked once per static loop node).

        ``None`` unless the advisor has a worthwhile proposal for an
        array not yet adapted this run — the legality (replay blockers,
        trips left, DYNAMIC) and economics (hysteresis over the exact
        remap price) both live in :func:`propose_for_loop`.
        """
        if id(loop) in self._decided:
            return None
        self._decided.add(id(loop))
        proposals = tuple(
            p for p in propose_for_loop(self.ds, self.config, loop,
                                        skip=self._adapted)
            if p.worthwhile)
        if not proposals:
            return None
        mark = self.profile.mark() if self.profile is not None else None
        return Decision(loop, proposals[0].trip, proposals, mark)

    def confirmed(self, decision: Decision) -> bool:
        """The feedback gate: the observation trips must have run real
        work through the profile before the static model is acted on."""
        if self.profile is None or decision.mark is None:
            return False
        statements, work = self.profile.observed_since(decision.mark)
        return statements > 0 and int(work.sum()) > 0

    def apply(self, decision: Decision,
              emit: Callable[[Proposal], Any]) -> list[Adaptation]:
        """Act on a confirmed decision through the runner's ``emit``
        hook (which executes an ordinary REDISTRIBUTE node); returns
        the recorded adaptations (empty when the gate declined)."""
        if not self.confirmed(decision):
            return []
        applied: list[Adaptation] = []
        stats = self.machine.stats
        for prop in decision.proposals:
            words0 = int(stats.total_words)
            msgs0 = int(stats.total_messages)
            emit(prop)
            adaptation = Adaptation(
                array=prop.array, trip=prop.trip,
                modeled_gain=prop.modeled_gain,
                modeled_cost=prop.modeled_cost,
                charged_words=int(stats.total_words) - words0,
                charged_messages=int(stats.total_messages) - msgs0,
                confirmed=True, proposal=prop)
            self._adapted.add(prop.array)
            self.adaptations.append(adaptation)
            applied.append(adaptation)
        return applied

    def summary(self) -> Iterable[str]:
        return [a.describe() for a in self.adaptations]
