"""repro.autotune — self-adaptive layouts: the model, closed-loop.

The paper's central claim is that mapping directives are a *model* the
system can reason about.  This subsystem closes the loop the static
stack leaves open: instead of the user hand-picking
``GeneralBlock.balanced_for_costs(...)`` and ``-O0/-O1/-O2``, a
``Session(opt="auto")`` run

* **measures** — a :class:`WorkProfile` observes per-processor work and
  per-pattern words at the Accountant seam, never touching the ledgers;
* **advises** — :func:`propose_for_loop` prices a balanced
  GENERAL_BLOCK re-partition (``modeled_gain_per_trip * trips_left``
  against the exact :func:`price_remap` transfer cost, with hysteresis)
  and :func:`select_passes` scores the ``-O2`` pass set per program;
* **acts** — an :class:`AutoTuner` splits the loop at a trip boundary
  and emits an ordinary REDISTRIBUTE node through the runner, so cache
  invalidation, epoch bumps and ledger charges all take the existing
  paths (no side channel mutates layouts).

Front doors: ``Session(opt="auto")``, ``repro run --opt auto``, and the
report-only ``repro tune FILE`` / :meth:`Session.tune` (identical
proposals, nothing executed).  Numerics are bit-identical to the static
run by construction — adaptations only change *where* data lives and
what the machine is charged, and each one is reported honestly on
``ProgramRunResult.adaptations``.
"""

from __future__ import annotations

from repro.autotune.advisor import (
    BOUNDARY_TRIP,
    HYSTERESIS,
    MIN_TRIPS_LEFT,
    TUNE_LOG,
    Proposal,
    TuneReport,
    modeled_work,
    propose_for_loop,
    select_passes,
    tune_graph,
)
from repro.autotune.partition import (
    balanced_bounds,
    imbalance,
    lpt_partition,
    partition_work,
)
from repro.autotune.profile import ProfileMark, WorkProfile
from repro.autotune.tuner import Adaptation, AutoTuner, Decision

__all__ = [
    "Adaptation", "AutoTuner", "BOUNDARY_TRIP", "Decision", "HYSTERESIS",
    "MIN_TRIPS_LEFT", "ProfileMark", "Proposal", "TUNE_LOG", "TuneReport",
    "WorkProfile", "balanced_bounds", "imbalance", "lpt_partition",
    "modeled_work", "partition_work", "propose_for_loop", "select_passes",
    "tune_graph",
]
