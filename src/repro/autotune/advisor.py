"""The advisor: candidate actions priced by the alpha-beta model.

Everything here is *static* and *read-only*: proposals are computed from
declared cost profiles (:meth:`DataSpace.set_cost_profile`), the current
owner maps, and the exact :func:`~repro.engine.redistribute.price_remap`
transfer matrix — no execution, no scope mutation.  That is what makes
``repro tune`` (report-only) and the runtime tuner agree by
construction: both call :func:`propose_for_loop` against the same scope
and get the identical :class:`Proposal`.

A proposal's economics follow the paper's own cost vocabulary:

* gain — ``flop * (max weighted work before - after)`` per referencing
  statement instance, times the statement instances per trip, times the
  trips left after the adaptation boundary;
* cost — ``alpha * messages + beta * words`` of the exact remap
  transfer matrix;
* adopt iff ``gain > HYSTERESIS * cost`` — the hysteresis margin keeps
  marginal crossovers from thrashing layouts.

:func:`select_passes` is the second candidate-action family: a
per-program ``-O2`` pass configuration scored by the same model
(coalescing buys ``alpha`` per merged message — worthless at
``alpha=0``; subsumption buys ``beta`` per contained word — worthless at
``beta=0`` or without repeated same-source references).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.engine.analysis import replay_blockers
from repro.engine.ir import LoopNode, Node, ProgramGraph, StatementNode
from repro.machine.config import MachineConfig

__all__ = ["BOUNDARY_TRIP", "HYSTERESIS", "MIN_TRIPS_LEFT", "Proposal",
           "TUNE_LOG", "TuneReport", "modeled_work", "propose_for_loop",
           "select_passes", "tune_graph"]

#: modeled gain must exceed HYSTERESIS x remap cost to adopt
HYSTERESIS = 1.25

#: never adapt with fewer trips left — the last trip can never amortize
#: a remap, and one trip of margin keeps the decision robust
MIN_TRIPS_LEFT = 2

#: the adaptation boundary: trips [0, BOUNDARY_TRIP) are observed first
#: (the feedback half of the loop), the remap lands at this boundary
BOUNDARY_TRIP = 1


def modeled_work(dist: Any, costs: np.ndarray,
                 n_processors: int) -> np.ndarray:
    """Per-processor weighted work under ``dist``: the per-index costs
    along dimension 1, broadcast over the remaining dimensions,
    accumulated onto each element's primary owner."""
    om = dist.primary_owner_map()
    weights = np.asarray(costs, dtype=np.float64)
    shape = (len(weights),) + (1,) * (om.ndim - 1)
    grid = np.broadcast_to(weights.reshape(shape), om.shape)
    return np.bincount(om.reshape(-1), weights=grid.reshape(-1),
                       minlength=n_processors)


@dataclass(frozen=True)
class Proposal:
    """One candidate GENERAL_BLOCK re-partition with its economics."""

    array: str
    #: proposed format list (balanced GENERAL_BLOCK on dimension 1,
    #: remaining formats preserved)
    formats: tuple
    #: the array's current processor target, preserved
    to: Any
    #: the loop-trip boundary the remap would land at
    trip: int
    trips_left: int
    #: statement instances per trip referencing the array
    refs_per_trip: int
    per_trip_gain: float
    #: per_trip_gain * trips_left
    modeled_gain: float
    #: alpha * messages + beta * words of the exact remap matrix
    modeled_cost: float
    moved_words: int
    messages: int
    imbalance_before: float
    imbalance_after: float
    #: modeled per-trip compute makespan under the current / proposed
    #: layout (flop * max weighted work * refs per trip)
    makespan_before: float
    makespan_after: float

    @property
    def worthwhile(self) -> bool:
        return self.modeled_gain > HYSTERESIS * self.modeled_cost

    @property
    def improvement(self) -> float:
        """Fractional per-trip makespan improvement (0.62 = 62%)."""
        if self.makespan_before <= 0:
            return 0.0
        return 1.0 - self.makespan_after / self.makespan_before

    def describe(self) -> str:
        verdict = "ADAPT" if self.worthwhile else "keep"
        return (f"{verdict} {self.array} -> {self.formats[0]} at trip "
                f"{self.trip}: gain {self.per_trip_gain:.1f}/trip x "
                f"{self.trips_left} trips = {self.modeled_gain:.1f} vs "
                f"remap cost {self.modeled_cost:.1f} "
                f"({self.moved_words} words, {self.messages} msgs); "
                f"imbalance {self.imbalance_before:.2f} -> "
                f"{self.imbalance_after:.2f}")


def _ref_counts(loop: LoopNode) -> dict[str, int]:
    """Statement instances per single trip of ``loop`` referencing each
    array (nested loop trip counts multiply)."""
    counts: dict[str, int] = {}

    def visit(nodes: Sequence[Node], mult: int) -> None:
        for node in nodes:
            if isinstance(node, LoopNode):
                visit(node.body, mult * node.count)
            elif isinstance(node, StatementNode):
                for name in node.reads() | node.writes():
                    counts[name] = counts.get(name, 0) + mult

    visit(loop.body, 1)
    return counts


def propose_for_loop(ds: Any, config: MachineConfig, loop: LoopNode, *,
                     boundary_trip: int = BOUNDARY_TRIP,
                     skip: Iterable[str] = ()) -> list[Proposal]:
    """Candidate re-partitions for one loop, priced against ``config``.

    Empty unless the loop has at least ``MIN_TRIPS_LEFT`` trips after
    the boundary (never adapt on the last trip), is free of replay
    blockers (a mid-loop layout or storage event makes the split
    illegal), and references a profiled, explicitly-formatted DYNAMIC
    array whose first dimension is distributed.
    """
    profiles = getattr(ds, "cost_profiles", None)
    if not profiles:
        return []
    trips_left = loop.count - boundary_trip
    if trips_left < MIN_TRIPS_LEFT:
        return []
    if replay_blockers(loop):
        return []
    refs = _ref_counts(loop)
    excluded = set(skip)
    out: list[Proposal] = []
    for name in sorted(refs):
        if name in excluded or name not in profiles:
            continue
        proposal = _propose_array(ds, config, name, profiles[name],
                                  refs[name], boundary_trip, trips_left)
        if proposal is not None:
            out.append(proposal)
    return out


def _propose_array(ds: Any, config: MachineConfig, name: str,
                   costs: np.ndarray, refs_per_trip: int, trip: int,
                   trips_left: int) -> Proposal | None:
    from repro.autotune.partition import balanced_bounds
    from repro.core.dataspace import RemapEvent
    from repro.distributions.distribution import FormatDistribution
    from repro.distributions.general_block import GeneralBlock
    from repro.engine.redistribute import price_remap

    arr = getattr(ds, "arrays", {}).get(name)
    if arr is None or not getattr(arr, "dynamic", False) \
            or not arr.is_allocated:
        return None
    try:
        old = ds.distribution_of(name)
    except Exception:
        return None
    formats = getattr(old, "formats", None)
    if formats is None or getattr(old, "is_replicated", False):
        return None     # aligned/constructed/replicated: out of scope
    weights = np.asarray(costs, dtype=np.float64)
    dim0 = arr.domain.dims[0]
    if len(weights) != len(dim0):
        return None     # profile declared against a different extent
    if not formats[0].consumes_target_dim:
        return None     # dimension 1 not distributed: nothing to split
    np0 = int(old.dims[0].np_)
    if np0 < 2:
        return None
    p = int(ds.ap.size)
    new_fmt = GeneralBlock(balanced_bounds(weights, np0, lower=dim0.lower))
    new_formats = (new_fmt,) + tuple(formats[1:])
    try:
        new = FormatDistribution(old.domain, new_formats, old.target,
                                 ds.ap)
    except Exception:
        return None
    work_before = modeled_work(old, weights, p)
    work_after = modeled_work(new, weights, p)
    per_ref_gain = config.flop * float(work_before.max()
                                       - work_after.max())
    per_trip_gain = per_ref_gain * refs_per_trip
    if per_trip_gain <= 0.0:
        return None     # current layout is already as good (or better)
    matrix, moved = price_remap(RemapEvent(name, old, new, "AUTOTUNE"), p)
    messages = int(np.count_nonzero(matrix))
    cost = config.alpha * messages + config.beta * float(matrix.sum())
    mean = float(work_before.sum()) / p
    return Proposal(
        array=name, formats=new_formats, to=old.target, trip=trip,
        trips_left=trips_left, refs_per_trip=refs_per_trip,
        per_trip_gain=per_trip_gain,
        modeled_gain=per_trip_gain * trips_left,
        modeled_cost=cost, moved_words=int(moved), messages=messages,
        imbalance_before=(float(work_before.max() / mean)
                          if mean > 0 else 1.0),
        imbalance_after=(float(work_after.max() / mean)
                         if mean > 0 else 1.0),
        makespan_before=(config.flop * float(work_before.max())
                         * refs_per_trip),
        makespan_after=(config.flop * float(work_after.max())
                        * refs_per_trip))


# ----------------------------------------------------------------------
# Pass selection: the -O2 set scored instead of always-on
# ----------------------------------------------------------------------
def _statement_instances(nodes: Sequence[Node], mult: int = 1) -> int:
    total = 0
    for node in nodes:
        if isinstance(node, LoopNode):
            total += _statement_instances(node.body, mult * node.count)
        elif isinstance(node, StatementNode):
            total += mult
    return total


def _static_statements(nodes: Sequence[Node]) -> Iterable[StatementNode]:
    for node in nodes:
        if isinstance(node, LoopNode):
            yield from _static_statements(node.body)
        elif isinstance(node, StatementNode):
            yield node


def _has_repeated_source(graph: ProgramGraph) -> bool:
    for node in _static_statements(graph.nodes):
        names = [r.name for r in node.stmt.rhs.refs()]
        if len(names) != len(set(names)):
            return True
    return False


def select_passes(graph: ProgramGraph, config: MachineConfig
                  ) -> tuple[frozenset[str], dict[str, str]]:
    """A per-program pass configuration scored by the alpha-beta model.

    Returns ``(passes, rationale)``.  Halo validity and CSE are always
    on (they elide provably redundant traffic at zero risk); coalescing,
    subsumption and hoisting switch on only when the model prices a
    positive saving for *this* program on *this* machine.
    """
    from repro.engine.passes import plan_hoists

    chosen = {"halo", "cse"}
    rationale = {
        "halo": "on: resident-face reuse saves every re-shipped word",
        "cse": "on: identical-schedule elision saves every re-shipped "
               "word",
    }
    instances = _statement_instances(graph.nodes)
    if config.alpha > 0.0 and instances >= 2:
        chosen.add("coalesce")
        rationale["coalesce"] = (
            f"on: alpha={config.alpha:g} per message startup, "
            f"{instances} statement instances to merge across")
    elif config.alpha <= 0.0:
        rationale["coalesce"] = "off: alpha=0, message startups are free"
    else:
        rationale["coalesce"] = ("off: single-statement program, "
                                 "nothing to merge")
    if config.beta > 0.0 and _has_repeated_source(graph):
        chosen.add("subsume")
        rationale["subsume"] = (
            f"on: beta={config.beta:g} per word, repeated same-source "
            "references can skip element-contained cells")
    elif config.beta <= 0.0:
        rationale["subsume"] = "off: beta=0, words are free"
    else:
        rationale["subsume"] = ("off: no statement reads one source "
                                "array twice")
    if plan_hoists(graph):
        chosen.add("hoist")
        rationale["hoist"] = ("on: loop-invariant remaps found, "
                              "run each once")
    else:
        rationale["hoist"] = "off: no hoistable remap in the program"
    return frozenset(chosen), rationale


# ----------------------------------------------------------------------
# The report-only front door (`repro tune` / Session.tune())
# ----------------------------------------------------------------------
@dataclass
class TuneReport:
    """The advisor's full report for one recorded program."""

    proposals: list[Proposal] = field(default_factory=list)
    passes: frozenset[str] = frozenset()
    rationale: dict[str, str] = field(default_factory=dict)

    @property
    def adoptions(self) -> list[Proposal]:
        """The proposals ``opt="auto"`` would actually act on."""
        return [p for p in self.proposals if p.worthwhile]

    def render(self) -> str:
        lines = ["autotune proposals:"]
        if not self.proposals:
            lines.append("  (none: no profiled DYNAMIC array inside an "
                         "adaptable loop)")
        for prop in self.proposals:
            lines.append("  " + prop.describe())
        ordered = ", ".join(sorted(self.passes)) if self.passes \
            else "(none)"
        lines.append(f"passes: {ordered}")
        for name in sorted(self.rationale):
            lines.append(f"  {name}: {self.rationale[name]}")
        return "\n".join(lines)


#: reports collected by report-only mode (``REPRO_TUNE=1``), the same
#: process-wide drain pattern as ``diagnostics.LINT_LOG``
TUNE_LOG: list[TuneReport] = []


def tune_graph(ds: Any, graph: ProgramGraph,
               config: MachineConfig | None = None) -> TuneReport:
    """Run the advisor statically over a recorded program.

    Walks the loops in static pre-order, proposing for each exactly what
    the runtime tuner would at that loop's entry (once a worthwhile
    proposal adopts an array, later loops skip it — mirroring the
    one-adaptation-per-array rule).  Nothing executes; calling this any
    number of times leaves the scope untouched.
    """
    if config is None:
        config = MachineConfig(int(ds.ap.size))
    proposals: list[Proposal] = []
    adapted: set[str] = set()

    def visit(nodes: Sequence[Node]) -> None:
        for node in nodes:
            if not isinstance(node, LoopNode):
                continue
            for prop in propose_for_loop(ds, config, node, skip=adapted):
                proposals.append(prop)
                if prop.worthwhile:
                    adapted.add(prop.array)
            visit(node.body)

    visit(graph.nodes)
    passes, rationale = select_passes(graph, config)
    return TuneReport(proposals=proposals, passes=passes,
                      rationale=rationale)
