"""Fortran 90 subscript triplets and arithmetic-progression algebra.

A subscript triplet ``lower : upper : stride`` (Fortran 90 rule R619) denotes
the ordered value sequence ``lower, lower+stride, ...`` not passing ``upper``.
Its length is ``MAX(INT((upper - lower + stride) / stride), 0)`` — the exact
Fortran formula, which the extent rule of §5.1 of the paper quotes verbatim.

Beyond the language-level semantics, this module supplies the set algebra the
rest of the library is built on.  Distribution ownership sets, alignment
images and communication sets are all *regular sections*, i.e. arithmetic
progressions per dimension, so the core operations are:

* :meth:`Triplet.intersect` — intersection of two progressions (solved with
  the extended Euclidean algorithm / CRT), itself a progression;
* :meth:`Triplet.affine_image` — the image ``{a*v + b}`` of a progression
  under an affine map, used to push alignment functions through sections;
* :meth:`Triplet.compose` — triplet-of-triplet subscripting, used for
  section-of-section argument passing (§8.1.2).

Triplets are immutable; all operations return new triplets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Triplet", "EMPTY_TRIPLET"]


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


@dataclass(frozen=True, slots=True)
class Triplet:
    """An immutable Fortran subscript triplet ``lower : upper : stride``.

    Parameters
    ----------
    lower, upper:
        Inclusive bounds of the described range.  ``upper`` may lie on the
        "wrong" side of ``lower`` for the given stride, in which case the
        triplet is empty (length 0), exactly as in Fortran.
    stride:
        Non-zero step.  Negative strides describe descending sequences.
    """

    lower: int
    upper: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride == 0:
            raise ValueError("triplet stride must be non-zero")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def of_extent(extent: int, lower: int = 1) -> "Triplet":
        """The standard triplet ``lower : lower+extent-1 : 1``."""
        if extent < 0:
            raise ValueError(f"extent must be non-negative, got {extent}")
        return Triplet(lower, lower + extent - 1, 1)

    @staticmethod
    def single(value: int) -> "Triplet":
        """The one-element triplet ``value : value : 1``."""
        return Triplet(value, value, 1)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        # MAX(INT((u - l + s) / s), 0); floor division agrees with Fortran
        # truncation here because the max() absorbs the only disagreeing case
        # (negative non-integral quotients, which clamp to 0 either way).
        return max((self.upper - self.lower + self.stride) // self.stride, 0)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def first(self) -> int:
        """The first value of the sequence (== ``lower``).  Empty: raises."""
        if self.is_empty:
            raise ValueError(f"empty triplet {self} has no first element")
        return self.lower

    @property
    def last(self) -> int:
        """The last value actually taken by the sequence."""
        n = len(self)
        if n == 0:
            raise ValueError(f"empty triplet {self} has no last element")
        return self.lower + (n - 1) * self.stride

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lower, self.lower + len(self) * self.stride,
                          self.stride))

    def values(self) -> np.ndarray:
        """The value sequence as an ``int64`` NumPy array (vectorized path)."""
        return self.lower + self.stride * np.arange(len(self), dtype=np.int64)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, np.integer)):
            return False
        n = len(self)
        if n == 0:
            return False
        offset = int(value) - self.lower
        if offset % self.stride != 0:
            return False
        pos = offset // self.stride
        return 0 <= pos < n

    def contains_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership test over an integer array."""
        n = len(self)
        if n == 0:
            return np.zeros(np.shape(values), dtype=bool)
        offset = np.asarray(values, dtype=np.int64) - self.lower
        pos = offset // self.stride
        return (offset % self.stride == 0) & (pos >= 0) & (pos < n)

    def position(self, value: int) -> int:
        """0-based position of ``value`` in the sequence."""
        if value not in self:
            raise ValueError(f"{value} is not in triplet {self}")
        return (value - self.lower) // self.stride

    def value_at(self, position: int) -> int:
        """Value at 0-based ``position``."""
        if not 0 <= position < len(self):
            raise IndexError(
                f"position {position} out of range for triplet {self} "
                f"of length {len(self)}")
        return self.lower + position * self.stride

    # ------------------------------------------------------------------
    # Canonical forms
    # ------------------------------------------------------------------
    def normalized(self) -> "Triplet":
        """A canonical triplet describing the same *sequence*.

        ``upper`` is tightened to the last value taken; empty triplets
        canonicalize to :data:`EMPTY_TRIPLET`; singletons get stride 1.
        """
        n = len(self)
        if n == 0:
            return EMPTY_TRIPLET
        if n == 1:
            return Triplet(self.lower, self.lower, 1)
        return Triplet(self.lower, self.last, self.stride)

    def as_ascending_set(self) -> "Triplet":
        """A canonical ascending triplet describing the same *set* of values.

        Descending sequences are reversed; the result always has positive
        stride (and tight bounds), making set operations directionless.
        """
        n = len(self)
        if n == 0:
            return EMPTY_TRIPLET
        if n == 1:
            return Triplet(self.lower, self.lower, 1)
        if self.stride > 0:
            return Triplet(self.lower, self.last, self.stride)
        return Triplet(self.last, self.lower, -self.stride)

    # ------------------------------------------------------------------
    # Set algebra (all on the *set* of values, direction-insensitive)
    # ------------------------------------------------------------------
    def intersect(self, other: "Triplet") -> "Triplet":
        """Intersection of the two value *sets*, as an ascending triplet.

        Two arithmetic progressions intersect in another arithmetic
        progression whose stride is ``lcm`` of the strides; the anchor is
        found by solving ``l1 + s1*i == l2 + s2*j`` with extended Euclid.
        This is the core primitive of analytic communication-set
        computation (engine S9).
        """
        a = self.as_ascending_set()
        b = other.as_ascending_set()
        if a.is_empty or b.is_empty:
            return EMPTY_TRIPLET
        lo = max(a.lower, b.lower)
        hi = min(a.last, b.last)
        if lo > hi:
            return EMPTY_TRIPLET
        s1, s2 = a.stride, b.stride
        g, x, _ = _egcd(s1, s2)
        diff = b.lower - a.lower
        if diff % g != 0:
            return EMPTY_TRIPLET
        lcm = s1 // g * s2
        # One common value: a.lower + s1 * x * (diff // g)  (mod lcm)
        common = a.lower + s1 * (x * (diff // g))
        # Smallest common value >= lo (floor division handles both signs):
        common -= (common - lo) // lcm * lcm
        if common > hi:
            return EMPTY_TRIPLET
        return Triplet(common, hi, lcm).normalized()

    def overlaps(self, other: "Triplet") -> bool:
        return not self.intersect(other).is_empty

    def is_subset_of(self, other: "Triplet") -> bool:
        """True iff every value of ``self`` is a value of ``other``."""
        a = self.as_ascending_set()
        if a.is_empty:
            return True
        b = other.as_ascending_set()
        if b.is_empty:
            return False
        if a.lower not in b or a.last not in b:
            return False
        if len(a) <= 2:
            return True
        return a.stride % b.stride == 0

    # ------------------------------------------------------------------
    # Maps
    # ------------------------------------------------------------------
    def shift(self, offset: int) -> "Triplet":
        """The triplet translated by ``offset``."""
        return Triplet(self.lower + offset, self.upper + offset, self.stride)

    def affine_image(self, a: int, b: int) -> "Triplet":
        """The image ``{a*v + b : v in self}`` as a triplet.

        ``a == 0`` collapses the set to the singleton ``{b}`` (for a
        non-empty source).  Negative ``a`` reverses direction; the result is
        returned in ascending canonical form since images are used as sets.
        """
        n = len(self)
        if n == 0:
            return EMPTY_TRIPLET
        if a == 0:
            return Triplet.single(b)
        lo = a * self.first + b
        hi = a * self.last + b
        return Triplet(lo, hi, a * self.stride).as_ascending_set()

    def compose(self, inner: "Triplet", base: int = 1) -> "Triplet":
        """Triplet-of-triplet subscripting: ``self`` sliced by ``inner``.

        ``self`` is viewed as a sequence indexed ``base, base+1, ...``;
        ``inner`` selects positions in that index space.  The result is the
        triplet of *values* of ``self`` at those positions, preserving
        order.  This realizes section-of-section composition: passing
        ``A(2:996:2)`` and then sub-sectioning the dummy (§8.1.2).
        """
        n_inner = len(inner)
        if n_inner == 0:
            return EMPTY_TRIPLET
        first_pos = inner.first - base
        last_pos = inner.last - base
        n = len(self)
        if not (0 <= first_pos < n and 0 <= last_pos < n):
            raise IndexError(
                f"inner triplet {inner} (base {base}) selects positions "
                f"outside the {n}-element sequence {self}")
        lo = self.lower + first_pos * self.stride
        hi = self.lower + last_pos * self.stride
        return Triplet(lo, hi, self.stride * inner.stride).normalized()

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if self.stride == 1:
            return f"{self.lower}:{self.upper}"
        return f"{self.lower}:{self.upper}:{self.stride}"

    def __repr__(self) -> str:
        return f"Triplet({self.lower}, {self.upper}, {self.stride})"


#: Canonical empty triplet (``1:0:1``).
EMPTY_TRIPLET = Triplet(1, 0, 1)
