"""Fortran 90 index machinery (substrate S1).

This subpackage implements the index-domain model of §2.1 of the paper:

* :class:`~repro.fortran.triplet.Triplet` — a Fortran 90 subscript triplet
  ``lower : upper : stride`` (R619) together with the full arithmetic-
  progression algebra needed by the rest of the system (membership,
  intersection, affine images, composition),
* :class:`~repro.fortran.domain.IndexDomain` — a rank-*n* ordered set of
  subscript tuples represented by a subscript-triplet list of length *n*,
* :class:`~repro.fortran.section.ArraySection` — a Fortran array section
  (triplet or scalar subscript per dimension) with composition and
  parent-index translation, and
* :mod:`~repro.fortran.storage` — Fortran column-major sequence association,
  used both for array storage layout and for the EQUIVALENCE-style mapping
  of processor arrangements onto the abstract processor arrangement (§3).
"""

from repro.fortran.triplet import Triplet, EMPTY_TRIPLET
from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection, full_section
from repro.fortran.storage import (
    sequence_offset,
    index_from_offset,
    StorageAssociation,
)

__all__ = [
    "Triplet",
    "EMPTY_TRIPLET",
    "IndexDomain",
    "ArraySection",
    "full_section",
    "sequence_offset",
    "index_from_offset",
    "StorageAssociation",
]
