"""Fortran sequence/storage association (column-major).

§3 of the paper maps each processor arrangement onto the implicit abstract
processor arrangement AP "in the same way as storage association is defined
for the Fortran 90 EQUIVALENCE statement, with abstract processors playing
the role of the storage units".  This module provides exactly that
machinery, shared between array storage layout and processor mapping:

* :func:`sequence_offset` — column-major 0-based offset of an index tuple
  inside an index domain;
* :func:`index_from_offset` — its inverse;
* :class:`StorageAssociation` — association of an index domain with a linear
  store at a given origin, with overlap queries (two arrangements associated
  with overlapping storage *share* the underlying units — the sharing rule
  of §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fortran.domain import IndexDomain

__all__ = ["sequence_offset", "index_from_offset", "StorageAssociation"]


def sequence_offset(domain: IndexDomain, index: Sequence[int]) -> int:
    """Column-major 0-based offset of ``index`` within ``domain``."""
    return domain.linear_index(index)


def index_from_offset(domain: IndexDomain, offset: int) -> tuple[int, ...]:
    """Inverse of :func:`sequence_offset`."""
    return domain.index_at(offset)


@dataclass(frozen=True)
class StorageAssociation:
    """Association of an index domain with a linear store.

    Element ``index`` of the domain occupies storage unit
    ``origin + sequence_offset(domain, index)``.  Two associations whose
    unit ranges intersect *share* storage (for processor arrangements:
    share physical processors, §3).
    """

    domain: IndexDomain
    origin: int = 0

    def unit_of(self, index: Sequence[int]) -> int:
        """Storage unit occupied by ``index``."""
        return self.origin + sequence_offset(self.domain, index)

    def index_of_unit(self, unit: int) -> tuple[int, ...]:
        """Index tuple stored at ``unit`` (raises if outside the extent)."""
        return index_from_offset(self.domain, unit - self.origin)

    @property
    def extent(self) -> int:
        """Number of storage units occupied."""
        return self.domain.size

    @property
    def units(self) -> range:
        """The half-open unit range ``[origin, origin + extent)``."""
        return range(self.origin, self.origin + self.extent)

    def shares_units_with(self, other: "StorageAssociation") -> bool:
        """True iff the two associations overlap in at least one unit."""
        lo = max(self.origin, other.origin)
        hi = min(self.origin + self.extent, other.origin + other.extent)
        return lo < hi

    def shared_units(self, other: "StorageAssociation") -> range:
        lo = max(self.origin, other.origin)
        hi = min(self.origin + self.extent, other.origin + other.extent)
        return range(lo, max(lo, hi))
