"""Fortran array sections.

An array section selects a regular sub-grid of a parent index domain: each
dimension is subscripted either by a scalar (the dimension is *dropped* from
the section's rank, as in Fortran) or by a subscript triplet.  Sections are
the currency of the execution engine (assignments operate on sections) and
of procedure-boundary semantics (§8.1.2 passes ``A(2:996:2)``).

A section has its own *standard* index domain ``[1:n1, 1:n2, ...]`` — this is
what a dummy argument receiving the section sees — plus an exact translation
between that domain and parent indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

import numpy as np

from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet

__all__ = ["ArraySection", "full_section"]

Subscript = Union[int, Triplet]


@dataclass(frozen=True)
class ArraySection:
    """A regular section of a parent index domain.

    Parameters
    ----------
    parent:
        The index domain being sectioned (``I^A`` of the parent array).
    subscripts:
        One entry per parent dimension: an ``int`` (scalar subscript — the
        dimension is dropped) or a :class:`Triplet` (kept).  Every subscript
        must select values inside the parent dimension.
    """

    parent: IndexDomain
    subscripts: tuple[Subscript, ...]

    def __init__(self, parent: IndexDomain,
                 subscripts: Sequence[Subscript]) -> None:
        subscripts = tuple(subscripts)
        if len(subscripts) != parent.rank:
            raise ValueError(
                f"section has {len(subscripts)} subscripts for a rank-"
                f"{parent.rank} parent")
        for k, (sub, dim) in enumerate(zip(subscripts, parent.dims)):
            if isinstance(sub, (int, np.integer)):
                if int(sub) not in dim:
                    raise IndexError(
                        f"scalar subscript {sub} outside dimension {k + 1} "
                        f"({dim}) of parent {parent}")
            elif isinstance(sub, Triplet):
                if not sub.is_empty and not (
                        sub.first in dim and sub.last in dim):
                    raise IndexError(
                        f"triplet subscript {sub} outside dimension {k + 1} "
                        f"({dim}) of parent {parent}")
            else:
                raise TypeError(f"bad subscript {sub!r}")
        norm = tuple(int(s) if isinstance(s, (int, np.integer)) else s
                     for s in subscripts)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "subscripts", norm)

    # ------------------------------------------------------------------
    @property
    def kept_dims(self) -> tuple[int, ...]:
        """0-based parent dimensions that survive into the section."""
        return tuple(k for k, s in enumerate(self.subscripts)
                     if isinstance(s, Triplet))

    @property
    def rank(self) -> int:
        return len(self.kept_dims)

    @property
    def triplets(self) -> tuple[Triplet, ...]:
        """The triplet subscripts of the kept dimensions, in order."""
        return tuple(s for s in self.subscripts if isinstance(s, Triplet))

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(t) for t in self.triplets)

    @property
    def size(self) -> int:
        n = 1
        for t in self.triplets:
            n *= len(t)
        return n

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def domain(self) -> IndexDomain:
        """The section's own standard index domain ``[1:n1, ..., 1:nr]``.

        This is the index domain a dummy argument declared ``X(:)`` sees
        when the section is passed to a procedure (§7, §8.1.2).
        """
        return IndexDomain.standard(*self.shape)

    # ------------------------------------------------------------------
    # Index translation
    # ------------------------------------------------------------------
    def to_parent(self, index: Sequence[int]) -> tuple[int, ...]:
        """Translate a section-domain index tuple to a parent index tuple."""
        index = tuple(index)
        if len(index) != self.rank:
            raise IndexError(
                f"rank-{self.rank} section subscripted with {index}")
        out = []
        it = iter(index)
        for s in self.subscripts:
            if isinstance(s, Triplet):
                i = next(it)
                out.append(s.value_at(i - 1))   # section domain is 1-based
            else:
                out.append(s)
        return tuple(out)

    def from_parent(self, index: Sequence[int]) -> tuple[int, ...]:
        """Inverse of :meth:`to_parent` (raises if not in the section)."""
        index = tuple(index)
        out = []
        for v, s in zip(index, self.subscripts):
            if isinstance(s, Triplet):
                out.append(s.position(v) + 1)
            elif v != s:
                raise IndexError(f"{index} not in section {self}")
        return tuple(out)

    def contains_parent(self, index: Sequence[int]) -> bool:
        """True iff the parent index tuple lies in the section."""
        index = tuple(index)
        if len(index) != self.parent.rank:
            return False
        for v, s in zip(index, self.subscripts):
            if isinstance(s, Triplet):
                if v not in s:
                    return False
            elif v != s:
                return False
        return True

    def parent_indices(self) -> Iterator[tuple[int, ...]]:
        """Enumerate the parent index tuples of the section (column-major)."""
        for idx in self.domain():
            yield self.to_parent(idx)

    def parent_triplet(self, dim: int) -> Triplet:
        """The parent-index triplet selected in parent dimension ``dim``
        (scalar subscripts are returned as singleton triplets)."""
        s = self.subscripts[dim]
        return s if isinstance(s, Triplet) else Triplet.single(s)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def compose(self, inner: "ArraySection") -> "ArraySection":
        """Section-of-section composition.

        ``inner`` must section *this* section's standard domain; the result
        is the equivalent direct section of the original parent.  Used when
        a procedure sub-sections a dummy that itself received a section.
        """
        if inner.parent != self.domain():
            raise ValueError(
                "inner section must be taken over the outer section's "
                f"standard domain {self.domain()}, got {inner.parent}")
        new_subs: list[Subscript] = []
        kept = iter(self.triplets)
        inner_it = iter(inner.subscripts)
        for s in self.subscripts:
            if isinstance(s, Triplet):
                i = next(inner_it)
                t = next(kept)
                if isinstance(i, Triplet):
                    new_subs.append(t.compose(i, base=1))
                else:
                    new_subs.append(t.value_at(i - 1))
            else:
                new_subs.append(s)
        return ArraySection(self.parent, new_subs)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"({inner}) of {self.parent}"


def full_section(domain: IndexDomain) -> ArraySection:
    """The section selecting every element of ``domain`` (all-``:``)."""
    return ArraySection(
        domain, tuple(Triplet(d.lower, d.last if len(d) else d.upper,
                              d.stride) for d in domain.dims))
