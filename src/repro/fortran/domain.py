"""Rank-*n* index domains (§2.1 of the paper).

An *index domain* ``I`` of rank ``n`` is an ordered set of subscript tuples
represented by a subscript-triplet list of length ``n``.  ``I`` is a
*standard* index domain iff the stride in each triplet is 1.  Every declared
array ``A`` is associated with a standard index domain ``I^A``; scalars are
modelled as the rank-0 domain with exactly one (empty) index tuple.

Enumeration, linearization and de-linearization follow Fortran column-major
order (first subscript varies fastest), which is also the sequence
association order used to map processor arrangements onto the abstract
processor arrangement (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.fortran.triplet import Triplet

__all__ = ["IndexDomain"]


@dataclass(frozen=True)
class IndexDomain:
    """An ordered set of rank-*n* subscript tuples (one triplet per dim).

    The rank-0 domain (``IndexDomain(())``) has exactly one element, the
    empty tuple — this is how scalars are accommodated in the model (§2.2).
    """

    dims: tuple[Triplet, ...]

    def __init__(self, dims: Iterable[Triplet]) -> None:
        object.__setattr__(self, "dims", tuple(dims))
        for d in self.dims:
            if not isinstance(d, Triplet):
                raise TypeError(f"index domain dims must be Triplets, got {d!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def standard(*extents: int) -> "IndexDomain":
        """The standard domain ``[1:e1, 1:e2, ...]``."""
        return IndexDomain(Triplet.of_extent(e) for e in extents)

    @staticmethod
    def of_bounds(*bounds: tuple[int, int]) -> "IndexDomain":
        """A domain from ``(lower, upper)`` pairs, stride 1 in every dim."""
        return IndexDomain(Triplet(lo, up, 1) for lo, up in bounds)

    @staticmethod
    def scalar() -> "IndexDomain":
        """The rank-0 domain of a scalar: exactly one element, ``()``."""
        return IndexDomain(())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent of every dimension."""
        return tuple(len(d) for d in self.dims)

    @property
    def lowers(self) -> tuple[int, ...]:
        return tuple(d.lower for d in self.dims)

    @property
    def uppers(self) -> tuple[int, ...]:
        """Tight upper bounds (last value taken in each dimension)."""
        return tuple(d.last for d in self.dims)

    @property
    def size(self) -> int:
        """Total number of index tuples (1 for the rank-0 domain)."""
        n = 1
        for d in self.dims:
            n *= len(d)
        return n

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    @property
    def is_standard(self) -> bool:
        """§2.1: standard iff every stride is 1."""
        return all(d.stride == 1 for d in self.dims)

    def extent(self, dim: int) -> int:
        """Extent of 0-based dimension ``dim``."""
        return len(self.dims[dim])

    def __contains__(self, index: object) -> bool:
        if not isinstance(index, tuple) or len(index) != self.rank:
            return False
        return all(i in d for i, d in zip(index, self.dims))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """Enumerate index tuples in Fortran column-major order."""
        if self.rank == 0:
            yield ()
            return
        if self.is_empty:
            return
        # column-major: first subscript fastest
        values = [list(d) for d in self.dims]
        idx = [0] * self.rank
        total = self.size
        for _ in range(total):
            yield tuple(values[k][idx[k]] for k in range(self.rank))
            for k in range(self.rank):
                idx[k] += 1
                if idx[k] < len(values[k]):
                    break
                idx[k] = 0

    # ------------------------------------------------------------------
    # Column-major linearization (sequence association)
    # ------------------------------------------------------------------
    def linear_index(self, index: Sequence[int]) -> int:
        """0-based column-major position of ``index`` within the domain."""
        index = tuple(index)
        if index not in self:
            raise IndexError(f"index {index} not in domain {self}")
        offset = 0
        mult = 1
        for v, d in zip(index, self.dims):
            offset += d.position(v) * mult
            mult *= len(d)
        return offset

    def index_at(self, linear: int) -> tuple[int, ...]:
        """Inverse of :meth:`linear_index`."""
        if not 0 <= linear < self.size:
            raise IndexError(
                f"linear index {linear} out of range for domain of size "
                f"{self.size}")
        out = []
        for d in self.dims:
            n = len(d)
            out.append(d.value_at(linear % n))
            linear //= n
        return tuple(out)

    def linear_indices(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`linear_index` over an ``(m, rank)`` array."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.rank == 0:
            return np.zeros(len(indices), dtype=np.int64)
        offset = np.zeros(indices.shape[0], dtype=np.int64)
        mult = 1
        for k, d in enumerate(self.dims):
            pos = (indices[:, k] - d.lower) // d.stride
            offset += pos * mult
            mult *= len(d)
        return offset

    # ------------------------------------------------------------------
    # Derived domains
    # ------------------------------------------------------------------
    def to_standard(self) -> "IndexDomain":
        """The standard domain with the same shape, rebased to 1."""
        return IndexDomain.standard(*self.shape)

    def drop_dims(self, dims_to_drop: Iterable[int]) -> "IndexDomain":
        """Domain with the 0-based dimensions in ``dims_to_drop`` removed."""
        drop = set(dims_to_drop)
        return IndexDomain(d for k, d in enumerate(self.dims) if k not in drop)

    def __str__(self) -> str:
        if self.rank == 0:
            return "[scalar]"
        return "[" + ", ".join(str(d) for d in self.dims) + "]"
