"""The data space: scope state and directive semantics (§2.4–§6).

A :class:`DataSpace` models "the data space A of all arrays that are
accessible in a given scope, and have been created, at a given time during
the execution of a program unit" (§2.4), together with:

* the alignment forest and its invariants;
* the distribution of every created array — explicit (DISTRIBUTE),
  derived (``CONSTRUCT`` through an alignment), implicit (policy), or
  frozen (after a disconnection);
* the dynamic directives REDISTRIBUTE (§4.2) and REALIGN (§5.2);
* ALLOCATE/DEALLOCATE semantics for allocatable arrays, including the
  propagation of specification-part mapping attributes to each allocation
  instance (§6).

Secondary arrays never carry a stored distribution: their mapping is the
lazily-CONSTRUCTed image of their primary's current distribution, so a
REDISTRIBUTE of a primary automatically "redistributes every array aligned
to it in such a way that the relationship expressed by the alignment
function is kept invariant" (§4.2).  Only when an array is *disconnected*
(REALIGN step 1, DEALLOCATE of its base) does the data space freeze its
then-current distribution into a stored one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.align.forest import AlignmentForest
from repro.align.function import AlignmentFunction, ClampMode
from repro.align.reduce import reduce_alignment
from repro.align.spec import AlignSpec
from repro.core.array import HpfArray
from repro.core.mapping import BlockFirstDimPolicy, ImplicitMappingPolicy
from repro.distributions.base import DistributionFormat
from repro.distributions.construct import construct
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.errors import (
    AllocationError,
    DistributionError,
    MappingError,
)
from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement, ScalarArrangement
from repro.processors.section import ProcessorSection

__all__ = ["DataSpace", "RemapEvent", "ScheduleCache"]

TargetLike = Union[None, str, ProcessorArrangement, ProcessorSection]
BoundsLike = Union[int, tuple[int, int]]


@dataclass(frozen=True)
class RemapEvent:
    """A dynamic mapping change (REDISTRIBUTE/REALIGN/procedure remap);
    the execution engine prices these as data movement."""

    array: str
    old: Distribution | None
    new: Distribution
    reason: str


@dataclass
class _DistEntry:
    dist: Distribution
    source: str   # 'explicit' | 'implicit' | 'frozen'


@dataclass
class ScheduleCache:
    """Memo table for compiled communication schedules.

    The container lives on the :class:`DataSpace` (the scope whose layout
    the schedules were compiled against) while the compiler lives in
    :mod:`repro.engine.schedule`.  Every layout mutation (DISTRIBUTE,
    REDISTRIBUTE, ALIGN, REALIGN, DEALLOCATE, procedure remaps) bumps the
    data space's ``layout_epoch`` and invalidates the *affected* entries:
    each entry is registered with the set of array names it was compiled
    against, and :meth:`invalidate_arrays` drops exactly the entries
    touching a remapped alignment forest.  Arrays in untouched forests
    keep their compiled schedules across an unrelated remap — the
    steady state of a phase-change program stays hot.

    The table is bounded (LRU, ``maxsize`` entries): a schedule retains
    O(iteration size) routing arrays, so a program sweeping over many
    structurally distinct statements evicts its oldest schedules instead
    of accumulating them for the lifetime of the layout.

    All mutating paths hold one re-entrant lock: concurrent sessions
    (the serving stack) funnel statements from many threads into one
    scope, and the eviction loop in :meth:`put` / the LRU-refresh pop in
    :meth:`get` are not atomic dict operations.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    maxsize: int = 256
    #: key -> (value, frozenset of array names the entry depends on)
    _entries: dict = field(default_factory=dict)
    #: array name -> set of cache keys depending on it
    _by_array: dict = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def get(self, key):
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                return None
            self.hits += 1
            # LRU refresh: move to the most-recent end of the dict
            self._entries[key] = self._entries.pop(key)
            return hit[0]

    def put(self, key, value, arrays=frozenset()) -> None:
        with self._lock:
            self.misses += 1
            if key in self._entries:
                # a concurrent compiler of the same statement won the
                # race; keep its entry (callers use their own object)
                return
            while len(self._entries) >= self.maxsize:
                self._unlink(next(iter(self._entries)))
                self.evictions += 1
            self._entries[key] = (value, frozenset(arrays))
            for name in arrays:
                self._by_array.setdefault(name, set()).add(key)

    def _unlink(self, key) -> None:
        _, arrays = self._entries.pop(key)
        for name in arrays:
            keys = self._by_array.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_array[name]

    def invalidate_arrays(self, names) -> None:
        """Drop every entry depending on any of ``names`` (the
        fine-grained path a remap of one alignment forest takes)."""
        with self._lock:
            stale = set()
            for name in names:
                stale |= self._by_array.get(name, set())
            if stale:
                self.invalidations += 1
                for key in stale:
                    self._unlink(key)

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
                self._by_array.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DataSpace:
    """A program-unit scope: arrays, arrangements, forest, distributions."""

    def __init__(self, n_processors: int = 4, *,
                 ap: AbstractProcessors | None = None,
                 policy: ImplicitMappingPolicy | None = None,
                 clamp: ClampMode = ClampMode.CLAMP) -> None:
        self.ap = ap if ap is not None else AbstractProcessors(n_processors)
        self.policy = policy if policy is not None else BlockFirstDimPolicy()
        self.clamp = clamp
        self.arrays: dict[str, HpfArray] = {}
        self.forest = AlignmentForest()
        self.env: dict[str, int] = {}
        self.remap_events: list[RemapEvent] = []
        self._dist: dict[str, _DistEntry] = {}
        self._constructed: dict[str, tuple[int, Distribution]] = {}
        self._pending_distribute: dict[
            str, tuple[tuple[DistributionFormat, ...], TargetLike]] = {}
        self._pending_align: dict[str, AlignSpec] = {}
        self._implicit_targets: dict[int, ProcessorSection] = {}
        #: monotone counter of layout mutations; compiled communication
        #: schedules are valid only within one epoch
        self.layout_epoch = 0
        #: memoized compiled schedules (see repro.engine.schedule)
        self.schedule_cache = ScheduleCache()
        #: advisory per-index cost profiles (first dimension), consumed
        #: by the autotune advisor; never affects numerics or charging
        self.cost_profiles: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Environment / processors
    # ------------------------------------------------------------------
    def constant(self, name: str, value: int) -> None:
        """Define a specification constant usable in directives."""
        self.env[name] = int(value)

    def processors(self, name: str, *bounds: BoundsLike,
                   origin: int = 0) -> ProcessorArrangement:
        """Declare a processor array arrangement (PROCESSORS directive)."""
        domain = self._domain_from_bounds(bounds)
        arr = ProcessorArrangement(name, domain)
        self.ap.declare(arr, origin=origin)
        return arr

    def scalar_processors(self, name: str, **kwargs) -> ScalarArrangement:
        """Declare a conceptually scalar arrangement (§3)."""
        arr = ScalarArrangement(name, **kwargs)
        self.ap.declare(arr)
        return arr

    @staticmethod
    def _domain_from_bounds(bounds: Sequence[BoundsLike]) -> IndexDomain:
        dims = []
        for b in bounds:
            if isinstance(b, tuple):
                lo, hi = b
                dims.append(Triplet(int(lo), int(hi), 1))
            else:
                dims.append(Triplet.of_extent(int(b)))
        return IndexDomain(dims)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def declare(self, name: str, *bounds: BoundsLike,
                dtype: np.dtype | type = np.float64,
                allocatable: bool = False, dynamic: bool = False,
                rank: int | None = None) -> HpfArray:
        """Declare an array.

        ``bounds`` entries are extents (``N`` means ``1:N``) or
        ``(lower, upper)`` pairs.  Allocatable arrays with deferred shape
        pass no bounds and a ``rank``.
        """
        if name in self.arrays:
            raise MappingError(f"array {name!r} already declared")
        if bounds:
            domain = self._domain_from_bounds(bounds)
            arr = HpfArray(name, domain, dtype=dtype,
                           allocatable=allocatable, dynamic=dynamic)
        else:
            arr = HpfArray(name, None, dtype=dtype, allocatable=True,
                           dynamic=dynamic, rank=rank)
        self.arrays[name] = arr
        if arr.is_allocated:
            self.forest.add(name)
            self._publish_inquiries(arr)
        return arr

    def _publish_inquiries(self, arr: HpfArray) -> None:
        """Make LBOUND/UBOUND/SIZE of a created array available to
        alignment expressions (§5.1 allows these intrinsics; they are
        folded against the current instance's bounds)."""
        for k, dim in enumerate(arr.domain.dims, start=1):
            self.env[f"LBOUND({arr.name}, {k})"] = dim.lower
            self.env[f"UBOUND({arr.name}, {k})"] = dim.last
            self.env[f"SIZE({arr.name}, {k})"] = len(dim)

    def declare_scalar(self, name: str, value=0.0,
                       dtype: np.dtype | type = np.float64) -> HpfArray:
        """Declare a scalar — rank-0 index domain with one element (§2.2)."""
        arr = self.declare(name, dtype=dtype, rank=0, allocatable=True)
        # scalars are always "created"; allocate the rank-0 instance now
        arr.allocate(IndexDomain.scalar())
        self.forest.add(name)
        arr.data[()] = value
        self._dist[name] = _DistEntry(
            self.policy.scalar_distribution(self.ap), "implicit")
        return arr

    def set_dynamic(self, *names: str) -> None:
        """The DYNAMIC directive: permit REDISTRIBUTE/REALIGN (§4.2, §5.2)."""
        for n in names:
            self._array(n).dynamic = True

    def _array(self, name: str) -> HpfArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise MappingError(f"unknown array {name!r}") from None

    def section(self, name: str,
                *subscripts: Union[int, Triplet]) -> ArraySection:
        """Convenience: an array section of a created array."""
        return ArraySection(self._array(name).domain, subscripts)

    # ------------------------------------------------------------------
    # Targets
    # ------------------------------------------------------------------
    def resolve_target(self, to: TargetLike,
                       n_consuming: int) -> ProcessorSection:
        """Resolve a TO-clause (or its absence) to a processor section."""
        if to is None:
            return self._implicit_target(n_consuming)
        if isinstance(to, ProcessorSection):
            return to
        if isinstance(to, ProcessorArrangement):
            return ProcessorSection(to)
        if isinstance(to, str):
            arr = self.ap.arrangement(to)
            if isinstance(arr, ScalarArrangement):
                raise DistributionError(
                    f"cannot use scalar arrangement {to!r} as a "
                    "DISTRIBUTE target with a format list")
            return ProcessorSection(arr)
        raise DistributionError(f"bad distribution target {to!r}")

    def _implicit_target(self, ndims: int) -> ProcessorSection:
        """Implementation-chosen target for a TO-less DISTRIBUTE: the whole
        AP factorized into ``ndims`` near-square dimensions."""
        if ndims <= 0:
            raise DistributionError(
                "a distribution with no distributed dimension needs no "
                "target; use ':' formats only with an explicit TO-clause")
        hit = self._implicit_targets.get(ndims)
        if hit is not None:
            return hit
        shape = _factorize(self.ap.size, ndims)
        name = f"_AP{ndims}"
        try:
            arr = self.ap.arrangement(name)
        except MappingError:
            arr = self.ap.declare(
                ProcessorArrangement(name, IndexDomain.standard(*shape)))
        target = ProcessorSection(arr)
        self._implicit_targets[ndims] = target
        return target

    # ------------------------------------------------------------------
    # DISTRIBUTE (§4.1)
    # ------------------------------------------------------------------
    def distribute(self, name: str,
                   formats: Sequence[DistributionFormat],
                   to: TargetLike = None) -> None:
        """Specification-part DISTRIBUTE for one distributee."""
        arr = self._array(name)
        formats = tuple(formats)
        if arr.allocatable and not arr.is_allocated:
            # §6: attributes are propagated to each ALLOCATE instance.
            self._pending_distribute[name] = (formats, to)
            return
        self._apply_distribute(name, formats, to, reason="DISTRIBUTE")

    def _apply_distribute(self, name: str,
                          formats: tuple[DistributionFormat, ...],
                          to: TargetLike, *, reason: str) -> None:
        arr = self._array(name)
        if self.forest.is_secondary(name):
            raise MappingError(
                f"{name!r} is aligned to {self.forest.parent_of(name)!r}; "
                "aligned arrays receive their distribution via CONSTRUCT "
                "and cannot be distributed directly")
        entry = self._dist.get(name)
        if reason == "DISTRIBUTE" and entry and entry.source == "explicit":
            raise MappingError(
                f"{name!r} already has an explicit distribution; use "
                "REDISTRIBUTE (and declare it DYNAMIC) to change it")
        n_consuming = sum(f.consumes_target_dim for f in formats)
        if to is None and n_consuming == 0:
            raise DistributionError(
                f"DISTRIBUTE {name}: all-colon format lists need an "
                "explicit TO-clause to place the data")
        target = self.resolve_target(to, n_consuming)
        old = entry.dist if entry else None
        dist = FormatDistribution(arr.domain, formats, target, self.ap)
        self._dist[name] = _DistEntry(dist, "explicit")
        self._invalidate_constructed(self._forest_scope(name))
        self.remap_events.append(RemapEvent(name, old, dist, reason))

    def place_on_scalar(self, name: str,
                        arrangement: Union[str, ScalarArrangement]) -> None:
        """Place an array on a conceptually scalar arrangement (§3).

        Depending on the arrangement's policy the data resides on the
        control processor, on an arbitrarily chosen processor, or is
        replicated over all processors.
        """
        from repro.distributions.replicated import ReplicatedDistribution
        arr = self._array(name)
        if isinstance(arrangement, str):
            arrangement = self.ap.arrangement(arrangement)
        if not isinstance(arrangement, ScalarArrangement):
            raise DistributionError(
                f"{arrangement.name!r} is not a scalar arrangement; use "
                "DISTRIBUTE with a format list instead")
        if self.forest.is_secondary(name):
            raise MappingError(
                f"{name!r} is aligned; aligned arrays cannot be placed "
                "directly")
        units = self.ap.ap_units(arrangement)
        old = self._dist.get(name)
        dist = ReplicatedDistribution(arr.domain, units)
        self._dist[name] = _DistEntry(dist, "explicit")
        self._invalidate_constructed(self._forest_scope(name))
        self.remap_events.append(RemapEvent(
            name, old.dist if old else None, dist,
            f"PLACE ON {arrangement.name}"))

    # ------------------------------------------------------------------
    # REDISTRIBUTE (§4.2)
    # ------------------------------------------------------------------
    def redistribute(self, name: str,
                     formats: Sequence[DistributionFormat],
                     to: TargetLike = None) -> RemapEvent:
        """Execution-part REDISTRIBUTE of a DYNAMIC array."""
        arr = self._array(name)
        if not arr.dynamic:
            raise MappingError(
                f"REDISTRIBUTE {name}: array was not declared DYNAMIC "
                "(§4.2)")
        if not arr.is_allocated:
            raise AllocationError(
                f"REDISTRIBUTE {name}: array is not currently allocated")
        old = self.distribution_of(name)
        # the invalidation scope must be read off the *pre-surgery*
        # forest: a primary's secondaries are re-CONSTRUCTed with it
        affected = self._forest_scope(name)
        # §4.2: a secondary distributee is disconnected from its base and
        # made into a new degenerate tree.
        self.forest.disconnect_for_redistribute(name)
        self._dist.pop(name, None)
        formats = tuple(formats)
        n_consuming = sum(f.consumes_target_dim for f in formats)
        target = self.resolve_target(to, max(n_consuming, 1))
        dist = FormatDistribution(arr.domain, formats, target, self.ap)
        self._dist[name] = _DistEntry(dist, "explicit")
        self._invalidate_constructed(affected)
        event = RemapEvent(name, old, dist, "REDISTRIBUTE")
        self.remap_events.append(event)
        return event

    # ------------------------------------------------------------------
    # Cost profiles (autotune advisory input)
    # ------------------------------------------------------------------
    def set_cost_profile(self, name: str, costs) -> None:
        """Declare per-index work weights along ``name``'s first
        dimension — advisory input the autotune advisor balances over;
        numerics and charging never read it."""
        arr = self._array(name)
        weights = np.asarray(costs, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise MappingError(
                f"cost profile for {name!r} must be a non-empty 1-D "
                "sequence")
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise MappingError(
                f"cost profile for {name!r} must be finite and "
                "non-negative")
        if arr.is_allocated:
            extent = len(arr.domain.dims[0])
            if weights.size != extent:
                raise MappingError(
                    f"cost profile for {name!r} has {weights.size} "
                    f"entries but dimension 1 has extent {extent}")
        self.cost_profiles[name] = weights

    def cost_profile(self, name: str) -> np.ndarray | None:
        """The declared cost profile for ``name`` (``None`` if absent)."""
        return self.cost_profiles.get(name)

    # ------------------------------------------------------------------
    # ALIGN (§5.1)
    # ------------------------------------------------------------------
    def align(self, spec: AlignSpec) -> None:
        """Specification-part ALIGN."""
        alignee = self._array(spec.alignee)
        base = self._array(spec.base)
        if alignee.allocatable and not alignee.is_allocated:
            self._pending_align[spec.alignee] = spec
            return
        if base.allocatable and not base.is_allocated:
            # §6: a non-ALLOCATABLE local array cannot be aligned in the
            # specification part to an allocatable array.
            raise AllocationError(
                f"ALIGN {spec.alignee} WITH {spec.base}: the base is an "
                "unallocated allocatable; only allocatable alignees may "
                "defer such an alignment (§6)")
        self._apply_align(spec)

    def _apply_align(self, spec: AlignSpec) -> None:
        alignee = self._array(spec.alignee)
        base = self._array(spec.base)
        entry = self._dist.get(spec.alignee)
        if entry and entry.source == "explicit":
            raise MappingError(
                f"{spec.alignee!r} already has an explicit distribution; "
                "an array is either distributed directly or aligned, not "
                "both")
        fn = AlignmentFunction(
            reduce_alignment(spec, alignee.domain, base.domain, self.env),
            clamp=self.clamp)
        self.forest.align(spec.alignee, spec.base, fn)
        self._dist.pop(spec.alignee, None)   # drop implicit placement
        # only the alignee's map changes (it cannot have secondaries:
        # align() rejects an alignee that serves as a base)
        self._invalidate_constructed({spec.alignee})

    # ------------------------------------------------------------------
    # REALIGN (§5.2)
    # ------------------------------------------------------------------
    def realign(self, spec: AlignSpec) -> RemapEvent:
        """Execution-part REALIGN of a DYNAMIC array."""
        alignee = self._array(spec.alignee)
        base = self._array(spec.base)
        if not alignee.dynamic:
            raise MappingError(
                f"REALIGN {spec.alignee}: array was not declared DYNAMIC "
                "(§5.2)")
        if not alignee.is_allocated or not base.is_allocated:
            raise AllocationError(
                f"REALIGN {spec.alignee} WITH {spec.base}: both arrays "
                "must be currently allocated")
        old = self.distribution_of(spec.alignee)
        # Freeze current distributions of the alignee's secondaries before
        # the surgery (§5.2 step 1: "... made into primary arrays of
        # degenerate trees with their current distribution").
        if self.forest.is_primary(spec.alignee):
            for child in self.forest.secondaries_of(spec.alignee):
                frozen = self.distribution_of(child)
                self._dist[child] = _DistEntry(frozen, "frozen")
        fn = AlignmentFunction(
            reduce_alignment(spec, alignee.domain, base.domain, self.env),
            clamp=self.clamp)
        self.forest.realign(spec.alignee, spec.base, fn)
        self._dist.pop(spec.alignee, None)
        # the alignee's map changes; its former secondaries were frozen
        # at their current distribution just above, so their maps (and
        # the schedules compiled against them) stay valid
        self._invalidate_constructed({spec.alignee})
        new = self.distribution_of(spec.alignee)
        event = RemapEvent(spec.alignee, old, new, "REALIGN")
        self.remap_events.append(event)
        return event

    # ------------------------------------------------------------------
    # ALLOCATE / DEALLOCATE (§6)
    # ------------------------------------------------------------------
    def allocate(self, name: str, *bounds: BoundsLike) -> HpfArray:
        """ALLOCATE an instance and apply propagated mapping attributes."""
        arr = self._array(name)
        domain = self._domain_from_bounds(bounds)
        arr.allocate(domain)
        self.forest.add(name)
        self._publish_inquiries(arr)
        pending_d = self._pending_distribute.get(name)
        pending_a = self._pending_align.get(name)
        if pending_d and pending_a:
            raise MappingError(
                f"{name!r} has both a pending DISTRIBUTE and a pending "
                "ALIGN from the specification part")
        if pending_d:
            formats, to = pending_d
            self._apply_distribute(name, formats, to, reason="ALLOCATE")
        elif pending_a:
            self._apply_align(pending_a)
        return arr

    def deallocate(self, name: str) -> None:
        """DEALLOCATE: remove from the forest; arrays directly aligned to
        it become primaries of new trees with their current distribution."""
        arr = self._array(name)
        if not arr.is_allocated:
            raise AllocationError(f"DEALLOCATE {name}: not allocated")
        if name in self.forest:
            for child in self.forest.secondaries_of(name):
                frozen = self.distribution_of(child)
                self._dist[child] = _DistEntry(frozen, "frozen")
            self.forest.remove(name)
        arr.deallocate()
        self._dist.pop(name, None)
        self._constructed.pop(name, None)
        # schedules referencing the deallocated array die with it; its
        # former secondaries were frozen above with unchanged maps, and
        # unrelated forests keep their compiled schedules
        self._invalidate_constructed({name})

    # ------------------------------------------------------------------
    # Distribution resolution
    # ------------------------------------------------------------------
    def distribution_of(self, name: str) -> Distribution:
        """The current distribution of a created array.

        Secondaries resolve through CONSTRUCT against their primary's
        *current* distribution; primaries without any directive get the
        implicit policy distribution (and keep it, so repeated queries are
        stable).
        """
        arr = self._array(name)
        if not arr.is_allocated:
            raise AllocationError(
                f"array {name!r} has no distribution: not allocated")
        if name in self.forest and self.forest.is_secondary(name):
            parent = self.forest.parent_of(name)
            base_dist = self.distribution_of(parent)
            cached = self._constructed.get(name)
            if cached is not None and cached[0] == id(base_dist):
                return cached[1]
            fn = self.forest.alignment_of(name)
            dist = construct(fn, base_dist)
            self._constructed[name] = (id(base_dist), dist)
            return dist
        entry = self._dist.get(name)
        if entry is None:
            dist = self.policy.implicit_distribution(arr.domain, self.ap)
            self._dist[name] = _DistEntry(dist, "implicit")
            return dist
        return entry.dist

    def distribution_source(self, name: str) -> str:
        """'explicit', 'implicit', 'frozen', or 'aligned'."""
        if name in self.forest and self.forest.is_secondary(name):
            return "aligned"
        entry = self._dist.get(name)
        return entry.source if entry else "implicit"

    def owners(self, name: str, index: Sequence[int]) -> frozenset[int]:
        return self.distribution_of(name).owners(index)

    def owner_map(self, name: str) -> np.ndarray:
        return self.distribution_of(name).primary_owner_map()

    def _invalidate_constructed(self, affected=None) -> None:
        """Bump the layout epoch after a mapping mutation.

        ``affected`` names the arrays whose owner maps may have changed
        (the remapped array plus the members of its alignment forest that
        are re-CONSTRUCTed with it); only compiled schedules depending on
        one of them are dropped.  ``None`` falls back to a full clear —
        the conservative path for mutations without a computed scope.
        """
        self._constructed.clear()
        self.layout_epoch += 1
        if affected is None:
            self.schedule_cache.clear()
        else:
            self.schedule_cache.invalidate_arrays(affected)

    def _forest_scope(self, name: str) -> set[str]:
        """``name`` plus the secondaries that re-CONSTRUCT through it when
        its distribution changes (a secondary's or degenerate array's
        scope is itself: siblings and the primary keep their maps)."""
        scope = {name}
        if name in self.forest and self.forest.is_primary(name):
            scope |= self.forest.secondaries_of(name)
        return scope

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def forest_snapshot(self) -> dict[str, frozenset[str]]:
        """Map primary -> secondaries, for tests and the E6 trace."""
        return self.forest.trees()

    def created_arrays(self) -> tuple[str, ...]:
        return tuple(sorted(n for n, a in self.arrays.items()
                            if a.is_allocated))

    def describe(self) -> str:
        lines = [f"DataSpace over AP({self.ap.size})"]
        for name in self.created_arrays():
            dist = self.distribution_of(name)
            kind = self.distribution_source(name)
            lines.append(f"  {name}: {kind}: {dist.describe()}")
        return "\n".join(lines)


def _factorize(n: int, ndims: int) -> tuple[int, ...]:
    """Factor ``n`` into ``ndims`` near-square factors (largest first),
    in the spirit of MPI_Dims_create."""
    dims = [1] * ndims
    remaining = n
    for k in range(ndims):
        # choose the largest factor of `remaining` not exceeding its
        # (ndims - k)-th root
        slots = ndims - k
        root = round(remaining ** (1.0 / slots))
        best = 1
        for f in range(root, 0, -1):
            if remaining % f == 0:
                best = f
                break
        # prefer slightly larger factors if the root choice leaves a prime
        for f in range(root + 1, remaining + 1):
            if remaining % f == 0 and abs(f - root) < abs(best - root):
                best = f
                break
        dims[k] = best
        remaining //= best
    dims[0] *= remaining
    dims.sort(reverse=True)
    return tuple(dims)
