"""Arrays of the model: declared data arrays and allocatables (§2.1, §6).

An :class:`HpfArray` couples a name, a standard index domain ``I^A``, an
element dtype and (optionally) global canonical storage.  The canonical
storage is the *sequential semantics* view used by the reference executor
to validate the simulated distributed execution — the machine simulator
keeps its own per-processor local pieces.

Allocatable arrays are declared with a rank but no domain; ALLOCATE gives
them a domain/storage instance and DEALLOCATE removes it (§6).  The
DYNAMIC attribute gates REDISTRIBUTE/REALIGN (§4.2, §5.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AllocationError
from repro.fortran.domain import IndexDomain

__all__ = ["HpfArray"]


class HpfArray:
    """A data array of the model.

    Parameters
    ----------
    name:
        Unique name within its scope.
    domain:
        The standard index domain; ``None`` for an unallocated allocatable.
    dtype:
        NumPy element dtype (default ``float64``).
    allocatable, dynamic:
        The §6 ALLOCATABLE and §4.2/§5.2 DYNAMIC attributes.
    rank:
        Declared rank; required (and only allowed) when ``domain`` is
        ``None``.
    """

    def __init__(self, name: str, domain: IndexDomain | None = None, *,
                 dtype: np.dtype | type = np.float64,
                 allocatable: bool = False, dynamic: bool = False,
                 rank: int | None = None) -> None:
        if domain is None:
            if not allocatable:
                raise AllocationError(
                    f"array {name!r} declared without shape must be "
                    "ALLOCATABLE")
            if rank is None:
                raise AllocationError(
                    f"allocatable array {name!r} needs a declared rank "
                    "(deferred shape '(:,:)' etc.)")
        elif rank is not None and rank != domain.rank:
            raise AllocationError(
                f"array {name!r}: declared rank {rank} contradicts domain "
                f"{domain}")
        self.name = name
        self.dtype = np.dtype(dtype)
        self.allocatable = allocatable
        self.dynamic = dynamic
        self.declared_rank = rank if rank is not None else (
            domain.rank if domain is not None else None)
        self._domain: IndexDomain | None = None
        self._data: np.ndarray | None = None
        #: generation counter bumped on every (re-)allocation — lets caches
        #: elsewhere detect stale references to a previous instance
        self.instance = 0
        if domain is not None:
            self._create(domain)

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------
    def _create(self, domain: IndexDomain) -> None:
        if not domain.is_standard:
            raise AllocationError(
                f"array {self.name!r} must have a standard (stride-1) "
                f"index domain, got {domain}")
        self._domain = domain
        self._data = np.zeros(domain.shape, dtype=self.dtype, order="F")
        self.instance += 1

    def allocate(self, domain: IndexDomain) -> None:
        """Give the allocatable a new instance (ALLOCATE, §6)."""
        if not self.allocatable:
            raise AllocationError(
                f"ALLOCATE applied to non-allocatable array {self.name!r}")
        if self.is_allocated:
            raise AllocationError(
                f"array {self.name!r} is already allocated")
        if domain.rank != self.declared_rank:
            raise AllocationError(
                f"ALLOCATE({self.name}) with rank {domain.rank} but the "
                f"declared rank is {self.declared_rank}")
        self._create(domain)

    def deallocate(self) -> None:
        """Destroy the current instance (DEALLOCATE, §6)."""
        if not self.allocatable:
            raise AllocationError(
                f"DEALLOCATE applied to non-allocatable array {self.name!r}")
        if not self.is_allocated:
            raise AllocationError(
                f"array {self.name!r} is not allocated")
        self._domain = None
        self._data = None

    @property
    def is_allocated(self) -> bool:
        """True iff the array currently has an instance (always true for
        non-allocatable arrays)."""
        return self._domain is not None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def domain(self) -> IndexDomain:
        if self._domain is None:
            raise AllocationError(
                f"array {self.name!r} is not allocated")
        return self._domain

    @property
    def rank(self) -> int:
        return self.domain.rank

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    @property
    def data(self) -> np.ndarray:
        """Global canonical storage (Fortran-ordered)."""
        if self._data is None:
            raise AllocationError(
                f"array {self.name!r} is not allocated")
        return self._data

    def _position(self, index: Sequence[int]) -> tuple[int, ...]:
        idx = tuple(index)
        if idx not in self.domain:
            raise IndexError(
                f"{self.name}{idx} outside index domain {self.domain}")
        return tuple(d.position(v) for v, d in zip(idx, self.domain.dims))

    def get(self, index: Sequence[int]):
        """Element at a *global* (declared-bounds) index tuple."""
        return self.data[self._position(index)]

    def set(self, index: Sequence[int], value) -> None:
        self.data[self._position(index)] = value

    def fill_sequence(self) -> None:
        """Fill with 0, 1, 2, ... in column-major element order (handy for
        tests that need to recognize elements after data movement)."""
        flat = np.arange(self.domain.size, dtype=self.dtype)
        self._data = flat.reshape(self.shape, order="F")

    def __repr__(self) -> str:
        dom = str(self._domain) if self._domain is not None else "<unallocated>"
        attrs = "".join([
            ", ALLOCATABLE" if self.allocatable else "",
            ", DYNAMIC" if self.dynamic else "",
        ])
        return f"<HpfArray {self.name}{dom} {self.dtype}{attrs}>"
