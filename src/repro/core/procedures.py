"""Procedure-boundary semantics (§7).

The distribution of a dummy argument can be specified in four ways:

1. **explicitly** — ``DISTRIBUTE A d [TO r]``: the actual argument is
   remapped, if necessary, to the specified distribution, and the original
   distribution is restored upon exit;
2. **by inheritance** — ``DISTRIBUTE A *``: the actual's distribution is
   transferred into the procedure and inherited by the dummy (for section
   actuals this is the *restriction* of the parent's distribution to the
   section, re-indexed to the dummy's domain);
3. **by inheritance matching** — ``DISTRIBUTE A * d [TO r]``: the dummy
   inherits, but if the inherited distribution does not match ``d`` the
   program is not HPF-conforming — unless the caller knows the dummy's
   attribute (interface block, ``interface_known=True``), in which case
   the language processor remaps the actual at the call and maps it back
   on return;
4. **implicitly** — no specification: the compiler provides an implicit
   distribution (the data space's policy), treated like mode 1.

A dummy may instead be mapped by *alignment* to another dummy or local.
The alignment tree is local to a procedure: "an array which is the actual
argument of a procedure call is not connected with its alignment tree in
the calling unit during execution of the called procedure."  If a dummy is
redistributed or realigned during execution, the original distribution is
restored on procedure exit.

Remapping a *whole-array* actual really changes (and later restores) the
caller's mapping; remapping a *section* actual is priced as data movement
(events) without rewriting the parent array's mapping, since a section has
no distribution attribute of its own in the caller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

import numpy as np

from repro.align.spec import AlignSpec
from repro.core.array import HpfArray
from repro.core.dataspace import DataSpace, RemapEvent, _DistEntry
from repro.distributions.base import DistributionFormat
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.errors import ConformanceError, ProcedureError
from repro.fortran.section import ArraySection, full_section
from repro.fortran.triplet import Triplet

__all__ = ["DummyMode", "DummySpec", "Procedure", "CallRecord",
           "InheritedSectionDistribution", "distributions_equal"]


class DummyMode(enum.Enum):
    EXPLICIT = "explicit"            #: DISTRIBUTE A d [TO r]
    INHERIT = "inherit"              #: DISTRIBUTE A *
    INHERIT_MATCH = "inherit_match"  #: DISTRIBUTE A * d [TO r]
    IMPLICIT = "implicit"            #: no specification
    ALIGNED = "aligned"              #: ALIGN A(...) WITH <other dummy/local>


@dataclass(frozen=True)
class DummySpec:
    """Mapping specification of one dummy argument."""

    name: str
    mode: DummyMode = DummyMode.INHERIT
    formats: tuple[DistributionFormat, ...] | None = None
    to: Any = None
    align: AlignSpec | None = None
    dynamic: bool = False

    def __post_init__(self) -> None:
        needs_formats = self.mode in (DummyMode.EXPLICIT,
                                      DummyMode.INHERIT_MATCH)
        if needs_formats and not self.formats:
            raise ProcedureError(
                f"dummy {self.name!r}: mode {self.mode.value} requires a "
                "distribution format list")
        if self.mode is DummyMode.ALIGNED and self.align is None:
            raise ProcedureError(
                f"dummy {self.name!r}: ALIGNED mode requires an AlignSpec")
        if self.align is not None and self.align.alignee != self.name:
            raise ProcedureError(
                f"dummy {self.name!r}: AlignSpec aligns "
                f"{self.align.alignee!r} instead")


def _section_slicer(section: ArraySection) -> tuple:
    """NumPy basic-slicing tuple selecting the section from parent data."""
    slicer = []
    for s, dim in zip(section.subscripts, section.parent.dims):
        if isinstance(s, Triplet):
            start = dim.position(s.first)
            stop = dim.position(s.last) + (1 if s.stride > 0 else -1)
            stop = None if stop < 0 else stop
            slicer.append(slice(start, stop, s.stride))
        else:
            slicer.append(dim.position(s))
    return tuple(slicer)


def _is_whole(section: ArraySection) -> bool:
    """True iff the section selects every element, dimension order kept."""
    if section.rank != section.parent.rank:
        return False
    for s, dim in zip(section.subscripts, section.parent.dims):
        if not isinstance(s, Triplet):
            return False
        t = s.as_ascending_set()
        if t.stride != 1 or t.lower != dim.lower or t.last != dim.last:
            return False
    return True


class InheritedSectionDistribution(Distribution):
    """The restriction of a parent distribution to an array section,
    re-indexed to the section's standard domain — what a dummy inherits
    when the actual argument is a section (§8.1.2)."""

    def __init__(self, parent: Distribution, section: ArraySection) -> None:
        if section.parent != parent.domain:
            raise ProcedureError(
                f"section over {section.parent} does not match the "
                f"distribution domain {parent.domain}")
        super().__init__(section.domain())
        self.parent = parent
        self.section = section

    def owners(self, index: Sequence[int]) -> frozenset[int]:
        return self.parent.owners(self.section.to_parent(index))

    def primary_owner(self, index: Sequence[int]) -> int:
        return self.parent.primary_owner(self.section.to_parent(index))

    @property
    def is_replicated(self) -> bool:
        return self.parent.is_replicated

    def _compute_owner_map(self) -> np.ndarray:
        pmap = self.parent.primary_owner_map()
        return np.asfortranarray(pmap[_section_slicer(self.section)])

    def describe(self) -> str:
        return (f"INHERITED section {self.section} of "
                f"{self.parent.describe()}")


def distributions_equal(a: Distribution, b: Distribution) -> bool:
    """Extensional distribution equality with a vectorized fast path.

    Used for the matching check of §7 mode 3 and for deciding whether an
    explicit dummy specification requires a remap of the actual.
    """
    if a is b:
        return True
    if a.domain != b.domain:
        return False
    if a.is_replicated != b.is_replicated:
        return False
    if not a.is_replicated:
        return bool(np.array_equal(a.primary_owner_map(),
                                   b.primary_owner_map()))
    return a.same_mapping(b)


@dataclass
class CallRecord:
    """What happened at one procedure call (for cost accounting)."""

    procedure: str
    entry_remaps: list[RemapEvent] = field(default_factory=list)
    exit_restores: list[RemapEvent] = field(default_factory=list)
    body_events: list[RemapEvent] = field(default_factory=list)
    result: Any = None


Actual = Union[str, tuple[str, tuple]]


@dataclass
class _Binding:
    spec: DummySpec
    actual_name: str
    section: ArraySection
    whole: bool
    dummy: HpfArray
    inherited: Distribution


class Procedure:
    """A procedure with mapped dummy arguments.

    Parameters
    ----------
    name:
        Procedure name.
    dummies:
        One :class:`DummySpec` per dummy argument, in argument order.
    body:
        ``body(frame, *dummy_arrays)``; ``frame`` is the local
        :class:`~repro.core.dataspace.DataSpace` of the call (use it to
        declare locals, align them to dummies, redistribute DYNAMIC
        dummies, ...).  Its return value becomes the call result.
    """

    def __init__(self, name: str, dummies: Sequence[DummySpec],
                 body: Callable[..., Any]) -> None:
        self.name = name
        self.dummies = tuple(dummies)
        self.body = body
        seen = set()
        for d in self.dummies:
            if d.name in seen:
                raise ProcedureError(
                    f"duplicate dummy name {d.name!r} in {name}")
            seen.add(d.name)

    # ------------------------------------------------------------------
    def call(self, caller: DataSpace, *actuals: Actual,
             interface_known: bool = False) -> CallRecord:
        """Execute the procedure against actual arguments of ``caller``.

        Each actual is an array name or ``(name, subscripts)`` for a
        section argument.  Returns the :class:`CallRecord` (with
        ``result``).
        """
        if len(actuals) != len(self.dummies):
            raise ProcedureError(
                f"{self.name} expects {len(self.dummies)} arguments, got "
                f"{len(actuals)}")
        record = CallRecord(self.name)
        frame = DataSpace(ap=caller.ap, policy=caller.policy,
                          clamp=caller.clamp)
        frame.env.update(caller.env)

        bindings: list[_Binding] = []
        #: (actual name, distribution to restore) for mutated whole actuals
        restore_plan: list[tuple[str, Distribution]] = []

        # Pass 1: bind every dummy; resolve all non-ALIGNED mappings.
        for spec, actual in zip(self.dummies, actuals):
            b = self._bind(frame, caller, spec, actual)
            bindings.append(b)
            if spec.mode is DummyMode.ALIGNED:
                continue
            wanted = self._wanted_distribution(frame, spec, b)
            self._install(frame, caller, b, wanted, record, restore_plan,
                          interface_known=interface_known)

        # Pass 2: ALIGNED dummies (their bases — other dummies — now exist).
        for b in bindings:
            if b.spec.mode is not DummyMode.ALIGNED:
                continue
            frame.align(b.spec.align)
            wanted = frame.distribution_of(b.spec.name)
            self._charge_remap(caller, b, wanted, record, restore_plan)

        # Execute the body; remap events inside the frame are body events.
        before = len(frame.remap_events)
        entry_dists = {b.spec.name: frame.distribution_of(b.spec.name)
                       for b in bindings}
        dummy_arrays = [b.dummy for b in bindings]
        record.result = self.body(frame, *dummy_arrays)
        record.body_events = list(frame.remap_events[before:])

        # §7: dummies redistributed/realigned during execution are
        # restored on exit.
        for b in bindings:
            current = frame.distribution_of(b.spec.name)
            original = entry_dists[b.spec.name]
            if not distributions_equal(current, original):
                record.exit_restores.append(RemapEvent(
                    b.spec.name, current, original,
                    f"RETURN {self.name}: restore dummy distribution"))

        # §7: whole-array actuals remapped at entry are mapped back.
        for name, original in restore_plan:
            current = caller.distribution_of(name)
            caller._dist[name] = _DistEntry(original, "explicit")
            caller._invalidate_constructed()
            event = RemapEvent(name, current, original,
                               f"RETURN {self.name}: restore actual")
            caller.remap_events.append(event)
            record.exit_restores.append(event)
        return record

    # ------------------------------------------------------------------
    # Binding helpers
    # ------------------------------------------------------------------
    def _bind(self, frame: DataSpace, caller: DataSpace, spec: DummySpec,
              actual: Actual) -> _Binding:
        if isinstance(actual, str):
            name = actual
            arr = caller.arrays.get(name)
            if arr is None:
                raise ProcedureError(f"unknown actual argument {name!r}")
            section = full_section(arr.domain)
        else:
            name, subs = actual
            section = caller.section(name, *subs)
        whole = _is_whole(section)
        actual_arr = caller.arrays[name]
        parent_dist = caller.distribution_of(name)
        if whole:
            domain = section.parent
            inherited: Distribution = parent_dist
        else:
            domain = section.domain()
            inherited = InheritedSectionDistribution(parent_dist, section)
        dummy = HpfArray(spec.name, domain, dtype=actual_arr.dtype,
                         dynamic=spec.dynamic)
        # alias the actual's storage (sections become strided views)
        dummy._data = actual_arr.data[_section_slicer(section)]
        frame.arrays[spec.name] = dummy
        frame.forest.add(spec.name)
        return _Binding(spec, name, section, whole, dummy, inherited)

    def _wanted_distribution(self, frame: DataSpace, spec: DummySpec,
                             b: _Binding) -> Distribution:
        if spec.mode is DummyMode.INHERIT:
            return b.inherited
        if spec.mode is DummyMode.IMPLICIT:
            return frame.policy.implicit_distribution(b.dummy.domain,
                                                      frame.ap)
        n_consuming = sum(f.consumes_target_dim for f in spec.formats)
        target = frame.resolve_target(spec.to, n_consuming)
        return FormatDistribution(b.dummy.domain, tuple(spec.formats),
                                  target, frame.ap)

    def _install(self, frame: DataSpace, caller: DataSpace, b: _Binding,
                 wanted: Distribution, record: CallRecord,
                 restore_plan: list, *, interface_known: bool) -> None:
        spec = b.spec
        matches = distributions_equal(b.inherited, wanted)
        if spec.mode is DummyMode.INHERIT_MATCH and not matches \
                and not interface_known:
            raise ConformanceError(
                f"CALL {self.name}: actual for dummy {spec.name!r} "
                f"arrives with {b.inherited.describe()} but the dummy "
                f"declares {wanted.describe()}; without an interface "
                "block the program is not HPF-conforming (§7 mode 3)")
        if not matches:
            self._charge_remap(caller, b, wanted, record, restore_plan)
        frame._dist[spec.name] = _DistEntry(wanted, "explicit")

    def _charge_remap(self, caller: DataSpace, b: _Binding,
                      wanted: Distribution, record: CallRecord,
                      restore_plan: list) -> None:
        """Record the entry remap of the actual; whole-array actuals have
        the caller's mapping really rewritten (and scheduled for restore)."""
        if distributions_equal(b.inherited, wanted):
            return
        event = RemapEvent(b.actual_name, b.inherited, wanted,
                           f"CALL {self.name}: remap actual for dummy "
                           f"{b.spec.name}")
        record.entry_remaps.append(event)
        caller.remap_events.append(event)
        secondary = (b.actual_name in caller.forest
                     and caller.forest.is_secondary(b.actual_name))
        if b.whole and wanted.domain == b.inherited.domain and not secondary:
            restore_plan.append((b.actual_name, b.inherited))
            caller._dist[b.actual_name] = _DistEntry(wanted, "explicit")
            caller._invalidate_constructed()
