"""The paper's core model (substrate S5): arrays, data spaces, procedures.

This package ties the substrates together into the executable semantics of
§2–§7:

* :class:`~repro.core.array.HpfArray` — a declared (or allocatable) array
  with its standard index domain, global canonical storage and the
  DYNAMIC/ALLOCATABLE attributes;
* :class:`~repro.core.dataspace.DataSpace` — the data space "of all arrays
  that are accessible in a given scope, and have been created" (§2.4),
  maintaining the alignment forest and the distribution of every array
  under DISTRIBUTE / ALIGN / REDISTRIBUTE / REALIGN / ALLOCATE /
  DEALLOCATE;
* :class:`~repro.core.procedures.Procedure` — procedure-boundary semantics
  (§7): the four dummy-mapping modes, per-call local forests, and
  restore-on-exit;
* :class:`~repro.core.mapping.ImplicitMappingPolicy` — the
  compiler-provided implicit distribution (§7 mode 4 and §2.4).
"""

from repro.core.array import HpfArray
from repro.core.mapping import ImplicitMappingPolicy, BlockFirstDimPolicy
from repro.core.dataspace import DataSpace
from repro.core.procedures import (
    Procedure,
    DummySpec,
    DummyMode,
    InheritedSectionDistribution,
)

__all__ = [
    "HpfArray",
    "ImplicitMappingPolicy",
    "BlockFirstDimPolicy",
    "DataSpace",
    "Procedure",
    "DummySpec",
    "DummyMode",
    "InheritedSectionDistribution",
]
