"""Implicit mapping policies (§2.4, §7 mode 4).

Primary arrays for which no directive specifies a distribution are
"implicitly distributed by the compiler"; dummy arguments without any
distribution specification likewise receive "an implicit distribution
specification".  The paper deliberately leaves the choice to the language
processor, so the library models it as a policy object on the
:class:`~repro.core.dataspace.DataSpace`.

:class:`BlockFirstDimPolicy` — the default — blocks the first dimension
over a 1-D view of the whole abstract processor arrangement and collapses
the rest, the common compiler default of the paper's era (SUPERB, Vienna
Fortran Compilation System).
"""

from __future__ import annotations

import abc

from repro.distributions.base import Collapsed
from repro.distributions.block import Block
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.distributions.replicated import ReplicatedDistribution
from repro.fortran.domain import IndexDomain
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement
from repro.processors.section import ProcessorSection

__all__ = ["ImplicitMappingPolicy", "BlockFirstDimPolicy",
           "ReplicateScalarsPolicy"]


class ImplicitMappingPolicy(abc.ABC):
    """Strategy for compiler-chosen distributions."""

    @abc.abstractmethod
    def implicit_distribution(self, domain: IndexDomain,
                              ap: AbstractProcessors) -> Distribution:
        """Distribution for a primary array nobody distributed."""

    def scalar_distribution(self, ap: AbstractProcessors) -> Distribution:
        """Placement of scalars; default replicates over all processors
        (the standard owner-computes convention)."""
        return ReplicatedDistribution(IndexDomain.scalar(),
                                      range(ap.size))


class BlockFirstDimPolicy(ImplicitMappingPolicy):
    """BLOCK the first dimension over the whole AP; collapse the rest."""

    def __init__(self) -> None:
        self._cache: dict[int, ProcessorSection] = {}

    def _whole_ap(self, ap: AbstractProcessors) -> ProcessorSection:
        target = self._cache.get(id(ap))
        if target is None:
            try:
                arr = ap.arrangement("_AP")
            except Exception:
                arr = ap.declare(ProcessorArrangement(
                    "_AP", IndexDomain.standard(ap.size)))
            target = ProcessorSection(arr)
            self._cache[id(ap)] = target
        return target

    def implicit_distribution(self, domain: IndexDomain,
                              ap: AbstractProcessors) -> Distribution:
        if domain.rank == 0:
            return self.scalar_distribution(ap)
        formats = [Block()] + [Collapsed()] * (domain.rank - 1)
        return FormatDistribution(domain, formats, self._whole_ap(ap), ap)


class ReplicateScalarsPolicy(BlockFirstDimPolicy):
    """Alias of the default policy, kept for explicitness in examples."""
