"""repro — executable semantics for *High Performance Fortran Without
Templates: An Alternative Model for Distribution and Alignment*
(Chapman, Mehrotra, Zima; PPoPP 1993 / ICASE Report 93-17).

The library implements, from scratch:

* the paper's **template-free model**: index domains and mappings (§2),
  processor arrangements and the abstract processor arrangement (§3),
  the distribution functions BLOCK / GENERAL_BLOCK / CYCLIC(k) / ``:``
  (§4), alignment functions and the height-1 alignment forest (§5),
  allocatable-array semantics (§6) and procedure-boundary semantics (§7);
* the **draft-HPF template baseline** it argues against (§8): tagged
  index-space templates, alignment chains, INHERIT;
* a **directive front end** that parses the paper's concrete syntax, so
  every example in the paper runs verbatim;
* a **distributed-memory machine simulator** and an **owner-computes
  execution engine** with exact communication accounting (vectorized
  oracle + analytic SUPERB-style regular sections), on which every
  comparative claim of §8 is measured;
* the **experiment registry E1-E12** regenerating each paper artifact
  (``python -m repro --all``).

Quick start::

    from repro.directives import run_program
    result = run_program('''
          REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
    !HPF$ PROCESSORS PR(4,4)
    !HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: U, V, P
          P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
    ''', n_processors=16, inputs={"N": 128}, machine=True)
    print(result.reports[-1].summary())
"""

from repro.core.dataspace import DataSpace
from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.directives.analyzer import run_program
from repro.distributions import (
    Block,
    BlockVariant,
    Collapsed,
    Cyclic,
    GeneralBlock,
)
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.templates.model import TemplateDataSpace

__version__ = "1.1.0"

__all__ = [
    "DataSpace",
    "TemplateDataSpace",
    "Procedure",
    "DummySpec",
    "DummyMode",
    "run_program",
    "Block",
    "BlockVariant",
    "Collapsed",
    "Cyclic",
    "GeneralBlock",
    "Triplet",
    "IndexDomain",
    "ArrayRef",
    "Assignment",
    "SimulatedExecutor",
    "MachineConfig",
    "DistributedMachine",
    "__version__",
]
