"""repro — executable semantics for *High Performance Fortran Without
Templates: An Alternative Model for Distribution and Alignment*
(Chapman, Mehrotra, Zima; PPoPP 1993 / ICASE Report 93-17).

The public surface is deliberately small — one front door:

* :class:`Session` — owns a scope (the paper's data space) and a lazily
  recorded program; ``session.run()`` lowers it through the program IR,
  the optimizing pass pipeline and the chosen execution backend;
* :class:`DistributedArray` — array handles with fluent
  ``.distribute()/.align()/.redistribute()/.realign()`` directives and
  NumPy-flavored indexing that records array statements;
* :class:`Backend` — typed backend specs (``Backend.simulate()``,
  ``Backend.spmd(workers=4, mode="fork", fused=True)``) selecting how
  statements execute;
* :class:`MachineConfig` — the simulated machine's cost parameters;
* :class:`ExecutionReport` — per-statement communication accounting.

Quick start::

    from repro import Session
    from repro.distributions import Block

    s = Session(8, opt=2)
    pr = s.processors("PR", 8)
    a = s.array("A", 64).distribute(Block(), to=pr)
    b = s.array("B", 32).align(a, lambda I: 2 * I)
    b[:] = a[1::2] + 1.0
    result = s.run()
    print(result.reports[-1].summary())

The second front end — the paper's directive language, now with
``DO``/``END DO`` loops — lowers through the same spine::

    from repro.directives import run_program
    result = run_program(source, n_processors=16, machine=True,
                         opt_level=2)

Everything else (distribution formats, alignment specs, the template
baseline, executors, the experiment registry E1–E12) lives in its
subpackage; the former top-level re-exports remain importable through
deprecation shims.
"""

import importlib
import warnings

from repro.api import DistributedArray, Session
from repro.engine.executor import ExecutionReport
from repro.machine.backend import Backend
from repro.machine.config import MachineConfig

__version__ = "1.3.0"

__all__ = [
    "Backend",
    "DistributedArray",
    "ExecutionReport",
    "MachineConfig",
    "Session",
    "__version__",
]

#: former top-level re-exports -> their home module (kept importable,
#: with a DeprecationWarning steering callers to the module or the
#: Session API; the CI examples job errors on these firing from inside
#: src/repro itself)
_DEPRECATED = {
    "DataSpace": "repro.core.dataspace",
    "TemplateDataSpace": "repro.templates.model",
    "Procedure": "repro.core.procedures",
    "DummySpec": "repro.core.procedures",
    "DummyMode": "repro.core.procedures",
    "run_program": "repro.directives.analyzer",
    "Block": "repro.distributions",
    "BlockVariant": "repro.distributions",
    "Collapsed": "repro.distributions",
    "Cyclic": "repro.distributions",
    "GeneralBlock": "repro.distributions",
    "Triplet": "repro.fortran.triplet",
    "IndexDomain": "repro.fortran.domain",
    "ArrayRef": "repro.engine.expr",
    "Assignment": "repro.engine.assignment",
    "SimulatedExecutor": "repro.engine.executor",
    "DistributedMachine": "repro.machine.simulator",
}


def __getattr__(name: str):
    home = _DEPRECATED.get(name)
    if home is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    warnings.warn(
        f"'repro.{name}' is deprecated; import it from '{home}' "
        "(or use the Session API — see repro.Session)",
        DeprecationWarning, stacklevel=2)
    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(list(globals()) + list(_DEPRECATED))
