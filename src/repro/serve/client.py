"""The thin wire client of a running ``repro serve`` service.

One request-reply exchange per connection over an ``AF_UNIX`` socket
(:mod:`multiprocessing.connection`, so payloads are plain picklable
dicts and the ``authkey`` HMAC handshake guards the socket)::

    client = ServiceClient("/tmp/repro.sock")
    client.ping()
    reply = client.run_source(open("jacobi.hpf").read(),
                              backend="spmd", mode="thread", opt=2)
    print(reply["reports"], reply["plan_store"]["hit_rate"])

``repro submit`` is this class behind an argparse face.
"""

from __future__ import annotations

__all__ = ["ServiceClient"]


class ServiceClient:
    """Connect-per-request client for :func:`~repro.serve.serve_forever`."""

    def __init__(self, address: str,
                 authkey: bytes = b"repro-serve") -> None:
        self.address = address
        self.authkey = authkey

    def request(self, payload: dict) -> dict:
        """One exchange: connect, send ``payload``, return the reply."""
        from multiprocessing.connection import Client

        conn = Client(self.address, family="AF_UNIX",
                      authkey=self.authkey)
        try:
            conn.send(payload)
            return conn.recv()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # The protocol ops
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        """Service counters, pool activity and plan-store stats."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> bool:
        return bool(self.request({"op": "shutdown"}).get("ok"))

    def run_source(self, source: str, *, processors: int = 4,
                   backend: str = "simulate", workers: int | None = None,
                   mode: str = "auto", fused: bool = True, opt: int = 0,
                   defines: dict | None = None,
                   timeout: float | None = None) -> dict:
        """Submit a directive program for execution on the service.

        The reply carries per-statement report summaries, machine
        totals, and the plan-store delta this request caused
        (``request_hits`` > 0 means the program rode on plans some
        earlier tenant compiled).
        """
        reply = self.request({
            "op": "run", "source": source, "processors": processors,
            "backend": backend, "workers": workers, "mode": mode,
            "fused": fused, "opt": opt, "defines": defines or {},
            "timeout": timeout,
        })
        if not reply.get("ok"):
            raise RuntimeError(f"service error: {reply.get('error')}")
        return reply
