"""``repro serve`` — the long-running multi-tenant session service.

Layering (see ARCHITECTURE.md):

* :mod:`repro.serve.store`   — facade over the engine's process-wide
  content-addressed :class:`~repro.engine.planstore.PlanStore`;
* :mod:`repro.serve.service` — :class:`SessionService` (per-pool-key
  request queues, per-session accountant isolation, timeouts, graceful
  pool restart) and :func:`serve_forever` (the socket server);
* :mod:`repro.serve.client`  — :class:`ServiceClient`, the wire client
  behind ``repro submit``.

In-process use::

    from repro import Session
    from repro.serve import SessionService

    svc = SessionService()
    a = Session(4, service=svc)   # tenants share compiled plans,
    b = Session(4, service=svc)   # keep private ledgers
"""

from repro.serve.client import ServiceClient
from repro.serve.service import ServiceTimeout, SessionService, serve_forever
from repro.serve.store import PlanStore, store_stats, swapped_plan_store

__all__ = ["PlanStore", "ServiceClient", "ServiceTimeout",
           "SessionService", "serve_forever", "store_stats",
           "swapped_plan_store"]
