"""Serving-layer facade over the engine's plan store.

The store itself lives in :mod:`repro.engine.planstore` (the engine
consults it when compiling schedules); this module is the serving
stack's administrative surface — the names service code and tests
import without reaching into the engine package.
"""

from __future__ import annotations

from repro.engine.planstore import (
    GLOBAL_PLAN_STORE,
    PlanStore,
    active_plan_store,
    set_active_plan_store,
    swapped_plan_store,
)

__all__ = ["GLOBAL_PLAN_STORE", "PlanStore", "active_plan_store",
           "set_active_plan_store", "swapped_plan_store", "store_stats"]


def store_stats() -> dict:
    """Counters of the store new scopes currently share (the serving
    metric: ``hit_rate`` is the fraction of plan requests answered
    across session boundaries)."""
    store = active_plan_store()
    return store.stats() if store is not None else {}
