"""The session service: warm pools + shared plans for many tenants.

A :class:`SessionService` turns the library from a one-scope tool into
a long-running multi-tenant substrate:

* every session attached to the service shares one
  :class:`~repro.engine.planstore.PlanStore`, so tenant B's Jacobi
  adopts the schedules (and SPMD window-task splits) tenant A already
  compiled — content addressing makes the sharing safe across
  completely independent scopes;
* ``run()`` requests are queued per **pool key**
  (:attr:`~repro.machine.backend.BackendConfig.pool_key`): requests
  whose backend specs agree on the execution substrate are batched
  back-to-back onto one dispatcher thread, so a warm SPMD worker pool
  is never torn down between compatible requests, while incompatible
  specs run concurrently on their own dispatchers;
* each session keeps its **own** :class:`ProgramRunner` — machine,
  :class:`~repro.engine.executor.Accountant` and optimizer state are
  never shared, so per-tenant ledgers stay bit-identical to solo runs;
* a per-request **timeout** abandons stuck work
  (:class:`ServiceTimeout`), and a request that dies taking its worker
  pool with it triggers a graceful pool restart: the pool is rebuilt,
  but the session's schedule cache and the shared plan store keep every
  compiled plan warm.

The in-process surface is ``Session(service=svc)``; the out-of-process
surface is the ``repro serve`` / ``repro submit`` CLI pair built on
:func:`serve_forever` and :class:`~repro.serve.client.ServiceClient`.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from repro.engine.planstore import PlanStore, active_plan_store
from repro.errors import MachineError

__all__ = ["SessionService", "ServiceTimeout", "serve_forever"]

#: default per-request timeout (seconds); None waits forever
DEFAULT_TIMEOUT: float | None = None


class ServiceTimeout(MachineError):
    """A queued request exceeded its timeout and was abandoned.

    The dispatcher discards the request's result when it eventually
    finishes (or skips it entirely if it had not started); the
    submitting session should treat its scope as stale and re-record.
    """


@dataclass
class _Request:
    """One queued unit of work and its completion plumbing."""

    fn: object
    done: threading.Event = field(default_factory=threading.Event)
    result: object = None
    error: BaseException | None = None
    #: set by the submitter on timeout; the dispatcher then discards
    abandoned: bool = False


class _Dispatcher:
    """One FIFO queue + daemon thread per pool key.

    Serializing compatible requests on one thread is what keeps their
    worker pool warm: the pool (owned by whichever session runner the
    request uses) sees back-to-back work instead of interleaved
    create/teardown from competing threads.
    """

    def __init__(self, name: str) -> None:
        self.queue: queue.Queue[_Request | None] = queue.Queue()
        self.served = 0
        self.thread = threading.Thread(target=self._loop, name=name,
                                       daemon=True)
        self.thread.start()

    def _loop(self) -> None:
        while True:
            req = self.queue.get()
            if req is None:
                return
            if req.abandoned:
                continue
            try:
                req.result = req.fn()
            except BaseException as exc:   # delivered to the submitter
                req.error = exc
            self.served += 1
            req.done.set()

    def stop(self) -> None:
        self.queue.put(None)


class SessionService:
    """A process-local serving hub for many concurrent sessions.

    Parameters
    ----------
    plan_store:
        The cross-session plan store every attached scope uses.
        ``None`` (default) shares the process-wide active store; pass a
        fresh :class:`PlanStore` for an isolated hub (tests do).
    default_timeout:
        Per-request timeout in seconds applied when ``submit``/``run``
        is called without one (``None``: wait forever).
    """

    def __init__(self, *, plan_store: PlanStore | None = None,
                 default_timeout: float | None = DEFAULT_TIMEOUT) -> None:
        self.plan_store = plan_store
        self.default_timeout = default_timeout
        self._dispatchers: dict[tuple, _Dispatcher] = {}
        self._runners: dict[int, object] = {}
        #: stable per-session label and autotune adaptation counts
        self._tenant_ids: dict[int, str] = {}
        self._adaptations: dict[str, int] = {}
        self._lock = threading.Lock()
        self.timeouts = 0
        self.restarts = 0
        self.rejected = 0
        self._closed = False

    # ------------------------------------------------------------------
    # The queue
    # ------------------------------------------------------------------
    def _dispatcher(self, pool_key: tuple) -> _Dispatcher:
        with self._lock:
            if self._closed:
                raise MachineError("service is closed")
            disp = self._dispatchers.get(pool_key)
            if disp is None:
                disp = _Dispatcher(f"repro-serve-{len(self._dispatchers)}")
                self._dispatchers[pool_key] = disp
            return disp

    def submit(self, fn, *, pool_key: tuple = (),
               timeout: float | None = None):
        """Queue ``fn`` on the dispatcher of ``pool_key`` and wait.

        Returns ``fn()``'s result; re-raises its exception; raises
        :class:`ServiceTimeout` when the deadline passes first (the
        request is then abandoned and its eventual result discarded).
        """
        if timeout is None:
            timeout = self.default_timeout
        req = _Request(fn)
        self._dispatcher(pool_key).queue.put(req)
        if not req.done.wait(timeout):
            req.abandoned = True
            with self._lock:
                self.timeouts += 1
            raise ServiceTimeout(
                f"request exceeded {timeout:.3g}s on pool {pool_key!r}")
        if req.error is not None:
            raise req.error
        return req.result

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def _attach(self, session) -> object:
        """The session's service-managed runner (created on first use).

        Attachment points the scope at the hub's plan store, so every
        schedule the session compiles (or adopts) flows through the
        shared table.
        """
        with self._lock:
            runner = self._runners.get(id(session))
        if runner is not None:
            return runner
        if self.plan_store is not None:
            session.ds.plan_store = self.plan_store
        runner = session._make_runner()
        with self._lock:
            self._runners[id(session)] = runner
            tenant = self._tenant_ids.setdefault(
                id(session), f"tenant-{len(self._tenant_ids)}")
            self._adaptations.setdefault(tenant, 0)
        return runner

    def run(self, session, graph, *, timeout: float | None = None):
        """Execute a session's recorded graph through the service queue.

        The work runs on the dispatcher thread of the session backend's
        pool key, against the session's own runner (accountant
        isolation).  A request that raises gets its runner's pool
        restarted — compiled plans survive in the session's schedule
        cache and the shared store, so recovery only re-forks workers.
        """
        # gate on error-severity findings before the request ever
        # reaches a dispatcher: a program the static analyzer proves
        # cannot execute must not occupy pool time.  perf=False keeps
        # the check schedule-free — the gate compiles nothing, so plan
        # store hit/miss counters are untouched.
        from repro.engine.analysis import analyze
        from repro.engine.diagnostics import DiagnosticError, has_errors
        diagnostics = analyze(
            session.ds, graph,
            opt_level=getattr(session, "opt_level", session.opt),
            perf=False)
        if has_errors(diagnostics):
            with self._lock:
                self.rejected += 1
            raise DiagnosticError(diagnostics)

        runner = self._attach(session)
        pool_key = session.backend.pool_key

        def work():
            from repro.api.lower import run_graph
            try:
                return run_graph(session.ds, graph, runner=runner)
            except BaseException:
                self._restart(runner)
                raise

        result = self.submit(work, pool_key=pool_key, timeout=timeout)
        adapted = len(getattr(result, "adaptations", ()) or ())
        if adapted:
            with self._lock:
                tenant = self._tenant_ids.get(id(session), "?")
                self._adaptations[tenant] = \
                    self._adaptations.get(tenant, 0) + adapted
        return result

    def _restart(self, runner) -> None:
        """Gracefully restart a runner's worker pool after a failure."""
        restart = getattr(getattr(runner, "executor", None),
                          "_restart_pool", None)
        try:
            if restart is not None:
                restart()
            else:
                runner.close()
        except Exception:
            pass
        with self._lock:
            self.restarts += 1

    def release(self, session) -> None:
        """Detach a session, closing its service-managed runner."""
        with self._lock:
            runner = self._runners.pop(id(session), None)
        if runner is not None:
            runner.close()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def store(self) -> PlanStore:
        """The plan store attached sessions actually consult.  All
        checks are against ``None`` — an empty store is len-0 falsy."""
        if self.plan_store is not None:
            return self.plan_store
        active = active_plan_store()
        return active if active is not None else PlanStore()

    def stats(self) -> dict:
        with self._lock:
            pools = {repr(k): d.served
                     for k, d in self._dispatchers.items()}
            out = {"sessions": len(self._runners), "pools": pools,
                   "timeouts": self.timeouts, "restarts": self.restarts,
                   "rejected": self.rejected,
                   "adaptations": dict(self._adaptations)}
        out["plan_store"] = self.store.stats()
        return out

    def close(self) -> None:
        """Stop every dispatcher and close every managed runner."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dispatchers = list(self._dispatchers.values())
            runners = list(self._runners.values())
            self._dispatchers.clear()
            self._runners.clear()
        for disp in dispatchers:
            disp.stop()
        for runner in runners:
            try:
                runner.close()
            except Exception:
                pass

    def __enter__(self) -> "SessionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# The socket server (the `repro serve` entry point)
# ----------------------------------------------------------------------
def _handle_run(service: SessionService, params: dict) -> dict:
    from repro.directives.analyzer import Analyzer
    from repro.machine.backend import Backend

    if params.get("backend", "simulate") == "spmd":
        backend = Backend.spmd(workers=params.get("workers"),
                               mode=params.get("mode", "auto"),
                               fused=params.get("fused", True))
    else:
        backend = Backend.simulate()
    store = service.store
    before = store.stats()

    def work():
        analyzer = Analyzer(params.get("processors", 4),
                            inputs=params.get("defines") or {},
                            machine=True, backend=backend,
                            opt_level=params.get("opt", 0))
        # point the submission's scope at the hub's shared store (the
        # same attachment SessionService gives in-process sessions)
        analyzer.ds.plan_store = store
        return analyzer.run(params["source"])

    result = service.submit(work, pool_key=backend.pool_key,
                            timeout=params.get("timeout"))
    after = store.stats()
    reply = {
        "ok": True,
        "reports": [r.summary() for r in result.reports],
        "request_hits": after["hits"] - before["hits"],
        "request_misses": after["misses"] - before["misses"],
        "plan_store": after,
    }
    if result.machine is not None:
        reply["total_words"] = int(result.machine.stats.total_words)
        reply["elapsed"] = float(result.machine.elapsed)
    return reply


def _poke(address: str, authkey: bytes) -> None:
    """Open-and-drop a connection so a blocked ``accept`` re-checks
    the stop flag."""
    from multiprocessing.connection import Client
    try:
        Client(address, family="AF_UNIX", authkey=authkey).close()
    except OSError:
        pass


def serve_forever(address: str, *, authkey: bytes = b"repro-serve",
                  service: SessionService | None = None,
                  ready: threading.Event | None = None) -> None:
    """Listen on ``address`` (an ``AF_UNIX`` socket path) and serve
    ``run``/``stats``/``ping``/``shutdown`` requests until told to stop.

    Each connection is handled on its own thread; ``run`` requests are
    funnelled through the shared :class:`SessionService` queue, so the
    batching and plan-sharing semantics match the in-process surface.
    One request-reply exchange per connection (the
    :class:`~repro.serve.client.ServiceClient` convention).
    """
    from multiprocessing.connection import Listener

    svc = service if service is not None else SessionService()
    stop = threading.Event()
    listener = Listener(address, family="AF_UNIX", authkey=authkey)
    if ready is not None:
        ready.set()

    def handle(conn) -> None:
        try:
            request = conn.recv()
            op = request.get("op")
            if op == "ping":
                conn.send({"ok": True})
            elif op == "stats":
                conn.send({"ok": True, "stats": svc.stats()})
            elif op == "shutdown":
                conn.send({"ok": True})
                stop.set()
                _poke(address, authkey)   # unblock the accept loop
            elif op == "run":
                try:
                    conn.send(_handle_run(svc, request))
                except Exception as exc:
                    conn.send({"ok": False, "error": str(exc)})
            else:
                conn.send({"ok": False, "error": f"unknown op {op!r}"})
        except EOFError:
            pass
        finally:
            conn.close()

    try:
        while not stop.is_set():
            try:
                conn = listener.accept()
            except OSError:
                break
            if stop.is_set():
                conn.close()
                break
            threading.Thread(target=handle, args=(conn,),
                             daemon=True).start()
    finally:
        listener.close()
        if service is None:
            svc.close()
