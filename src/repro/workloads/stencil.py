"""Stencil workloads: the staggered grid of §8.1.1 and Jacobi relaxation.

The staggered grid is the paper's flagship example (posted to the HPFF
distribution list by C. A. Thole)::

    REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
    P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)

``P`` sits at cell centres, ``U``/``V`` on cell faces; each pressure
update reads the two adjacent ``U`` faces and the two adjacent ``V``
faces.  The mapping strategies E8 compares:

* ``template-cyclic`` — T(0:2N,0:2N) with staggered alignments and
  (CYCLIC,CYCLIC): "the worst possible effect, viz. different processor
  allocations for any two neighbors";
* ``template-block`` — same alignments, (BLOCK,BLOCK) on the template;
* ``direct-block`` — the paper's template-free answer: (BLOCK,BLOCK)
  directly on U, V, P (Vienna-variant blocks keep the N+1/N extents
  collocated);
* ``direct-general-block`` — the fully general answer with explicit
  irregular blocks.

Every case builds through the Session front door
(:mod:`repro.api.session`) — arrays are declared and mapped with the
fluent :class:`~repro.api.array.DistributedArray` directives, statements
and loops are recorded lazily — so each workload reaches the schedule
cache, the ``-O2`` pass pipeline and both execution backends exactly as
any user program does.  The ``*_case``/``*_program`` helpers remain as
thin views over the session for callers that drive executors by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.errors import MappingError
from repro.fortran.triplet import Triplet
from repro.templates.model import TemplateDataSpace

__all__ = ["StencilCase", "staggered_grid_case", "jacobi_case",
           "jacobi_program", "jacobi_session", "smoothing_sweep"]


@dataclass
class StencilCase:
    """A ready-to-execute stencil configuration."""

    name: str
    ds: DataSpace
    statement: Assignment
    #: the template data space for template-based strategies (else None)
    tds: TemplateDataSpace | None = None
    #: the session whose scope ``ds`` is (None for mirrored template
    #: strategies, whose data space is frozen out of a template scope)
    session: Session | None = None


def _staggered_statement(u, v, p) -> Assignment:
    """``P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)`` via the
    handles' NumPy-flavored sections."""
    return Assignment(p.ref(),
                      u[:-1, :] + u[1:, :] + v[:, :-1] + v[:, 1:])


def staggered_grid_case(n: int, rows: int, cols: int,
                        strategy: str, **session_kwargs) -> StencilCase:
    """Build the §8.1.1 workload under one of the E8 mapping strategies.

    ``strategy``: ``template-cyclic`` | ``template-block`` |
    ``direct-block`` | ``direct-cyclic`` | ``direct-general-block`` |
    ``direct-hpf-block`` | ``max-align``.
    """
    session_kwargs.setdefault("machine", False)
    s = Session(rows * cols, **session_kwargs)
    pr = s.processors("PR", rows, cols)
    u = s.array("U", (0, n), (1, n))
    v = s.array("V", (1, n), (0, n))
    p = s.array("P", (1, n), (1, n))
    stmt = _staggered_statement(u, v, p)

    if strategy.startswith("template-"):
        tds = TemplateDataSpace(ap=s.ds.ap)
        tds.template("T", (0, 2 * n), (0, 2 * n))
        tds.declare("U", (0, n), (1, n))
        tds.declare("V", (1, n), (0, n))
        tds.declare("P", (1, n), (1, n))
        i, j = Dummy("I"), Dummy("J")
        tds.align(AlignSpec("P", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i - 1), BaseExpr(2 * j - 1)]))
        tds.align(AlignSpec("U", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i), BaseExpr(2 * j - 1)]))
        tds.align(AlignSpec("V", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i - 1), BaseExpr(2 * j)]))
        if strategy == "template-cyclic":
            tds.distribute("T", [Cyclic(), Cyclic()], to=pr)
        elif strategy == "template-block":
            tds.distribute("T", [Block(), Block()], to=pr)
        else:
            raise MappingError(f"unknown strategy {strategy!r}")
        # mirror the template-induced distributions into an executable
        # data space (frozen entries) so the simulator can run them
        ds = _mirror(tds, n)
        return StencilCase(strategy, ds, stmt, tds=tds)

    if strategy == "direct-block":
        vienna = (Block(variant=BlockVariant.VIENNA),
                  Block(variant=BlockVariant.VIENNA))
        for h in (u, v, p):
            h.distribute(*vienna, to=pr)
    elif strategy == "max-align":
        # the paper's explicit-alignment answer (§8.1.1): "Our extension
        # of the HPF alignment directive (which allows restricted usage
        # of MAX and MIN), will suffice" — fold U's extra row and V's
        # extra column onto P's first row/column, no template needed
        from repro.align.ast import Call, Const
        p.distribute(Block(variant=BlockVariant.VIENNA),
                     Block(variant=BlockVariant.VIENNA), to=pr)
        u.align(p, lambda I, J: (Call("MAX", [Const(1), I]), J))
        v.align(p, lambda I, J: (I, Call("MAX", [Const(1), J])))
    elif strategy == "direct-hpf-block":
        for h in (u, v, p):
            h.distribute(Block(), Block(), to=pr)
    elif strategy == "direct-cyclic":
        for h in (u, v, p):
            h.distribute(Cyclic(), Cyclic(), to=pr)
    elif strategy == "direct-general-block":
        # identical explicit irregular blocks for all three arrays,
        # built from the P partition so U's extra row / V's extra column
        # join the first block
        row_bounds = _balanced_bounds(1, n, rows)
        col_bounds = _balanced_bounds(1, n, cols)
        for h in (u, v, p):
            h.distribute(GeneralBlock(row_bounds),
                         GeneralBlock(col_bounds), to=pr)
    else:
        raise MappingError(f"unknown strategy {strategy!r}")
    return StencilCase(strategy, s.ds, stmt, session=s)


def _balanced_bounds(lo: int, hi: int, parts: int) -> list[int]:
    """Cumulative upper bounds splitting [lo:hi] into near-equal parts."""
    n = hi - lo + 1
    out = []
    acc = lo - 1
    q, r = divmod(n, parts)
    for p in range(parts - 1):
        acc += q + (1 if p < r else 0)
        out.append(acc)
    return out


def _mirror(tds: TemplateDataSpace, n: int) -> DataSpace:
    """Fresh executable data space whose U/V/P carry the template-induced
    distributions (frozen), so the executor can run against them."""
    from repro.core.dataspace import _DistEntry
    out = DataSpace(ap=tds.ap)
    out.declare("U", (0, n), (1, n))
    out.declare("V", (1, n), (0, n))
    out.declare("P", (1, n), (1, n))
    for name in ("U", "V", "P"):
        out._dist[name] = _DistEntry(tds.distribution_of(name), "frozen")
    return out


def jacobi_case(n: int, rows: int, cols: int, fmts=None,
                **session_kwargs) -> StencilCase:
    """A 5-point Jacobi relaxation ``XNEW(2:N-1, 2:N-1) = 0.25 * (X(1:N-2,
    2:N-1) + X(3:N, 2:N-1) + X(2:N-1, 1:N-2) + X(2:N-1, 3:N))``."""
    session_kwargs.setdefault("machine", False)
    s = Session(rows * cols, **session_kwargs)
    pr = s.processors("PR", rows, cols)
    fmts = list(fmts) if fmts is not None else [Block(), Block()]
    x = s.array("X", n, n).distribute(fmts, to=pr)
    xnew = s.array("XNEW", n, n).distribute(fmts, to=pr)
    stmt = Assignment(
        xnew[1:-1, 1:-1],
        0.25 * (x[:-2, 1:-1] + x[2:, 1:-1]
                + x[1:-1, :-2] + x[1:-1, 2:]))
    return StencilCase("jacobi", s.ds, stmt, session=s)


def smoothing_sweep(field: str, new: str, res: str,
                    n: int) -> list[Assignment]:
    """One naive Jacobi smoothing sweep over an ``n x n`` grid: the
    5-point update, the residual of the old iterate (the convergence
    check, re-reading the same four halo faces the update just
    fetched — the source-level redundancy the optimizer's halo-validity
    pass eliminates), and the copy-back."""
    inner = Triplet(2, n - 1)
    neighbours = (ArrayRef(field, (Triplet(1, n - 2), inner))
                  + ArrayRef(field, (Triplet(3, n), inner))
                  + ArrayRef(field, (inner, Triplet(1, n - 2)))
                  + ArrayRef(field, (inner, Triplet(3, n))))
    update = Assignment(ArrayRef(new, (inner, inner)), 0.25 * neighbours)
    residual = Assignment(
        ArrayRef(res, (inner, inner)),
        neighbours - 4.0 * ArrayRef(field, (inner, inner)))
    copy_back = Assignment(ArrayRef(field, (inner, inner)),
                           ArrayRef(new, (inner, inner)))
    return [update, residual, copy_back]


def jacobi_session(n: int, rows: int, cols: int, iters: int = 10,
                   fmts=None, **session_kwargs) -> Session:
    """The iterated Jacobi benchmark, recorded lazily on a Session: per
    sweep, the 5-point update, the residual of the old iterate, and the
    copy-back::

        DO IT = 1, ITERS
          XNEW(2:N-1,2:N-1) = 0.25*(X(1:N-2,:)+X(3:N,:)+X(:,1:N-2)+X(:,3:N))
          R(2:N-1,2:N-1)    =       X(1:N-2,:)+X(3:N,:)+X(:,1:N-2)+X(:,3:N)
                                    - 4.0*X(2:N-1,2:N-1)
          X(2:N-1,2:N-1)    = XNEW(2:N-1,2:N-1)
        END DO

    written the way the source naturally reads — the residual re-fetches
    the same four halo faces the update just fetched.  Per-statement
    execution (``opt=0``) exchanges them twice per sweep; the optimizer's
    halo-validity pass proves the second fetch redundant.  The program
    stays recorded: call :meth:`~repro.api.session.Session.run` to
    execute it under the session's backend and opt level.
    """
    s = Session(rows * cols, **session_kwargs)
    pr = s.processors("PR", rows, cols)
    fmts = list(fmts) if fmts is not None else [Block(), Block()]
    for name in ("X", "XNEW", "R"):
        s.array(name, n, n).distribute(fmts, to=pr)
    with s.loop(iters):
        s.record(*smoothing_sweep("X", "XNEW", "R", n))
    return s


def jacobi_program(n: int, rows: int, cols: int, iters: int = 10,
                   fmts=None):
    """Compatibility view over :func:`jacobi_session`: returns the
    ``(ds, graph)`` pair callers drive through a
    :class:`~repro.engine.passes.ProgramRunner` by hand."""
    s = jacobi_session(n, rows, cols, iters=iters, fmts=fmts,
                       machine=False)
    return s.ds, s.builder.take()
