"""Stencil workloads: the staggered grid of §8.1.1 and Jacobi relaxation.

The staggered grid is the paper's flagship example (posted to the HPFF
distribution list by C. A. Thole)::

    REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
    P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)

``P`` sits at cell centres, ``U``/``V`` on cell faces; each pressure
update reads the two adjacent ``U`` faces and the two adjacent ``V``
faces.  The mapping strategies E8 compares:

* ``template-cyclic`` — T(0:2N,0:2N) with staggered alignments and
  (CYCLIC,CYCLIC): "the worst possible effect, viz. different processor
  allocations for any two neighbors";
* ``template-block`` — same alignments, (BLOCK,BLOCK) on the template;
* ``direct-block`` — the paper's template-free answer: (BLOCK,BLOCK)
  directly on U, V, P (Vienna-variant blocks keep the N+1/N extents
  collocated);
* ``direct-general-block`` — the fully general answer with explicit
  irregular blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.errors import MappingError
from repro.fortran.triplet import Triplet
from repro.templates.model import TemplateDataSpace

__all__ = ["StencilCase", "staggered_grid_case", "jacobi_case",
           "jacobi_program", "smoothing_sweep"]


@dataclass
class StencilCase:
    """A ready-to-execute stencil configuration."""

    name: str
    ds: DataSpace
    statement: Assignment
    #: the template data space for template-based strategies (else None)
    tds: TemplateDataSpace | None = None


def _staggered_statement(n: int) -> Assignment:
    lhs = ArrayRef("P")
    rhs = (ArrayRef("U", (Triplet(0, n - 1), Triplet(1, n)))
           + ArrayRef("U", (Triplet(1, n), Triplet(1, n)))
           + ArrayRef("V", (Triplet(1, n), Triplet(0, n - 1)))
           + ArrayRef("V", (Triplet(1, n), Triplet(1, n))))
    return Assignment(lhs, rhs)


def staggered_grid_case(n: int, rows: int, cols: int,
                        strategy: str) -> StencilCase:
    """Build the §8.1.1 workload under one of the E8 mapping strategies.

    ``strategy``: ``template-cyclic`` | ``template-block`` |
    ``direct-block`` | ``direct-cyclic`` | ``direct-general-block``.
    """
    nprocs = rows * cols
    ds = DataSpace(nprocs)
    pr = ds.processors("PR", rows, cols)
    ds.declare("U", (0, n), (1, n))
    ds.declare("V", (1, n), (0, n))
    ds.declare("P", (1, n), (1, n))
    stmt = _staggered_statement(n)

    if strategy.startswith("template-"):
        tds = TemplateDataSpace(ap=ds.ap)
        tds.template("T", (0, 2 * n), (0, 2 * n))
        tds.declare("U", (0, n), (1, n))
        tds.declare("V", (1, n), (0, n))
        tds.declare("P", (1, n), (1, n))
        i, j = Dummy("I"), Dummy("J")
        tds.align(AlignSpec("P", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i - 1), BaseExpr(2 * j - 1)]))
        tds.align(AlignSpec("U", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i), BaseExpr(2 * j - 1)]))
        tds.align(AlignSpec("V", [AxisDummy("I"), AxisDummy("J")], "T",
                            [BaseExpr(2 * i - 1), BaseExpr(2 * j)]))
        if strategy == "template-cyclic":
            tds.distribute("T", [Cyclic(), Cyclic()], to=pr)
        elif strategy == "template-block":
            tds.distribute("T", [Block(), Block()], to=pr)
        else:
            raise MappingError(f"unknown strategy {strategy!r}")
        # mirror the template-induced distributions into an executable
        # data space (frozen entries) so the simulator can run them
        ds = _mirror(tds, n)
        return StencilCase(strategy, ds, stmt, tds=tds)

    if strategy == "direct-block":
        fmts = [Block(variant=BlockVariant.VIENNA),
                Block(variant=BlockVariant.VIENNA)]
        for name in ("U", "V", "P"):
            ds.distribute(name, fmts, to=pr)
    elif strategy == "max-align":
        # the paper's explicit-alignment answer (§8.1.1): "Our extension
        # of the HPF alignment directive (which allows restricted usage
        # of MAX and MIN), will suffice" — fold U's extra row and V's
        # extra column onto P's first row/column, no template needed
        from repro.align.ast import Call, Const
        i, j = Dummy("I"), Dummy("J")
        ds.distribute("P", [Block(variant=BlockVariant.VIENNA),
                            Block(variant=BlockVariant.VIENNA)], to=pr)
        ds.align(AlignSpec(
            "U", [AxisDummy("I"), AxisDummy("J")], "P",
            [BaseExpr(Call("MAX", [Const(1), i])), BaseExpr(j)]))
        ds.align(AlignSpec(
            "V", [AxisDummy("I"), AxisDummy("J")], "P",
            [BaseExpr(i), BaseExpr(Call("MAX", [Const(1), j]))]))
    elif strategy == "direct-hpf-block":
        for name in ("U", "V", "P"):
            ds.distribute(name, [Block(), Block()], to=pr)
    elif strategy == "direct-cyclic":
        for name in ("U", "V", "P"):
            ds.distribute(name, [Cyclic(), Cyclic()], to=pr)
    elif strategy == "direct-general-block":
        # identical explicit irregular blocks for all three arrays,
        # built from the P partition so U's extra row / V's extra column
        # join the first block
        row_bounds = _balanced_bounds(1, n, rows)
        col_bounds = _balanced_bounds(1, n, cols)
        for name in ("U", "V", "P"):
            ds.distribute(name, [GeneralBlock(row_bounds),
                                 GeneralBlock(col_bounds)], to=pr)
    else:
        raise MappingError(f"unknown strategy {strategy!r}")
    return StencilCase(strategy, ds, stmt)


def _balanced_bounds(lo: int, hi: int, parts: int) -> list[int]:
    """Cumulative upper bounds splitting [lo:hi] into near-equal parts."""
    n = hi - lo + 1
    out = []
    acc = lo - 1
    q, r = divmod(n, parts)
    for p in range(parts - 1):
        acc += q + (1 if p < r else 0)
        out.append(acc)
    return out


def _mirror(tds: TemplateDataSpace, n: int) -> DataSpace:
    """Fresh executable data space whose U/V/P carry the template-induced
    distributions (frozen), so the executor can run against them."""
    from repro.core.dataspace import _DistEntry
    out = DataSpace(ap=tds.ap)
    out.declare("U", (0, n), (1, n))
    out.declare("V", (1, n), (0, n))
    out.declare("P", (1, n), (1, n))
    for name in ("U", "V", "P"):
        out._dist[name] = _DistEntry(tds.distribution_of(name), "frozen")
    return out


def jacobi_case(n: int, rows: int, cols: int,
                fmts=None) -> StencilCase:
    """A 5-point Jacobi relaxation ``XNEW(2:N-1, 2:N-1) = 0.25 * (X(1:N-2,
    2:N-1) + X(3:N, 2:N-1) + X(2:N-1, 1:N-2) + X(2:N-1, 3:N))``."""
    nprocs = rows * cols
    ds = DataSpace(nprocs)
    pr = ds.processors("PR", rows, cols)
    ds.declare("X", n, n)
    ds.declare("XNEW", n, n)
    fmts = fmts if fmts is not None else [Block(), Block()]
    ds.distribute("X", fmts, to=pr)
    ds.distribute("XNEW", fmts, to=pr)
    inner = Triplet(2, n - 1)
    lhs = ArrayRef("XNEW", (inner, inner))
    rhs = 0.25 * (ArrayRef("X", (Triplet(1, n - 2), inner))
                  + ArrayRef("X", (Triplet(3, n), inner))
                  + ArrayRef("X", (inner, Triplet(1, n - 2)))
                  + ArrayRef("X", (inner, Triplet(3, n))))
    return StencilCase("jacobi", ds, Assignment(lhs, rhs))


def smoothing_sweep(field: str, new: str, res: str,
                    n: int) -> list[Assignment]:
    """One naive Jacobi smoothing sweep over an ``n x n`` grid: the
    5-point update, the residual of the old iterate (the convergence
    check, re-reading the same four halo faces the update just
    fetched — the source-level redundancy the optimizer's halo-validity
    pass eliminates), and the copy-back."""
    inner = Triplet(2, n - 1)
    neighbours = (ArrayRef(field, (Triplet(1, n - 2), inner))
                  + ArrayRef(field, (Triplet(3, n), inner))
                  + ArrayRef(field, (inner, Triplet(1, n - 2)))
                  + ArrayRef(field, (inner, Triplet(3, n))))
    update = Assignment(ArrayRef(new, (inner, inner)), 0.25 * neighbours)
    residual = Assignment(
        ArrayRef(res, (inner, inner)),
        neighbours - 4.0 * ArrayRef(field, (inner, inner)))
    copy_back = Assignment(ArrayRef(field, (inner, inner)),
                           ArrayRef(new, (inner, inner)))
    return [update, residual, copy_back]


def jacobi_program(n: int, rows: int, cols: int, iters: int = 10,
                   fmts=None):
    """The iterated Jacobi benchmark as a program graph: per sweep, the
    5-point update, the residual of the old iterate, and the copy-back::

        DO IT = 1, ITERS
          XNEW(2:N-1,2:N-1) = 0.25*(X(1:N-2,:)+X(3:N,:)+X(:,1:N-2)+X(:,3:N))
          R(2:N-1,2:N-1)    =       X(1:N-2,:)+X(3:N,:)+X(:,1:N-2)+X(:,3:N)
                                    - 4.0*X(2:N-1,2:N-1)
          X(2:N-1,2:N-1)    = XNEW(2:N-1,2:N-1)
        END DO

    written the way the source naturally reads — the residual re-fetches
    the same four halo faces the update just fetched.  Per-statement
    execution (``-O0``) exchanges them twice per sweep; the optimizer's
    halo-validity pass proves the second fetch redundant.  Returns
    ``(ds, graph)``.
    """
    from repro.engine.ir import ProgramGraph

    case = jacobi_case(n, rows, cols, fmts)
    ds = case.ds
    ds.declare("R", n, n)
    ds.distribute("R", [Block(), Block()] if fmts is None else list(fmts),
                  to="PR")
    graph = ProgramGraph()
    graph.loop(iters, smoothing_sweep("X", "XNEW", "R", n))
    return ds, graph
