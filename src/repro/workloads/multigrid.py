"""A two-level multigrid V-cycle as a program graph.

The cycle the optimizer is measured on: pre-smooth on the fine grid
(Jacobi sweep + residual, written naively so the residual re-reads the
smoothing halos), restrict the residual to the coarse grid by injection
(a strided section copy — real redistribution traffic, the fine and
coarse arrays are independently BLOCK-distributed), smooth the coarse
correction, prolong it back onto the fine iterate, post-smooth.  Every
piece is an ordinary array assignment over sections, so all three
execution backends run it unchanged; the interesting structure is the
*repetition* — per-statement execution re-exchanges every smoothing halo
twice per sweep, while the pass pipeline's validity tracking fetches
each face once.
"""

from __future__ import annotations

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.engine.ir import ProgramGraph
from repro.fortran.triplet import Triplet
from repro.workloads.stencil import smoothing_sweep

__all__ = ["multigrid_program"]


def multigrid_program(n: int, rows: int, cols: int, cycles: int = 2
                      ) -> tuple[DataSpace, ProgramGraph]:
    """Build the two-level V-cycle over an ``n x n`` fine grid (``n``
    even) on a ``rows x cols`` processor grid; returns ``(ds, graph)``.
    """
    if n % 2 or n < 8:
        raise ValueError(f"fine grid extent must be even and >= 8, got {n}")
    nc = n // 2
    ds = DataSpace(rows * cols)
    pr = ds.processors("PR", rows, cols)
    for name, extent in (("X", n), ("XNEW", n), ("R", n),
                         ("XC", nc), ("XCN", nc), ("RC", nc)):
        ds.declare(name, extent, extent)
        ds.distribute(name, [Block(), Block()], to=pr)

    fine_stride = Triplet(1, n - 1, 2)
    coarse_full = Triplet(1, nc)
    restrict = Assignment(ArrayRef("RC", (coarse_full, coarse_full)),
                          ArrayRef("R", (fine_stride, fine_stride)))
    # prolong by injection and apply the coarse correction
    correct = Assignment(
        ArrayRef("X", (fine_stride, fine_stride)),
        ArrayRef("X", (fine_stride, fine_stride))
        + ArrayRef("XC", (coarse_full, coarse_full)))

    body = (
        smoothing_sweep("X", "XNEW", "R", n)      # pre-smooth (fine)
        + [restrict]                              # residual -> coarse
        + smoothing_sweep("XC", "XCN", "RC", nc)  # smooth the correction
        + [correct]                               # prolong + correct
        + smoothing_sweep("X", "XNEW", "R", n)    # post-smooth (fine)
    )
    graph = ProgramGraph()
    graph.loop(cycles, body)
    return ds, graph
