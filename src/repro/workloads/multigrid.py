"""A two-level multigrid V-cycle as a lazily recorded Session program.

The cycle the optimizer is measured on: pre-smooth on the fine grid
(Jacobi sweep + residual, written naively so the residual re-reads the
smoothing halos), restrict the residual to the coarse grid by injection
(a strided section copy — real redistribution traffic, the fine and
coarse arrays are independently BLOCK-distributed), smooth the coarse
correction, prolong it back onto the fine iterate, post-smooth.  Every
piece is an ordinary array assignment over sections, so all three
execution backends run it unchanged; the interesting structure is the
*repetition* — per-statement execution re-exchanges every smoothing halo
twice per sweep, while the pass pipeline's validity tracking fetches
each face once.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.engine.assignment import Assignment
from repro.engine.ir import ProgramGraph
from repro.workloads.stencil import smoothing_sweep

__all__ = ["multigrid_program", "multigrid_session"]


def multigrid_session(n: int, rows: int, cols: int, cycles: int = 2,
                      **session_kwargs) -> Session:
    """Record the two-level V-cycle over an ``n x n`` fine grid (``n``
    even) on a ``rows x cols`` processor grid; run it with
    :meth:`~repro.api.session.Session.run`.
    """
    if n % 2 or n < 8:
        raise ValueError(f"fine grid extent must be even and >= 8, got {n}")
    nc = n // 2
    s = Session(rows * cols, **session_kwargs)
    pr = s.processors("PR", rows, cols)
    handles = {}
    for name, extent in (("X", n), ("XNEW", n), ("R", n),
                         ("XC", nc), ("XCN", nc), ("RC", nc)):
        handles[name] = s.array(name, extent, extent).distribute(
            Block(), Block(), to=pr)

    x, r, xc, rc = (handles[k] for k in ("X", "R", "XC", "RC"))
    # restrict by injection: every second fine point -> the coarse grid
    restrict = Assignment(rc[:, :], r[::2, ::2])
    # prolong by injection and apply the coarse correction
    correct = Assignment(x[::2, ::2], x[::2, ::2] + xc[:, :])

    body = (
        smoothing_sweep("X", "XNEW", "R", n)      # pre-smooth (fine)
        + [restrict]                              # residual -> coarse
        + smoothing_sweep("XC", "XCN", "RC", nc)  # smooth the correction
        + [correct]                               # prolong + correct
        + smoothing_sweep("X", "XNEW", "R", n)    # post-smooth (fine)
    )
    with s.loop(cycles):
        s.record(*body)
    return s


def multigrid_program(n: int, rows: int, cols: int, cycles: int = 2
                      ) -> tuple[DataSpace, ProgramGraph]:
    """Compatibility view over :func:`multigrid_session`: the
    ``(ds, graph)`` pair for hand-driven
    :class:`~repro.engine.passes.ProgramRunner` callers."""
    s = multigrid_session(n, rows, cols, cycles=cycles, machine=False)
    return s.ds, s.builder.take()
