"""Deterministic sweep and RNG helpers shared by benches and tests."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["sweep", "seeded_rng"]


def sweep(**axes: Iterable) -> Iterator[Mapping[str, object]]:
    """Cartesian parameter sweep: ``sweep(n=[64,128], p=[4,16])`` yields
    dicts in deterministic (itertools.product) order."""
    keys = list(axes.keys())
    for combo in itertools.product(*axes.values()):
        yield dict(zip(keys, combo))


def seeded_rng(*key: object) -> np.random.Generator:
    """A generator seeded deterministically from a structured key, so
    every bench/test invocation sees identical 'random' data."""
    seed = abs(hash(tuple(str(k) for k in key))) % (2**32)
    return np.random.default_rng(seed)
