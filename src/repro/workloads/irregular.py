"""Irregular-cost workloads for the GENERAL_BLOCK experiment (E3).

The paper motivates GENERAL_BLOCK with load balancing: when per-index
work varies (triangular solvers, adaptive grids, particle columns),
equal-size BLOCKs concentrate work on few processors, while GENERAL_BLOCK
bounds can equalize the *work* per block.  These generators produce the
cost profiles and the imbalance metric the experiment reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["triangular_costs", "power_law_costs", "stepped_costs",
           "imbalance_of_partition", "lpt_partition"]


def triangular_costs(n: int) -> np.ndarray:
    """Cost(i) = i — the dense-triangular-solve profile."""
    return np.arange(1, n + 1, dtype=np.float64)


def power_law_costs(n: int, exponent: float = 2.0) -> np.ndarray:
    """Cost(i) = i**exponent — sharper skew than triangular."""
    return np.arange(1, n + 1, dtype=np.float64) ** exponent


def stepped_costs(n: int, heavy_fraction: float = 0.1,
                  heavy_weight: float = 50.0,
                  seed: int = 0) -> np.ndarray:
    """A small random fraction of rows is ``heavy_weight`` x as costly
    (adaptive-refinement style), deterministic per ``seed``."""
    rng = np.random.default_rng(seed)
    costs = np.ones(n, dtype=np.float64)
    heavy = rng.choice(n, size=max(int(n * heavy_fraction), 1),
                       replace=False)
    costs[heavy] = heavy_weight
    return costs


def lpt_partition(costs: np.ndarray, n_processors: int) -> np.ndarray:
    """Greedy longest-processing-time partition: heaviest rows first,
    each to the currently least-loaded processor.  The resulting owner
    array is exactly what an ``INDIRECT`` distribution takes — the
    user-defined generality the paper credits Kali/Vienna Fortran with
    (non-contiguous pieces, which no BLOCK/CYCLIC/GENERAL_BLOCK form
    can express)."""
    costs = np.asarray(costs, dtype=np.float64)
    order = np.argsort(costs)[::-1]
    work = np.zeros(n_processors)
    owner = np.empty(len(costs), dtype=np.int64)
    for idx in order:
        p = int(work.argmin())
        owner[idx] = p
        work[p] += costs[idx]
    return owner


def imbalance_of_partition(costs: np.ndarray,
                           owner_of_index: np.ndarray,
                           n_processors: int) -> tuple[float, np.ndarray]:
    """(max/mean work ratio, per-processor work) for a 1-D partition."""
    costs = np.asarray(costs, dtype=np.float64)
    owners = np.asarray(owner_of_index)
    work = np.bincount(owners, weights=costs, minlength=n_processors)
    mean = work.sum() / n_processors
    ratio = float(work.max() / mean) if mean > 0 else 1.0
    return ratio, work
