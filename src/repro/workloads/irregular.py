"""Irregular-cost workloads for the GENERAL_BLOCK experiment (E3).

The paper motivates GENERAL_BLOCK with load balancing: when per-index
work varies (triangular solvers, adaptive grids, particle columns),
equal-size BLOCKs concentrate work on few processors, while GENERAL_BLOCK
bounds can equalize the *work* per block.  These generators produce the
cost profiles and the imbalance metric the experiment reports; the
partitioners themselves live in :mod:`repro.autotune.partition` (one
implementation shared with the distribution layer and the autotune
advisor) — the re-exports here keep the historical workload surface.

:func:`imbalanced_jacobi_session` is the acceptance workload of the
autotune subsystem: a skew-cost Jacobi sweep whose declared
``cost_profile`` makes ``Session(opt="auto")`` propose — and adopt —
a balanced GENERAL_BLOCK re-partition mid-run.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.partition import lpt_partition, partition_work

__all__ = ["triangular_costs", "power_law_costs", "stepped_costs",
           "imbalance_of_partition", "lpt_partition",
           "imbalanced_jacobi_session"]


def triangular_costs(n: int) -> np.ndarray:
    """Cost(i) = i — the dense-triangular-solve profile."""
    return np.arange(1, n + 1, dtype=np.float64)


def power_law_costs(n: int, exponent: float = 2.0) -> np.ndarray:
    """Cost(i) = i**exponent — sharper skew than triangular."""
    return np.arange(1, n + 1, dtype=np.float64) ** exponent


def stepped_costs(n: int, heavy_fraction: float = 0.1,
                  heavy_weight: float = 50.0,
                  seed: int = 0) -> np.ndarray:
    """A small random fraction of rows is ``heavy_weight`` x as costly
    (adaptive-refinement style), deterministic per ``seed``."""
    rng = np.random.default_rng(seed)
    costs = np.ones(n, dtype=np.float64)
    heavy = rng.choice(n, size=max(int(n * heavy_fraction), 1),
                       replace=False)
    costs[heavy] = heavy_weight
    return costs


def imbalance_of_partition(costs: np.ndarray,
                           owner_of_index: np.ndarray,
                           n_processors: int) -> tuple[float, np.ndarray]:
    """(max/mean work ratio, per-processor work) for a 1-D partition."""
    work = partition_work(costs, owner_of_index, n_processors)
    mean = work.sum() / n_processors
    ratio = float(work.max() / mean) if mean > 0 else 1.0
    return ratio, work


def imbalanced_jacobi_session(n: int, np_: int, iters: int = 10, *,
                              costs: np.ndarray | None = None,
                              exponent: float = 2.0,
                              fmts=None, **session_kwargs):
    """A Jacobi sweep over a skew-cost DYNAMIC array, recorded lazily.

    ``X(n, n)`` starts ``(BLOCK, *)`` over a 1-D arrangement of ``np_``
    processors (override via ``fmts``) with a declared per-row
    ``cost_profile`` (power-law of ``exponent`` unless ``costs`` is
    given) — the static layout is maximally imbalanced for the profile,
    which is exactly the situation ``Session(opt="auto")`` exists for.
    Returns the session with ``iters`` trips of a 5-point update
    pending; pass ``opt=...``/``backend=...`` through
    ``session_kwargs``.
    """
    from repro.api.session import Session
    from repro.distributions.base import Collapsed
    from repro.distributions.block import Block
    from repro.engine.assignment import Assignment
    from repro.engine.expr import ArrayRef
    from repro.fortran.triplet import Triplet

    s = Session(np_, **session_kwargs)
    pr = s.processors("PR", np_)
    x = s.array("X", n, n, dynamic=True)
    x.distribute(*(fmts if fmts is not None else (Block(), Collapsed())),
                 to=pr)
    weights = costs if costs is not None \
        else power_law_costs(n, exponent)
    x.cost_profile(weights)
    rows = np.arange(1, n + 1, dtype=np.float64)
    s.ds.arrays["X"].data[:] = np.add.outer(rows, rows) % 7.0
    inner = Triplet(2, n - 1)
    up = Triplet(1, n - 2)
    down = Triplet(3, n)
    with s.loop(iters):
        s.record(Assignment(
            ArrayRef("X", (inner, inner)),
            0.25 * (ArrayRef("X", (up, inner))
                    + ArrayRef("X", (down, inner))
                    + ArrayRef("X", (inner, up))
                    + ArrayRef("X", (inner, down)))))
    return s
