"""Workload generators for the experiments (substrate S10).

Every workload builds through the Session front door
(:mod:`repro.api.session`), so each one automatically gets schedule
caching, the ``-O2`` pass pipeline and both execution backends:

* :mod:`~repro.workloads.stencil` — the §8.1.1 staggered grid (Thole)
  and a 5-point Jacobi relaxation as ready-made cases, plus the
  iterated Jacobi-with-residual loop (``jacobi_session`` /
  ``jacobi_program``);
* :mod:`~repro.workloads.multigrid` — a two-level V-cycle
  (``multigrid_session`` / ``multigrid_program``), the optimizer
  pipeline's second benchmark;
* :mod:`~repro.workloads.irregular` — irregular per-row cost models and
  partitioners (LPT greedy) for the GENERAL_BLOCK/INDIRECT
  load-balancing experiments (E3);
* :mod:`~repro.workloads.generators` — deterministic parameter sweeps.
"""

from repro.workloads.stencil import (
    StencilCase,
    staggered_grid_case,
    jacobi_case,
    jacobi_program,
    jacobi_session,
)
from repro.workloads.multigrid import multigrid_program, multigrid_session
from repro.workloads.irregular import (
    triangular_costs,
    power_law_costs,
    stepped_costs,
    imbalance_of_partition,
    imbalanced_jacobi_session,
    lpt_partition,
)
from repro.workloads.generators import sweep, seeded_rng

__all__ = [
    "StencilCase",
    "staggered_grid_case",
    "jacobi_case",
    "jacobi_program",
    "jacobi_session",
    "multigrid_program",
    "multigrid_session",
    "triangular_costs",
    "power_law_costs",
    "stepped_costs",
    "imbalance_of_partition",
    "imbalanced_jacobi_session",
    "lpt_partition",
    "sweep",
    "seeded_rng",
]
