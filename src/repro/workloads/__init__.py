"""Workload generators for the experiments (substrate S10).

* :mod:`~repro.workloads.stencil` — the §8.1.1 staggered grid (Thole) and
  a 5-point Jacobi relaxation, as ready-made data spaces + statements,
  plus the iterated Jacobi-with-residual program graph;
* :mod:`~repro.workloads.multigrid` — a two-level V-cycle program graph
  (the optimizer pipeline's second benchmark);
* :mod:`~repro.workloads.irregular` — irregular per-row cost models for
  the GENERAL_BLOCK load-balancing experiment (E3);
* :mod:`~repro.workloads.generators` — deterministic parameter sweeps.
"""

from repro.workloads.stencil import (
    StencilCase,
    staggered_grid_case,
    jacobi_case,
    jacobi_program,
)
from repro.workloads.multigrid import multigrid_program
from repro.workloads.irregular import (
    triangular_costs,
    power_law_costs,
    stepped_costs,
    imbalance_of_partition,
)
from repro.workloads.generators import sweep, seeded_rng

__all__ = [
    "StencilCase",
    "staggered_grid_case",
    "jacobi_case",
    "jacobi_program",
    "multigrid_program",
    "triangular_costs",
    "power_law_costs",
    "stepped_costs",
    "imbalance_of_partition",
    "sweep",
    "seeded_rng",
]
