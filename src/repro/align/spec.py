"""Parsed form of an ALIGN/REALIGN directive (§5).

::

    ALIGN A(s1, ..., sn) WITH B(t1, ..., tm)

Every alignee axis ``si`` is ``:``, ``*`` or an align-dummy; every base
subscript ``tj`` is a dummyless expression, a dummy-use expression, a
subscript triplet, or ``*`` (replication).  The spec is purely syntactic;
:func:`repro.align.reduce.reduce_alignment` gives it meaning against
concrete index domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.align.ast import Expr, dummies_in
from repro.errors import AlignmentError

__all__ = [
    "AxisColon", "AxisStar", "AxisDummy", "AligneeAxis",
    "BaseExpr", "BaseTriplet", "BaseStar", "BaseSubscript",
    "AlignSpec",
]


@dataclass(frozen=True)
class AxisColon:
    """Alignee axis ``:`` — spread across the matching base triplet axis."""

    def __str__(self) -> str:
        return ":"


@dataclass(frozen=True)
class AxisStar:
    """Alignee axis ``*`` — collapsed: positions along the axis make no
    difference in determining the base position."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class AxisDummy:
    """Alignee axis bound to an align-dummy (a scalar integer variable)."""

    name: str

    def __str__(self) -> str:
        return self.name


AligneeAxis = Union[AxisColon, AxisStar, AxisDummy]


@dataclass(frozen=True)
class BaseExpr:
    """Base subscript that is a scalar integer expression (dummyless or
    using exactly one align-dummy).  Plain ints coerce to constants."""

    expr: Expr

    def __post_init__(self) -> None:
        if isinstance(self.expr, int):
            from repro.align.ast import Const
            object.__setattr__(self, "expr", Const(self.expr))

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class BaseTriplet:
    """Base subscript that is a subscript triplet ``[LT : UT : ST]``.

    Any of the parts may be ``None`` meaning "take the bound of the base
    dimension" (for LT/UT) or stride 1 (for ST); parts may be expressions
    resolved at reduction time.
    """

    lower: Expr | None = None
    upper: Expr | None = None
    stride: Expr | None = None

    def __str__(self) -> str:
        lo = "" if self.lower is None else str(self.lower)
        up = "" if self.upper is None else str(self.upper)
        st = "" if self.stride is None else f":{self.stride}"
        return f"{lo}:{up}{st}"


@dataclass(frozen=True)
class BaseStar:
    """Base subscript ``*`` — replication across that base axis."""

    def __str__(self) -> str:
        return "*"


BaseSubscript = Union[BaseExpr, BaseTriplet, BaseStar]


@dataclass(frozen=True)
class AlignSpec:
    """The parsed directive ``ALIGN <alignee>(axes) WITH <base>(subs)``."""

    alignee: str
    axes: tuple[AligneeAxis, ...]
    base: str
    subscripts: tuple[BaseSubscript, ...]

    def __init__(self, alignee: str, axes: Sequence[AligneeAxis],
                 base: str, subscripts: Sequence[BaseSubscript]) -> None:
        object.__setattr__(self, "alignee", alignee)
        object.__setattr__(self, "axes", tuple(axes))
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "subscripts", tuple(subscripts))
        self._validate()

    def _validate(self) -> None:
        seen: set[str] = set()
        for a in self.axes:
            if isinstance(a, AxisDummy):
                if a.name in seen:
                    raise AlignmentError(
                        f"align-dummy {a.name!r} bound to more than one "
                        f"alignee axis in ALIGN {self.alignee}")
                seen.add(a.name)
        # every dummy used in the base must be declared on the alignee side
        for t in self.subscripts:
            if isinstance(t, BaseExpr):
                for d in dummies_in(t.expr):
                    if d not in seen:
                        raise AlignmentError(
                            f"align-dummy {d!r} used in base subscript "
                            f"{t} but not bound by an alignee axis")
        n_colon = sum(isinstance(a, AxisColon) for a in self.axes)
        n_triplet = sum(isinstance(t, BaseTriplet) for t in self.subscripts)
        if n_colon != n_triplet:
            raise AlignmentError(
                f"ALIGN {self.alignee}: {n_colon} ':' alignee axes must "
                f"match {n_triplet} base subscript-triplets one-to-one "
                "(analogous to array assignment, §5.1)")

    @property
    def dummy_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.axes if isinstance(a, AxisDummy))

    def __str__(self) -> str:
        axes = ", ".join(str(a) for a in self.axes)
        subs = ", ".join(str(t) for t in self.subscripts)
        return f"ALIGN {self.alignee}({axes}) WITH {self.base}({subs})"
