"""The §5.1 reduction transformations.

An ALIGN directive is given meaning by first applying a sequence of
transformations that eliminate ``:`` and ``*`` in the alignee and subscript
triplets as well as ``*`` in the base subscript list:

1. ``si = ":"`` matching the subscript triplet ``tj = [LT : UT : ST]``:
   the extent rule ``Ui - Li + 1 <= MAX(INT((UT - LT + ST) / ST), 0)`` must
   hold; ``si`` is replaced by a new align-dummy ``J`` and ``tj`` by the
   expression ``(J - Li) * ST + LT``  (analogous to array assignment).
2. ``si = "*"``: the axis is collapsed; ``si`` is replaced by a new
   align-dummy occurring nowhere else.
3. ``tj = "*"``: replication; the base subscript position ranges over all
   valid index values of that base dimension.

The result is a *reduced alignee* ``A(J1, ..., Jn)`` with distinct dummies
ranging over the alignee dimensions, and an *alignment base set* (ABS)
whose elements have one expression per base axis, each dummyless or using
exactly one dummy; each ``Ji`` may occur in at most one base subscript
(skew alignments are excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.align.ast import (
    BinOp, Const, Dummy, Expr, affine_coefficients, dummies_in,
    fold_constants,
)
from repro.align.spec import (
    AlignSpec, AxisColon, AxisDummy,
    BaseStar, BaseTriplet,
)
from repro.errors import AlignmentError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet

__all__ = ["ReducedAlignment", "ExprAxis", "ReplicatedAxis",
           "reduce_alignment"]


@dataclass(frozen=True)
class ExprAxis:
    """A reduced base axis carrying an expression.

    ``dummy`` is the single align-dummy occurring in ``expr`` (or ``None``
    for a dummyless expression); ``affine`` caches ``(a, b)`` when
    ``expr == a*dummy + b`` exactly, enabling the vectorized/triplet fast
    paths.
    """

    expr: Expr
    dummy: str | None
    affine: tuple[int, int] | None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class ReplicatedAxis:
    """A reduced base axis that was ``*``: ranges over the whole base dim."""

    def __str__(self) -> str:
        return "*"


BaseAxis = Union[ExprAxis, ReplicatedAxis]


@dataclass(frozen=True)
class ReducedAlignment:
    """The reduced alignee + alignment base set of §5.1.

    Attributes
    ----------
    alignee_domain, base_domain:
        ``I^A`` and ``I^B``.
    dummy_names:
        One distinct dummy per alignee axis (``A(J1, ..., Jn)``); the range
        of ``Ji`` is dimension ``i`` of the alignee domain.
    base_axes:
        One :class:`ExprAxis` or :class:`ReplicatedAxis` per base axis.
    collapsed_axes:
        0-based alignee axes whose dummy occurs in no base subscript
        (including every ``*`` alignee axis).
    """

    alignee_domain: IndexDomain
    base_domain: IndexDomain
    dummy_names: tuple[str, ...]
    base_axes: tuple[BaseAxis, ...]

    @property
    def collapsed_axes(self) -> frozenset[int]:
        used: set[str] = set()
        for ax in self.base_axes:
            if isinstance(ax, ExprAxis) and ax.dummy is not None:
                used.add(ax.dummy)
        return frozenset(k for k, d in enumerate(self.dummy_names)
                         if d not in used)

    def dummy_range(self, axis: int) -> Triplet:
        d = self.alignee_domain.dims[axis]
        return Triplet(d.lower, d.last, 1)

    def axis_of_dummy(self, dummy: str) -> int:
        return self.dummy_names.index(dummy)

    def __str__(self) -> str:
        dummies = ", ".join(self.dummy_names)
        base = ", ".join(str(a) for a in self.base_axes)
        return f"A({dummies}) -> ABS{{B({base})}}"


def reduce_alignment(spec: AlignSpec,
                     alignee_domain: IndexDomain,
                     base_domain: IndexDomain,
                     env: Mapping[str, int] | None = None
                     ) -> ReducedAlignment:
    """Apply the three §5.1 transformations to ``spec``.

    ``env`` supplies values for specification constants (``Name`` nodes)
    and folded inquiry intrinsics appearing in the directive.
    """
    env = dict(env or {})
    if len(spec.axes) != alignee_domain.rank:
        raise AlignmentError(
            f"{spec}: alignee has rank {alignee_domain.rank} but "
            f"{len(spec.axes)} axes were specified")
    if len(spec.subscripts) != base_domain.rank:
        raise AlignmentError(
            f"{spec}: base has rank {base_domain.rank} but "
            f"{len(spec.subscripts)} subscripts were specified")

    fresh_counter = 0

    def fresh(prefix: str) -> str:
        nonlocal fresh_counter
        fresh_counter += 1
        return f"_{prefix}{fresh_counter}"

    # Pass 1: give every alignee axis a dummy (transformations 1 and 2).
    dummy_names: list[str] = []
    colon_dummies: list[tuple[str, int]] = []   # (dummy, alignee axis)
    for k, axis in enumerate(spec.axes):
        if isinstance(axis, AxisDummy):
            dummy_names.append(axis.name)
        elif isinstance(axis, AxisColon):
            d = fresh("J")
            dummy_names.append(d)
            colon_dummies.append((d, k))
        else:   # AxisStar: collapsed; fresh dummy occurring nowhere else
            dummy_names.append(fresh("C"))

    # Pass 2: rewrite base subscripts (transformations 1 and 3).
    base_axes: list[BaseAxis] = []
    colon_iter = iter(colon_dummies)
    for j, sub in enumerate(spec.subscripts):
        bdim = base_domain.dims[j]
        if isinstance(sub, BaseStar):
            base_axes.append(ReplicatedAxis())
            continue
        if isinstance(sub, BaseTriplet):
            lt = (bdim.lower if sub.lower is None
                  else int(fold_constants(sub.lower, env).evaluate(env)))
            ut = (bdim.last if sub.upper is None
                  else int(fold_constants(sub.upper, env).evaluate(env)))
            st = (1 if sub.stride is None
                  else int(fold_constants(sub.stride, env).evaluate(env)))
            if st == 0:
                raise AlignmentError(f"{spec}: zero stride in base triplet")
            try:
                dname, axis_k = next(colon_iter)
            except StopIteration:
                raise AlignmentError(
                    f"{spec}: base triplet {sub} has no matching ':' "
                    "alignee axis") from None
            adim = alignee_domain.dims[axis_k]
            target_len = max((ut - lt + st) // st, 0)
            if len(adim) > target_len:
                raise AlignmentError(
                    f"{spec}: extent rule violated — alignee axis "
                    f"{axis_k + 1} has {len(adim)} positions but the base "
                    f"triplet {lt}:{ut}:{st} provides only {target_len} "
                    "(§5.1 transformation 1)")
            # tj := (J - Li) * ST + LT
            expr: Expr = BinOp(
                "+", BinOp("*", BinOp("-", Dummy(dname),
                                      Const(adim.lower)), Const(st)),
                Const(lt))
            expr = fold_constants(expr, env)
            base_axes.append(ExprAxis(expr, dname,
                                      affine_coefficients(expr, dname)))
            continue
        # BaseExpr
        expr = fold_constants(sub.expr, env)
        ds = dummies_in(expr)
        if len(ds) > 1:
            raise AlignmentError(
                f"{spec}: base subscript {sub} uses more than one "
                "align-dummy")
        dname2 = next(iter(ds)) if ds else None
        if dname2 is not None and dname2 not in dummy_names:
            raise AlignmentError(
                f"{spec}: base subscript uses unknown dummy {dname2!r}")
        aff = (affine_coefficients(expr, dname2)
               if dname2 is not None else None)
        if dname2 is None and isinstance(expr, Const):
            aff = (0, expr.value)
        base_axes.append(ExprAxis(expr, dname2, aff))

    # No-skew rule: each dummy occurs in at most one base subscript.
    seen: set[str] = set()
    for ax in base_axes:
        if isinstance(ax, ExprAxis) and ax.dummy is not None:
            if ax.dummy in seen:
                raise AlignmentError(
                    f"{spec}: align-dummy {ax.dummy!r} occurs in more than "
                    "one base subscript (skew alignments are excluded, "
                    "§5.1)")
            seen.add(ax.dummy)

    return ReducedAlignment(
        alignee_domain=alignee_domain,
        base_domain=base_domain,
        dummy_names=tuple(dummy_names),
        base_axes=tuple(base_axes),
    )
