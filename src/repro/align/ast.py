"""Integer expression AST for alignment functions (§5.1).

The base-subscript expressions of an ALIGN directive are scalar integer
expressions in which at most one align-dummy occurs.  "The operators '+',
'-' and '*' may be applied to form expressions which are linear in the
align-dummy.  Since linear expressions cannot handle some frequently
occurring cases, such as truncation at either end of the alignment, we also
allow the intrinsic functions MAX, MIN, LBOUND, UBOUND, and SIZE to be used
in alignment functions."

The AST here supports exactly that language, plus named specification
constants (``Name``) that the directive analyzer resolves from the program
environment.  Evaluation works on scalars *and* on NumPy arrays (MAX/MIN
map to ``np.maximum``/``np.minimum``), giving the alignment machinery a
vectorized fast path for whole-domain images.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from repro.errors import AlignmentError

__all__ = [
    "Expr", "Const", "Dummy", "Name", "BinOp", "Call",
    "fold_constants", "affine_coefficients", "dummies_in", "names_in",
]

Value = Union[int, np.ndarray]

_INTRINSICS = ("MAX", "MIN", "LBOUND", "UBOUND", "SIZE")


class Expr(abc.ABC):
    """Abstract integer expression."""

    @abc.abstractmethod
    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Evaluate under ``env`` (dummy/name -> int or int array)."""

    @abc.abstractmethod
    def __str__(self) -> str: ...

    def __repr__(self) -> str:
        return f"<expr {self}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    # Operator sugar so the library (and tests) can write `2*J - 1`.
    def __add__(self, other: "Expr | int") -> "BinOp":
        return BinOp("+", self, _coerce(other))

    def __radd__(self, other: "Expr | int") -> "BinOp":
        return BinOp("+", _coerce(other), self)

    def __sub__(self, other: "Expr | int") -> "BinOp":
        return BinOp("-", self, _coerce(other))

    def __rsub__(self, other: "Expr | int") -> "BinOp":
        return BinOp("-", _coerce(other), self)

    def __mul__(self, other: "Expr | int") -> "BinOp":
        return BinOp("*", self, _coerce(other))

    def __rmul__(self, other: "Expr | int") -> "BinOp":
        return BinOp("*", _coerce(other), self)


def _coerce(x: "Expr | int") -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, np.integer)):
        return Const(int(x))
    raise TypeError(f"cannot use {x!r} in an alignment expression")


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, eq=False)
class Dummy(Expr):
    """An align-dummy: a scalar integer variable ranging over all valid
    index values of one dimension of the alignee."""

    name: str

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        try:
            return env[self.name]
        except KeyError:
            raise AlignmentError(
                f"align-dummy {self.name!r} is unbound") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Name(Expr):
    """A named specification constant (e.g. ``N`` in ``T(2*I-1)`` where N
    comes from the enclosing program).  Resolved exactly like a dummy but
    kept distinct so linearity analysis can treat it as constant."""

    name: str

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        try:
            return env[self.name]
        except KeyError:
            raise AlignmentError(
                f"specification constant {self.name!r} is unbound") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """``left op right`` with op one of ``+ - *`` (§5.1's operator set)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*"):
            raise AlignmentError(
                f"operator {self.op!r} is not allowed in alignment "
                "functions (only +, -, *)")

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        return a * b

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """An intrinsic call: MAX/MIN (variadic, >= 2 args) or
    LBOUND/UBOUND/SIZE (resolved against the analyzer's environment as
    ``Name``-like constants ``LBOUND(A,1)`` etc.)."""

    fn: str
    args: tuple[Expr, ...]

    def __init__(self, fn: str, args: "list[Expr] | tuple[Expr, ...]") -> None:
        fn = fn.upper()
        if fn not in _INTRINSICS:
            raise AlignmentError(
                f"intrinsic {fn!r} is not allowed in alignment functions "
                f"(only {', '.join(_INTRINSICS)})")
        args = tuple(_coerce(a) for a in args)
        if fn in ("MAX", "MIN") and len(args) < 2:
            raise AlignmentError(f"{fn} needs at least two arguments")
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "args", args)

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        if self.fn == "MAX":
            vals = [a.evaluate(env) for a in self.args]
            out = vals[0]
            for v in vals[1:]:
                out = np.maximum(out, v) if _any_array(out, v) else max(out, v)
            return out
        if self.fn == "MIN":
            vals = [a.evaluate(env) for a in self.args]
            out = vals[0]
            for v in vals[1:]:
                out = np.minimum(out, v) if _any_array(out, v) else min(out, v)
            return out
        # LBOUND/UBOUND/SIZE: the analyzer folds these against declared
        # domains; at evaluation time they must already be resolvable from
        # the environment under their printed form (the first argument —
        # an array name — is deliberately NOT evaluated).
        key = str(self)
        try:
            return env[key]
        except KeyError:
            raise AlignmentError(
                f"array inquiry {key} was not folded by the analyzer and "
                "is unbound at evaluation time") from None

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.fn}({inner})"


def _any_array(*vals: Value) -> bool:
    return any(isinstance(v, np.ndarray) for v in vals)


# ----------------------------------------------------------------------
# Analysis utilities
# ----------------------------------------------------------------------
def dummies_in(expr: Expr) -> frozenset[str]:
    """Names of align-dummies occurring in ``expr``."""
    if isinstance(expr, Dummy):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return dummies_in(expr.left) | dummies_in(expr.right)
    if isinstance(expr, Call):
        out: frozenset[str] = frozenset()
        for a in expr.args:
            out |= dummies_in(a)
        return out
    return frozenset()


def names_in(expr: Expr) -> frozenset[str]:
    """Specification-constant names occurring in ``expr``."""
    if isinstance(expr, Name):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return names_in(expr.left) | names_in(expr.right)
    if isinstance(expr, Call):
        out: frozenset[str] = frozenset()
        for a in expr.args:
            out |= names_in(a)
        return out
    return frozenset()


def fold_constants(expr: Expr, env: Mapping[str, int]) -> Expr:
    """Substitute ``Name``s and inquiry calls from ``env`` and fold every
    constant subtree to a :class:`Const`.  Dummies are left symbolic."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Dummy):
        return expr
    if isinstance(expr, Name):
        if expr.name in env:
            return Const(int(env[expr.name]))
        return expr
    if isinstance(expr, BinOp):
        left = fold_constants(expr.left, env)
        right = fold_constants(expr.right, env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(int(BinOp(expr.op, left, right).evaluate({})))
        return BinOp(expr.op, left, right)
    if isinstance(expr, Call):
        if expr.fn in ("LBOUND", "UBOUND", "SIZE"):
            key = str(expr)
            if key in env:
                return Const(int(env[key]))
            return expr
        args = [fold_constants(a, env) for a in expr.args]
        if all(isinstance(a, Const) for a in args):
            return Const(int(Call(expr.fn, args).evaluate({})))
        return Call(expr.fn, args)
    raise AlignmentError(f"unknown expression node {expr!r}")


def affine_coefficients(expr: Expr, dummy: str) -> tuple[int, int] | None:
    """If ``expr == a * dummy + b`` exactly (no MAX/MIN, no other free
    symbols), return ``(a, b)``; otherwise ``None``.

    This powers the vectorized image fast path and the triplet-image
    computation of the communication-set engine.
    """
    if isinstance(expr, Const):
        return (0, expr.value)
    if isinstance(expr, Dummy):
        return (1, 0) if expr.name == dummy else None
    if isinstance(expr, Name) or isinstance(expr, Call):
        return None
    if isinstance(expr, BinOp):
        lc = affine_coefficients(expr.left, dummy)
        rc = affine_coefficients(expr.right, dummy)
        if lc is None or rc is None:
            return None
        la, lb = lc
        ra, rb = rc
        if expr.op == "+":
            return (la + ra, lb + rb)
        if expr.op == "-":
            return (la - ra, lb - rb)
        # '*': linear only if one side is constant
        if la == 0:
            return (lb * ra, lb * rb)
        if ra == 0:
            return (rb * la, rb * lb)
        return None
    return None
