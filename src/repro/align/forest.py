"""The alignment forest (§2.4) and its dynamic surgery rules.

The data space of all accessible, created arrays is represented as a forest
of *alignment trees* whose height is either 0 (degenerate: a single array
neither aligned nor aligned-to) or 1 (a *primary* array at the root with
*secondary* arrays as leaves).  The program constraints:

1. an array occurring as an alignment base must not itself be aligned;
2. an alignee is aligned with exactly one base;

make the height-1 property an invariant, which :meth:`AlignmentForest.validate`
checks after every operation in the test suite.

The forest changes dynamically (§4.2, §5.2, §6):

* **REALIGN A WITH B** — if A is a primary of a non-degenerate tree, its
  secondaries are disconnected and become primaries of degenerate trees
  with their current (frozen) distribution; if A is a secondary, it is
  disconnected from its base.  A then becomes a secondary of B.
* **REDISTRIBUTE B** — if B is a secondary, it is disconnected and made a
  new degenerate tree; if B is a primary, its secondaries stay attached
  and their distributions are re-CONSTRUCTed (kept alignment-invariant).
* **DEALLOCATE B** — B is removed; every array directly aligned to B
  becomes the primary of a new (degenerate) tree.

The forest is purely structural: nodes are array names and edges carry
alignment functions.  Distribution bookkeeping (freezing, CONSTRUCT) is
driven by :class:`repro.core.dataspace.DataSpace`, which receives the
lists of affected nodes these methods return.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.function import AlignmentFunction
from repro.errors import MappingError

__all__ = ["AlignmentForest"]


@dataclass
class AlignmentForest:
    """Forest over array names; edges ``child -> (parent, alignment)``."""

    _nodes: set[str] = field(default_factory=set)
    _parent: dict[str, tuple[str, AlignmentFunction]] = field(
        default_factory=dict)
    _children: dict[str, set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add(self, name: str) -> None:
        """Add ``name`` as a new degenerate tree."""
        if name in self._nodes:
            raise MappingError(f"array {name!r} already in alignment forest")
        self._nodes.add(name)
        self._children.setdefault(name, set())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def remove(self, name: str) -> list[str]:
        """Remove ``name`` (DEALLOCATE, §6).

        Returns the former secondaries of ``name``, each of which has been
        made the primary of a new degenerate tree; the caller must freeze
        their current distributions.
        """
        self._require(name)
        orphans = sorted(self._children.get(name, ()))
        for child in orphans:
            del self._parent[child]
        self._children.pop(name, None)
        if name in self._parent:
            parent, _ = self._parent.pop(name)
            self._children[parent].discard(name)
        self._nodes.discard(name)
        return orphans

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_primary(self, name: str) -> bool:
        """Primary arrays are tree roots (including degenerate trees)."""
        self._require(name)
        return name not in self._parent

    def is_secondary(self, name: str) -> bool:
        self._require(name)
        return name in self._parent

    def is_degenerate(self, name: str) -> bool:
        """Height-0 tree: neither aligned nor aligned-to."""
        return self.is_primary(name) and not self._children.get(name)

    def parent_of(self, name: str) -> str | None:
        self._require(name)
        entry = self._parent.get(name)
        return entry[0] if entry else None

    def alignment_of(self, name: str) -> AlignmentFunction | None:
        """The alignment function linking a secondary to its primary."""
        self._require(name)
        entry = self._parent.get(name)
        return entry[1] if entry else None

    def secondaries_of(self, name: str) -> frozenset[str]:
        self._require(name)
        return frozenset(self._children.get(name, ()))

    def primaries(self) -> tuple[str, ...]:
        return tuple(sorted(n for n in self._nodes if n not in self._parent))

    def trees(self) -> dict[str, frozenset[str]]:
        """Map primary -> secondaries for every tree in the forest."""
        return {p: self.secondaries_of(p) for p in self.primaries()}

    # ------------------------------------------------------------------
    # Static alignment (specification part)
    # ------------------------------------------------------------------
    def align(self, alignee: str, base: str,
              fn: AlignmentFunction) -> None:
        """Attach ``alignee`` below ``base`` (ALIGN directive).

        Enforces the §2.4 constraints strictly: the base must not itself
        be aligned (constraint 1), the alignee must not already be aligned
        (constraint 2), and the alignee must not currently serve as a base
        (height would exceed 1).
        """
        self._require(alignee)
        self._require(base)
        if alignee == base:
            raise MappingError(f"cannot align {alignee!r} with itself")
        if alignee in self._parent:
            raise MappingError(
                f"{alignee!r} is already aligned to "
                f"{self._parent[alignee][0]!r}; an alignee can be aligned "
                "with only one alignment base (§2.4 constraint 2)")
        if base in self._parent:
            raise MappingError(
                f"{base!r} is itself aligned (to {self._parent[base][0]!r}) "
                "and therefore must not occur as an alignment base "
                "(§2.4 constraint 1)")
        if self._children.get(alignee):
            raise MappingError(
                f"{alignee!r} serves as alignment base for "
                f"{sorted(self._children[alignee])}; aligning it would "
                "create a tree of height > 1 — REALIGN it instead (§5.2)")
        self._parent[alignee] = (base, fn)
        self._children.setdefault(base, set()).add(alignee)

    # ------------------------------------------------------------------
    # Dynamic surgery
    # ------------------------------------------------------------------
    def realign(self, alignee: str, base: str,
                fn: AlignmentFunction) -> list[str]:
        """REALIGN ``alignee`` WITH ``base`` (§5.2).

        Returns the list of arrays disconnected in step 1 (the former
        secondaries of ``alignee`` if it was a non-degenerate primary);
        the caller freezes their current distributions.
        """
        self._require(alignee)
        self._require(base)
        if alignee == base:
            raise MappingError(f"cannot realign {alignee!r} with itself")
        if base in self._parent:
            parent = self._parent[base][0]
            raise MappingError(
                f"REALIGN base {base!r} is a secondary array (aligned to "
                f"{parent!r}); alignment bases must not be aligned "
                "(§2.4 constraint 1)")
        disconnected: list[str] = []
        # Step 1a: a primary at the root of a non-degenerate tree loses
        # its secondaries, which become degenerate primaries.
        if alignee not in self._parent:
            for child in sorted(self._children.get(alignee, ())):
                del self._parent[child]
                disconnected.append(child)
            self._children[alignee] = set()
        else:
            # Step 1b: a secondary is disconnected from its base
            # (which may equal the new base).
            old_base, _ = self._parent.pop(alignee)
            self._children[old_base].discard(alignee)
        # Step 2: alignee becomes a new secondary of base.
        self._parent[alignee] = (base, fn)
        self._children.setdefault(base, set()).add(alignee)
        return disconnected

    def disconnect_for_redistribute(self, name: str) -> str | None:
        """REDISTRIBUTE preparation (§4.2).

        If ``name`` is a secondary, disconnect it into a new degenerate
        tree and return its former base; if it is a primary, leave the
        tree intact (its secondaries will be re-CONSTRUCTed) and return
        ``None``.
        """
        self._require(name)
        entry = self._parent.pop(name, None)
        if entry is None:
            return None
        base, _ = entry
        self._children[base].discard(name)
        return base

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the §2.4 invariants; raises :class:`MappingError`."""
        for child, (parent, _) in self._parent.items():
            if parent not in self._nodes:
                raise MappingError(
                    f"dangling alignment: {child!r} -> missing {parent!r}")
            if parent in self._parent:
                raise MappingError(
                    f"alignment tree of height > 1: {child!r} -> "
                    f"{parent!r} -> {self._parent[parent][0]!r}")
        for base, kids in self._children.items():
            for k in kids:
                if self._parent.get(k, (None,))[0] != base:
                    raise MappingError(
                        f"inconsistent forest: {k!r} listed under {base!r}")

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise MappingError(
                f"array {name!r} is not in the alignment forest (not yet "
                "created, or already removed)")
