"""Executable alignment functions (Definition 3 + §5.1 evaluation rules).

An :class:`AlignmentFunction` wraps a :class:`ReducedAlignment` and
evaluates it: for an alignee index tuple, substitute each component for its
align-dummy, evaluate every base-axis expression, apply the extent rule,
and expand replicated axes — yielding the set of base indices the element
is aligned with.

Evaluation modes for out-of-range expression values (§5.1 rule 2; see
DESIGN.md item 3):

* ``ClampMode.CLAMP`` (default) — two-sided clamp to ``[Lj, Uj]``;
* ``ClampMode.PAPER`` — the paper's verbatim ``y_hat = MIN(Uj, y)``
  (values below the lower bound are an error);
* ``ClampMode.EXACT`` — no clamping; any out-of-range value is an error.

The vectorized fast path :meth:`AlignmentFunction.image_arrays` produces a
representative base index for *every* alignee element in column-major order
with O(N) NumPy work, which is what CONSTRUCTed owner maps and the
benchmarks use.
"""

from __future__ import annotations

import enum
import itertools
from typing import Sequence

import numpy as np

from repro.align.ast import Dummy, affine_coefficients, fold_constants
from repro.align.reduce import ExprAxis, ReducedAlignment, ReplicatedAxis
from repro.errors import AlignmentError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet

__all__ = ["ClampMode", "AlignmentFunction", "identity_alignment"]


class ClampMode(enum.Enum):
    CLAMP = "clamp"    #: two-sided MAX(Lj, MIN(Uj, y))
    PAPER = "paper"    #: MIN(Uj, y) only, as printed in §5.1
    EXACT = "exact"    #: no clamping; out-of-range is an error


class AlignmentFunction:
    """A total index mapping ``I^A -> P(I^B) - {{}}`` (Definition 3)."""

    def __init__(self, reduced: ReducedAlignment,
                 clamp: ClampMode = ClampMode.CLAMP) -> None:
        self.reduced = reduced
        self.clamp = clamp
        self.alignee_domain = reduced.alignee_domain
        self.base_domain = reduced.base_domain

    # ------------------------------------------------------------------
    @property
    def is_replicating(self) -> bool:
        """True iff some base axis is ``*`` (every image has > 1 element,
        provided the replicated base dimension has extent > 1)."""
        return any(isinstance(ax, ReplicatedAxis)
                   for ax in self.reduced.base_axes)

    @property
    def collapsed_axes(self) -> frozenset[int]:
        """Alignee axes that do not influence the base position."""
        return self.reduced.collapsed_axes

    def _apply_clamp(self, y, bdim: Triplet):
        """Apply the configured §5.1 rule-2 clamp (scalar or array)."""
        lo, hi = bdim.lower, bdim.last
        if self.clamp is ClampMode.CLAMP:
            return np.clip(y, lo, hi) if isinstance(y, np.ndarray) \
                else min(max(y, lo), hi)
        if self.clamp is ClampMode.PAPER:
            y2 = np.minimum(y, hi) if isinstance(y, np.ndarray) else min(y, hi)
            bad = (y2 < lo).any() if isinstance(y2, np.ndarray) else y2 < lo
            if bad:
                raise AlignmentError(
                    f"alignment value below base lower bound {lo} under "
                    "PAPER clamp mode (the paper clamps only at the upper "
                    "bound)")
            return y2
        bad = ((np.asarray(y) < lo) | (np.asarray(y) > hi)).any() \
            if isinstance(y, np.ndarray) else not lo <= y <= hi
        if bad:
            raise AlignmentError(
                f"alignment value {y} outside base dimension {bdim} "
                "(EXACT mode)")
        return y

    # ------------------------------------------------------------------
    # Point images
    # ------------------------------------------------------------------
    def image(self, index: Sequence[int]) -> frozenset[tuple[int, ...]]:
        """``alpha(index)``: all base indices aligned with the element."""
        index = tuple(int(v) for v in index)
        if index not in self.alignee_domain:
            raise AlignmentError(
                f"index {index} outside alignee domain "
                f"{self.alignee_domain}")
        env = dict(zip(self.reduced.dummy_names, index))
        per_axis: list[tuple[int, ...]] = []
        for j, ax in enumerate(self.reduced.base_axes):
            bdim = self.base_domain.dims[j]
            if isinstance(ax, ReplicatedAxis):
                per_axis.append(tuple(bdim))
            else:
                y = int(ax.expr.evaluate(env))
                per_axis.append((int(self._apply_clamp(y, bdim)),))
        return frozenset(itertools.product(*per_axis)) if per_axis \
            else frozenset({()})

    def representative(self, index: Sequence[int]) -> tuple[int, ...]:
        """One canonical element of ``image(index)`` (replicated axes take
        the base dimension's lower bound)."""
        index = tuple(int(v) for v in index)
        env = dict(zip(self.reduced.dummy_names, index))
        out = []
        for j, ax in enumerate(self.reduced.base_axes):
            bdim = self.base_domain.dims[j]
            if isinstance(ax, ReplicatedAxis):
                out.append(bdim.lower)
            else:
                out.append(int(self._apply_clamp(
                    int(ax.expr.evaluate(env)), bdim)))
        return tuple(out)

    # ------------------------------------------------------------------
    # Vectorized whole-domain images
    # ------------------------------------------------------------------
    def map_indices(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`representative` over an ``(m, rank)`` array
        of alignee indices; returns an ``(m, base_rank)`` array."""
        indices = np.asarray(indices, dtype=np.int64)
        m = indices.shape[0]
        out = np.empty((m, self.base_domain.rank), dtype=np.int64)
        for j, ax in enumerate(self.reduced.base_axes):
            bdim = self.base_domain.dims[j]
            if isinstance(ax, ReplicatedAxis):
                out[:, j] = bdim.lower
                continue
            if ax.dummy is None:
                y = int(ax.expr.evaluate({}))
                out[:, j] = self._apply_clamp(y, bdim)
                continue
            k = self.reduced.axis_of_dummy(ax.dummy)
            y = ax.expr.evaluate({ax.dummy: indices[:, k]})
            out[:, j] = self._apply_clamp(np.asarray(y, dtype=np.int64),
                                          bdim)
        return out

    def map_linear(self, positions: np.ndarray) -> np.ndarray:
        """Bulk composition kernel: map linear column-major positions in
        the *alignee* domain to linear column-major positions of the
        representative image in the *base* domain, all in vectorized NumPy
        (no per-element Python).  CONSTRUCTed owner maps — which the
        compiled schedules ride on — are gathered through this kernel."""
        dom = self.alignee_domain
        positions = np.asarray(positions, dtype=np.int64)
        shape = dom.shape
        rank = dom.rank
        indices = np.empty((positions.size, rank), dtype=np.int64)
        stride = 1
        for k in range(rank):
            vals = dom.dims[k].values()
            indices[:, k] = vals[(positions // stride) % shape[k]]
            stride *= shape[k]
        return self.base_domain.linear_indices(self.map_indices(indices))

    def image_arrays(self) -> np.ndarray:
        """Representative base index of every alignee element.

        Returns an ``(alignee_domain.size, base_rank)`` int64 array in
        Fortran column-major element order (first axis fastest) — the
        contract consumed by
        :meth:`repro.distributions.construct.ConstructedDistribution.primary_owner_map`.
        """
        dom = self.alignee_domain
        size = dom.size
        shape = dom.shape
        rank = dom.rank
        # per alignee axis: the vector of axis values repeated in
        # column-major order
        pos = np.arange(size, dtype=np.int64)
        indices = np.empty((size, rank), dtype=np.int64)
        stride = 1
        for k in range(rank):
            vals = dom.dims[k].values()
            indices[:, k] = vals[(pos // stride) % shape[k]]
            stride *= shape[k]
        return self.map_indices(indices)

    def axis_triplet_image(self, base_axis: int,
                           alignee_triplet: Triplet) -> Triplet | None:
        """Exact image of an alignee triplet through an *affine* base axis.

        Returns ``None`` when the axis is not affine in a dummy (MAX/MIN
        truncation etc.) or when clamping would distort the image; callers
        then fall back to elementwise evaluation.  Used by the analytic
        communication-set engine.
        """
        ax = self.reduced.base_axes[base_axis]
        if isinstance(ax, ReplicatedAxis) or ax.affine is None:
            return None
        a, b = ax.affine
        img = alignee_triplet.affine_image(a, b)
        bdim = self.base_domain.dims[base_axis]
        if img.is_empty:
            return img
        if img.first < bdim.lower or img.last > bdim.last:
            return None   # clamping would fold values; no exact triplet
        return img

    def __repr__(self) -> str:
        return f"<AlignmentFunction {self.reduced}>"


def identity_alignment(domain: IndexDomain,
                       base_domain: IndexDomain | None = None
                       ) -> AlignmentFunction:
    """The identity alignment of a domain with itself (or with an equal-
    shape base), used for whole-array alignment bookkeeping."""
    base = base_domain if base_domain is not None else domain
    if base.shape != domain.shape:
        raise AlignmentError(
            f"identity alignment requires equal shapes, got {domain} "
            f"and {base}")
    names = tuple(f"_I{k + 1}" for k in range(domain.rank))
    axes = []
    for j, (ad, bd) in enumerate(zip(domain.dims, base.dims)):
        # J ranges over [La:Ua]; base position is J - La + Lb
        expr = Dummy(names[j]) + (bd.lower - ad.lower)
        expr = fold_constants(expr, {})
        axes.append(ExprAxis(expr, names[j],
                             affine_coefficients(expr, names[j])))
    reduced = ReducedAlignment(
        alignee_domain=domain, base_domain=base,
        dummy_names=names, base_axes=tuple(axes))
    return AlignmentFunction(reduced)
