"""Alignment machinery (substrate S4, §2.3, §2.4 and §5).

An *alignment function* ``alpha^A`` for an alignee ``A`` with respect to a
base ``B`` is a total index mapping from ``I^A`` into the non-empty subsets
of ``I^B`` (Definition 3).  The ALIGN directive specifies such functions
through a small expression language — align-dummies, ``:`` (spread), ``*``
(collapse on the alignee side, replication on the base side), subscript
triplets, and integer expressions linear in one dummy, optionally using the
intrinsics MAX, MIN, LBOUND, UBOUND and SIZE (§5.1).

This subpackage provides:

* :mod:`~repro.align.ast` — the expression AST with scalar and vectorized
  (NumPy) evaluation, constant folding and affine-coefficient extraction;
* :mod:`~repro.align.spec` — the parsed form of an ALIGN directive;
* :mod:`~repro.align.reduce` — the three §5.1 reduction transformations,
  producing a *reduced alignee* and *alignment base set* (ABS);
* :mod:`~repro.align.function` — executable
  :class:`~repro.align.function.AlignmentFunction` objects with the extent
  clamp of §5.1 and a vectorized image fast path;
* :mod:`~repro.align.forest` — the alignment forest of §2.4 (trees of
  height <= 1) with the surgery rules of REALIGN (§5.2), REDISTRIBUTE
  (§4.2) and ALLOCATE/DEALLOCATE (§6).
"""

from repro.align.ast import (
    Expr, Const, Dummy, Name, BinOp, Call,
    fold_constants, affine_coefficients, dummies_in,
)
from repro.align.spec import (
    AlignSpec, AxisColon, AxisStar, AxisDummy,
    BaseExpr, BaseTriplet, BaseStar,
)
from repro.align.reduce import ReducedAlignment, reduce_alignment
from repro.align.function import AlignmentFunction, ClampMode, identity_alignment
from repro.align.forest import AlignmentForest

__all__ = [
    "Expr", "Const", "Dummy", "Name", "BinOp", "Call",
    "fold_constants", "affine_coefficients", "dummies_in",
    "AlignSpec", "AxisColon", "AxisStar", "AxisDummy",
    "BaseExpr", "BaseTriplet", "BaseStar",
    "ReducedAlignment", "reduce_alignment",
    "AlignmentFunction", "ClampMode", "identity_alignment",
    "AlignmentForest",
]
