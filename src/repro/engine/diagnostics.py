"""Diagnostics: stable codes, severities and renderers for `repro lint`.

The paper's premise is that distribution and alignment are *declared*,
so the system can reason about a program before anything runs.  This
module is the vocabulary of that reasoning: a :class:`Diagnostic` is one
finding of the static analyzer (:mod:`repro.engine.analysis`) or of a
front end, carrying

* a **stable code** (``RPR001``..) from the :data:`CODES` registry, so
  tests, CI gates and editors can key on findings across releases;
* a **severity** — ``error`` (the program cannot execute as written),
  ``warning`` (it executes, but the declared mappings make the result
  or the storage lifecycle suspect) or ``perf`` (it executes correctly
  but the compile-time lowering says it moves more data than the
  statement looks like it should);
* a **source span** — the directive line map of the text front end, or
  the statement index of the lazy Session front end.

Front-end exceptions join the same vocabulary: the parser and the
lowering spine raise :class:`~repro.errors.DirectiveError` with a
``code=`` from this registry, and :class:`DiagnosticError` (a
:class:`~repro.errors.DirectiveError` subclass, so existing handlers
keep working) wraps a batch of error-severity diagnostics — the
exception :class:`~repro.serve.SessionService` uses to reject a program
before it reaches a worker pool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import DirectiveError

__all__ = [
    "CODES", "Diagnostic", "DiagnosticError", "LINT_LOG", "Severity",
    "Span", "has_errors", "render_json", "render_text",
]


class Severity(str, Enum):
    """How bad a finding is (``error`` > ``warning`` > ``perf``)."""

    ERROR = "error"
    WARNING = "warning"
    PERF = "perf"

    def __str__(self) -> str:
        return self.value


#: the stable code registry: code -> (severity, short title).  Codes are
#: append-only; retiring a check leaves a hole rather than renumbering.
CODES: dict[str, tuple[Severity, str]] = {
    # -- errors: the program cannot execute as written ------------------
    "RPR001": (Severity.ERROR, "reference to an unknown array"),
    "RPR002": (Severity.ERROR, "subscript outside the declared domain"),
    "RPR003": (Severity.ERROR, "use of an array after DEALLOCATE"),
    "RPR004": (Severity.ERROR, "reference to an unallocated array"),
    "RPR005": (Severity.ERROR, "non-conforming section shapes"),
    "RPR006": (Severity.ERROR, "remap of an array not declared DYNAMIC"),
    "RPR007": (Severity.ERROR, "loop-carried allocation hazard"),
    "RPR008": (Severity.ERROR, "ALLOCATE/DEALLOCATE misuse"),
    "RPR009": (Severity.ERROR, "fusion window groups racing statements"),
    # -- warnings: executable, but suspect ------------------------------
    "RPR010": (Severity.WARNING, "read of a never-written allocation"),
    "RPR011": (Severity.WARNING, "zero-trip loop body never executes"),
    "RPR012": (Severity.WARNING, "dead remap: layout epoch never used"),
    "RPR013": (Severity.WARNING, "write to a replicated array"),
    # -- perf: correct, but the lowering says it is expensive -----------
    "RPR020": (Severity.PERF, "reference lowers to an ALLTOALL exchange"),
    "RPR021": (Severity.PERF, "dense remap moves most of the array"),
    "RPR022": (Severity.PERF, "loop-invariant remap repeated every trip"),
    "RPR023": (Severity.PERF, "statically detectable load imbalance"),
    # -- front-end codes (raised as exceptions, not analyzer findings) --
    "RPR100": (Severity.ERROR, "directive syntax error"),
    "RPR101": (Severity.ERROR, "loop structure error"),
}


@dataclass(frozen=True)
class Span:
    """Where a finding anchors in the source program.

    The text front end supplies 1-based ``line`` numbers from the
    directive line map (:class:`~repro.directives.analyzer.Analyzer`
    registers every lowered IR node); the Session front end has no text,
    so findings carry the 0-based ``statement`` index of the node in the
    recorded program (static pre-order).  ``label`` is the node's
    rendering, so a span is readable even without the source at hand.
    """

    line: int | None = None
    column: int | None = None
    statement: int | None = None
    label: str = ""

    def render(self) -> str:
        if self.line is not None:
            loc = f"line {self.line}"
            if self.column is not None:
                loc += f":{self.column}"
        elif self.statement is not None:
            loc = f"stmt {self.statement}"
        else:
            loc = "program"
        return loc

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.line is not None:
            out["line"] = self.line
        if self.column is not None:
            out["column"] = self.column
        if self.statement is not None:
            out["statement"] = self.statement
        if self.label:
            out["label"] = self.label
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer or a front end."""

    code: str
    message: str
    span: Span = field(default_factory=Span)
    #: the array the finding is about, when there is a single one
    array: str = ""
    #: modeled data volume attached to perf findings (words)
    words: int | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        parts = [f"{self.span.render()}: {self.severity} {self.code}: "
                 f"{self.message}"]
        if self.span.label:
            parts.append(f"    in: {self.span.label}")
        return "\n".join(parts)

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "span": self.span.to_json(),
        }
        if self.array:
            out["array"] = self.array
        if self.words is not None:
            out["words"] = self.words
        return out

    @staticmethod
    def from_exception(exc: BaseException) -> "Diagnostic":
        """Fold a coded front-end exception into the same vocabulary
        (uncoded exceptions map to the generic syntax-error code)."""
        code = getattr(exc, "code", None) or "RPR100"
        if code not in CODES:
            code = "RPR100"
        span = Span(line=getattr(exc, "line", None),
                    column=getattr(exc, "column", None))
        message = getattr(exc, "message", None) or str(exc)
        return Diagnostic(code, message, span=span)


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def render_text(diagnostics: list[Diagnostic], *, prefix: str = "") -> str:
    """The human rendering: one finding per block, then a tally line."""
    lines = [(f"{prefix}{d.render()}" if prefix else d.render())
             for d in diagnostics]
    tally: dict[Severity, int] = {}
    for d in diagnostics:
        tally[d.severity] = tally.get(d.severity, 0) + 1
    summary = ", ".join(f"{n} {sev.value}{'s' if n != 1 else ''}"
                        for sev, n in tally.items()) or "clean"
    lines.append(f"{prefix}{summary}")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic], *,
                file: str = "") -> str:
    """The machine rendering CI and editors consume."""
    payload: dict[str, Any] = {
        "diagnostics": [d.to_json() for d in diagnostics],
        "errors": sum(d.severity is Severity.ERROR for d in diagnostics),
        "warnings": sum(d.severity is Severity.WARNING
                        for d in diagnostics),
        "perf": sum(d.severity is Severity.PERF for d in diagnostics),
    }
    if file:
        payload["file"] = file
    return json.dumps(payload, indent=2, sort_keys=True)


class DiagnosticError(DirectiveError):
    """A program was rejected on error-severity diagnostics.

    Subclasses :class:`~repro.errors.DirectiveError`, so every existing
    ``except DirectiveError`` / ``except ReproError`` handler (and test)
    keeps working; ``diagnostics`` carries the full finding list.
    """

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        errors = [d for d in diagnostics
                  if d.severity is Severity.ERROR] or diagnostics
        first = errors[0]
        suffix = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        self.diagnostics = list(diagnostics)
        super().__init__(f"{first.message}{suffix}",
                         line=first.span.line, code=first.code)


#: process-wide collection point for lint-while-running: when the
#: ``REPRO_LINT`` environment variable is set, every ``Session.run()``
#: appends its pre-execution findings here (the ``repro lint`` CLI
#: drains it after driving a Python example file).
LINT_LOG: list[Diagnostic] = []
