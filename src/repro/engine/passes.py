"""The optimizing pass pipeline over the program-level IR.

Per-statement execution charges every assignment in isolation: one
schedule, one exchange, one deposit per reference.  The passes here
rewrite that stream over a whole :class:`~repro.engine.ir.ProgramGraph`
into a fused :class:`ProgramSchedule`, selected by opt level:

========  ==============================================================
``-O0``   no passes — per-statement schedules, the baseline semantics
``-O1``   **halo validity** + **communication CSE**
``-O2``   ``-O1`` + **subset subsumption** + **message coalescing** +
          **remap hoisting**
========  ==============================================================

* *Halo validity* — a charged ghost/shift exchange leaves its faces
  resident on the receivers; the resident entry carries a validity state
  (layout epoch + write version of every source array) and a later
  statement needing the same faces in the same state skips the exchange
  instead of refetching (the Jacobi-with-residual and multigrid
  smoothing pattern).
* *Communication CSE* — the same mechanism for non-stencil shapes:
  an identical reference schedule (same section, same source data, same
  destination partition, same words matrix) charged twice within one
  layout epoch is compiled and charged once.
* *Subset subsumption* — residency keyed on element *ranges* instead of
  whole words matrices: each charged SHIFT exchange accumulates the
  global element ids it left resident per ``(source, src, dst)`` cell,
  and a later exchange whose cell's element set is *contained* in the
  resident set skips that cell — entirely when every cell is covered,
  partially (the covered cells zeroed out of the charge) otherwise.
  This is what halo validity cannot see: a 9-point stencil's diagonal
  refs stop re-shipping the face data its straight refs already moved,
  even though no two of the nine words matrices are equal.
* *Message coalescing* — deposits inside a fusion window buffer and
  flush as one merged matrix: messages to the same (src, dst) pair
  merge with summed words, so message counts drop while words and
  numerics stay exact.  The window flushes when a statement writes an
  array a buffered exchange read, at a size bound, and at every layout
  change — delaying a message past either boundary would be unsound on
  a real machine.
* *Remap hoisting* — a REDISTRIBUTE/REALIGN inside a loop body is
  proven loop-invariant via the IR (no other node in the body mutates
  the mapping of any array it touches) and executed on the first trip
  only; trips 2..N skip the directive entirely, so the layout epoch —
  and every compiled schedule — survives the iteration.

Numerics never route through a pass: the executors compute exactly what
they compute at ``-O0`` (the 4-way differential harness proves
bit-identity), and per-statement report attribution
(``per_ref``/``patterns``/``words_by_pattern``) stays complete; only
what the *machine* is charged changes, with every elision recorded in
:attr:`~repro.machine.metrics.CommStats.opt_words_saved`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.executor import Accountant
from repro.engine.ir import (
    AllocateNode,
    DeallocateNode,
    LoopNode,
    ProgramGraph,
    RealignNode,
    RedistributeNode,
    StatementNode,
)
from repro.engine.lowering import Pattern, coalesce_deposits
from repro.engine.redistribute import charge_remap
from repro.errors import MachineError
from repro.machine.simulator import DistributedMachine

__all__ = [
    "CommAction", "OPT_PASSES", "OptimizingAccountant", "ProgramRunner",
    "ProgramRunResult", "ProgramSchedule", "StatementPlan",
    "adaptive_window", "passes_for",
]

#: pass names enabled at each opt level
OPT_PASSES: dict[int, tuple[str, ...]] = {
    0: (),
    1: ("halo", "cse"),
    2: ("halo", "cse", "subsume", "coalesce", "hoist"),
}

#: deposits buffered before a fusion window force-flushes (the legacy
#: fixed bound; :func:`adaptive_window` sizes it from the program)
_WINDOW_LIMIT = 16

#: clamp range for adaptively sized fusion windows
_WINDOW_MIN, _WINDOW_MAX = 4, 64


def adaptive_window(graph: ProgramGraph) -> int:
    """Size the coalescing window from the statement mix of ``graph``.

    The window only helps while deposits can legally stay buffered: a
    dependent write (a statement writing an array a buffered exchange
    read) or a layout mutation forces a flush regardless of the bound.
    So the useful window is the longest run of reference deposits
    between two forced flush boundaries — anything larger buys nothing,
    anything smaller force-flushes mid-run and splits messages that
    could have merged.  The run count is clamped to [4, 64]; an empty
    program falls back to the legacy fixed bound.
    """
    best = run = 0
    pending_reads: set[str] = set()
    for node, _, _ in graph.walk():
        if isinstance(node, StatementNode):
            run += max(len(node.stmt.rhs.refs()), 1)
            pending_reads |= node.reads()
            if node.stmt.lhs.name in pending_reads:
                best = max(best, run)
                run = 0
                pending_reads.clear()
        elif node.layout_of():
            best = max(best, run)
            run = 0
            pending_reads.clear()
    best = max(best, run)
    if best == 0:
        return _WINDOW_LIMIT
    return min(max(best, _WINDOW_MIN), _WINDOW_MAX)


def passes_for(opt_level) -> tuple[str, ...]:
    if str(opt_level).lower() == "auto":
        # the autotuner starts from the full -O2 pass set and prunes it
        # per program (repro.autotune.advisor.select_passes)
        return OPT_PASSES[2]
    try:
        return OPT_PASSES[int(opt_level)]
    except (KeyError, ValueError, TypeError):
        raise MachineError(
            f"unknown opt level {opt_level!r}; use 0, 1, 2 or 'auto'"
        ) from None


# ----------------------------------------------------------------------
# The fused program schedule (what the pipeline produced)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommAction:
    """What happened to one reference's deposit of one statement."""

    ref: str
    #: 'charged' | 'fused' | 'halo-skip' | 'cse-skip' | 'subsume-skip'
    #: | 'local'
    action: str
    words: int         #: logical words of the reference (attribution)
    pattern: str


@dataclass(frozen=True)
class StatementPlan:
    """One executed statement instance and its rewritten communication."""

    index: int                     #: dynamic instance number
    statement: str
    actions: tuple[CommAction, ...]

    @property
    def charged_words(self) -> int:
        return sum(a.words for a in self.actions
                   if a.action in ("charged", "fused"))

    @property
    def skipped_words(self) -> int:
        return sum(a.words for a in self.actions
                   if a.action.endswith("skip"))


@dataclass(frozen=True)
class RemapPlan:
    """One dynamic remap directive instance."""

    index: int
    directive: str
    executed: bool                 #: False when hoisted out of its trip
    moved_words: int = 0


@dataclass
class ProgramSchedule:
    """The per-statement schedules rewritten over the whole region —
    the record of every fusion/elision decision, in execution order."""

    opt_level: int
    passes: tuple[str, ...]
    steps: list = field(default_factory=list)   #: StatementPlan | RemapPlan

    @property
    def statement_plans(self) -> list[StatementPlan]:
        return [s for s in self.steps if isinstance(s, StatementPlan)]

    @property
    def hoisted_remaps(self) -> int:
        return sum(1 for s in self.steps
                   if isinstance(s, RemapPlan) and not s.executed)

    def summary(self) -> str:
        plans = self.statement_plans
        charged = sum(p.charged_words for p in plans)
        skipped = sum(p.skipped_words for p in plans)
        return (f"ProgramSchedule[-O{self.opt_level}]: "
                f"{len(plans)} statements, charged={charged} "
                f"skipped={skipped} hoisted_remaps={self.hoisted_remaps}")


# ----------------------------------------------------------------------
# The runtime pass engine (halo validity / CSE / coalescing)
# ----------------------------------------------------------------------
class OptimizingAccountant(Accountant):
    """Accounting policy implementing the dynamic passes.

    Bound to one ``(data space, machine)`` pair; executors route every
    deposit through :meth:`deposit` and report every completed write
    through :meth:`note_write`.  Two executors driven with the same
    statement stream and separate accountant instances make identical
    decisions — which is why the SPMD backend stays bit-identical to the
    simulator at every opt level.
    """

    def __init__(self, ds: DataSpace, machine: DistributedMachine,
                 opt_level: int = 2, *,
                 window: int = _WINDOW_LIMIT) -> None:
        self.ds = ds
        self.machine = machine
        self.opt_level = int(opt_level)
        self.passes = frozenset(passes_for(opt_level))
        self.window = int(window)
        #: resident-exchange table: key -> (layout epoch, src versions),
        #: LRU-bounded like the ScheduleCache it sits beside (a session
        #: sweeping many distinct statements must not accumulate stale
        #: entries whose versions can never match again)
        self._resident: dict = {}
        self._resident_max = 512
        #: per-array write version (bumped by note_write; bounded by the
        #: scope's array count)
        self._versions: dict[str, int] = {}
        #: element-range residency for the subsumption pass:
        #: (source array, src, dst) -> ((epoch, source version),
        #: accumulated resident element-id set) — union-accumulated by
        #: every charged SHIFT exchange, LRU-bounded like ``_resident``
        self._ghost_resident: dict = {}
        self._ghost_max = 512
        #: buffered (matrix, lowering, tag, reads, nnz) deposits — all
        #: bound for ``_buffer_machine``
        self._buffer: list = []
        self._buffer_machine: DistributedMachine | None = None
        self._pending_reads: set[str] = set()
        # pass counters
        self.halo_skips = 0
        self.cse_hits = 0
        self.subsume_skips = 0
        self.fused_windows = 0
        self.fused_deposits = 0
        self.hoisted_remaps = 0

    # -- helpers -------------------------------------------------------
    def _state(self, reads: tuple[str, ...]) -> tuple:
        return (self.ds.layout_epoch,
                tuple(self._versions.get(a, 0) for a in reads))

    def _note_ghosts(self, source: str, gstate: tuple, ghosts) -> None:
        """Union-accumulate a charged (or fully resident) exchange's
        element ids into the per-(source, src, dst) residency sets."""
        for q, p, ids in ghosts:
            k3 = (source, q, p)
            entry = self._ghost_resident.get(k3)
            if entry is not None and entry[0] == gstate:
                self._ghost_resident[k3] = (gstate, entry[1] | ids)
            else:
                if entry is None:
                    while len(self._ghost_resident) >= self._ghost_max:
                        self._ghost_resident.pop(
                            next(iter(self._ghost_resident)))
                self._ghost_resident[k3] = (gstate, ids)

    # -- the Accountant protocol ---------------------------------------
    def deposit(self, machine, words, lowering, tag, *, kind="ref",
                ref="", source="", lhs_key=b"", sources=(), ghosts=None):
        w = np.asarray(words)
        off = w.copy()
        np.fill_diagonal(off, 0)
        moved = int(off.sum())
        if moved == 0:
            return "local"
        reads = tuple(sorted(sources)) if sources else (source,)
        key = (kind, ref, reads, lhs_key, off.tobytes())
        state = self._state(reads)
        skippable = "halo" in self.passes or "cse" in self.passes
        hit = self._resident.get(key)
        if skippable and hit == state:
            self._resident[key] = self._resident.pop(key)   # LRU refresh
            n_msgs = int(np.count_nonzero(off))
            is_halo = (kind == "overlap"
                       or lowering.pattern is Pattern.SHIFT)
            opt = "halo" if is_halo else "cse"
            machine.note_savings(opt, moved, n_msgs)
            if opt == "halo":
                self.halo_skips += 1
            else:
                self.cse_hits += 1
            return f"{opt}-skip"
        # subset subsumption: per-(src, dst) cell, skip the cell when
        # its element set is contained in what earlier exchanges of the
        # same source left resident — the containment whole-matrix
        # residency (above) cannot express
        track_ghosts = ("subsume" in self.passes and ghosts
                        and kind == "ref" and source)
        gstate: tuple = ()
        charged_w, charged_off = w, off
        if track_ghosts:
            gstate = (self.ds.layout_epoch,
                      self._versions.get(source, 0))
            covered = []
            for q, p, ids in ghosts:
                entry = self._ghost_resident.get((source, q, p))
                if (entry is not None and entry[0] == gstate
                        and off[q, p] and ids <= entry[1]):
                    covered.append((q, p))
            if covered:
                charged_off = off.copy()
                saved = 0
                for q, p in covered:
                    saved += int(charged_off[q, p])
                    charged_off[q, p] = 0
                machine.note_savings("subsume", saved, len(covered))
                if not charged_off.any():
                    # every cell resident element-wise: full skip.  The
                    # exact key becomes resident too — the exchange's
                    # data *is* on the receivers, so later identical
                    # deposits may take the cheaper matrix-hit path.
                    self.subsume_skips += 1
                    if skippable:
                        if hit is None:
                            while len(self._resident) >= \
                                    self._resident_max:
                                self._resident.pop(
                                    next(iter(self._resident)))
                        self._resident[key] = state
                    self._note_ghosts(source, gstate, ghosts)
                    return "subsume-skip"
                charged_w = w.copy()
                for q, p in covered:
                    charged_w[q, p] = 0
        partial = charged_off is not off
        if skippable:
            # the exchange will reach the machine (now or at the window
            # flush): its faces are resident from here on
            if hit is None:
                while len(self._resident) >= self._resident_max:
                    self._resident.pop(next(iter(self._resident)))
            self._resident[key] = state
        if track_ghosts:
            self._note_ghosts(source, gstate, ghosts)
        if "coalesce" in self.passes:
            if self._buffer and machine is not self._buffer_machine:
                # one window never spans machines
                self.flush()
            self._buffer_machine = machine
            self._buffer.append((charged_off, lowering, tag,
                                 frozenset(reads),
                                 int(np.count_nonzero(charged_off))))
            self._pending_reads.update(reads)
            if len(self._buffer) >= self.window:
                self.flush()
            if partial:
                return ("fused", int(charged_w.sum()))
            return "fused"
        machine.charge_collective(charged_w, lowering, tag=tag)
        if partial:
            return ("charged", int(charged_w.sum()))
        return "charged"

    def note_write(self, name: str) -> None:
        if not name:
            return
        if name in self._pending_reads:
            # Fortran semantics: the buffered exchanges read their data
            # before this write — they must reach the wire first
            self.flush()
        self._versions[name] = self._versions.get(name, 0) + 1

    def flush(self) -> None:
        if not self._buffer:
            return
        buffer, self._buffer = self._buffer, []
        machine = self._buffer_machine
        self._buffer_machine = None
        self._pending_reads = set()
        if len(buffer) == 1:
            matrix, lowering, tag, _, _ = buffer[0]
            machine.charge_collective(matrix, lowering, tag=tag)
            return
        merged, lowering = coalesce_deposits(
            [(m, lo) for m, lo, _, _, _ in buffer])
        n_before = sum(n for _, _, _, _, n in buffer)
        n_after = int(np.count_nonzero(merged))
        tag = f"fused[{len(buffer)}]:{buffer[0][2]}"
        machine.charge_collective(merged, lowering, tag=tag)
        self.fused_windows += 1
        self.fused_deposits += len(buffer)
        machine.note_savings("coalesce", 0, n_before - n_after)

    # -- layout / loop events (driven by the runner) -------------------
    def on_layout_change(self) -> None:
        """A remap/allocation is about to mutate the layout: buffered
        exchanges belong to the old layout and must deposit first.  The
        resident table self-invalidates through the epoch in its keys'
        states, so no explicit eviction is needed."""
        self.flush()

    def note_hoist(self) -> None:
        """A loop-invariant remap was elided on this trip.  The words
        saved are genuinely zero — re-applying an identical directive
        reproduces the same owner maps, so its transfer matrix is empty
        — what hoisting saves is the epoch bump and the schedule
        recompilations behind it; the elision count is the measure."""
        self.hoisted_remaps += 1
        self.machine.note_savings("hoist", 0, 0)

    def savings(self) -> dict[str, int]:
        stats = self.machine.stats
        return {
            "halo_skips": self.halo_skips,
            "cse_hits": self.cse_hits,
            "subsume_skips": self.subsume_skips,
            "fused_windows": self.fused_windows,
            "fused_deposits": self.fused_deposits,
            "hoisted_remaps": self.hoisted_remaps,
            "words_saved": stats.total_words_saved,
            "msgs_saved": stats.total_msgs_saved,
        }


# ----------------------------------------------------------------------
# The static pass: remap hoisting
# ----------------------------------------------------------------------
def plan_hoists(graph: ProgramGraph) -> set[int]:
    """``id``s of remap nodes proven loop-invariant.

    A REDISTRIBUTE/REALIGN directly inside a loop body hoists iff no
    *other* node anywhere in that body (nested loops included) mutates
    or depends on the mapping of any array it touches — re-executing it
    on trips 2..N would then reproduce the identical layout, so the
    directive runs on the first trip only.
    """
    hoisted: set[int] = set()

    def static_nodes(nodes):
        for node in nodes:
            yield node
            if isinstance(node, LoopNode):
                yield from static_nodes(node.body)

    def visit(nodes):
        for node in nodes:
            if not isinstance(node, LoopNode):
                continue
            visit(node.body)
            body_nodes = list(static_nodes(node.body))
            for cand in node.body:      # only direct children hoist
                if not isinstance(cand, (RedistributeNode, RealignNode)):
                    continue
                scope = cand.layout_of()
                clash = any(
                    other is not cand and (other.layout_of() & scope)
                    for other in body_nodes)
                if not clash:
                    hoisted.add(id(cand))

    visit(graph.nodes)
    return hoisted


# ----------------------------------------------------------------------
# The runner: interpret a ProgramGraph under one backend + opt level
# ----------------------------------------------------------------------
@dataclass
class ProgramRunResult:
    """Everything one program-level run produced."""

    reports: list                       #: per-statement execution reports
    schedule: ProgramSchedule
    machine: DistributedMachine
    ds: DataSpace
    savings: dict = field(default_factory=dict)
    #: autotune actions taken this run (``opt="auto"`` only), each an
    #: :class:`~repro.autotune.tuner.Adaptation` carrying modeled
    #: gain/cost beside the words/messages actually charged
    adaptations: list = field(default_factory=list)

    @property
    def charged_words(self) -> int:
        """Words the machine physically moved."""
        return self.machine.stats.total_words

    @property
    def charged_messages(self) -> int:
        return self.machine.stats.total_messages

    @property
    def logical_words(self) -> int:
        """Per-statement attribution total (opt-level invariant)."""
        return sum(r.total_words for r in self.reports)


class ProgramRunner:
    """Executes a :class:`~repro.engine.ir.ProgramGraph` against a data
    space and machine under one execution backend and opt level.

    ``backend`` is a :class:`~repro.machine.backend.Backend` spec
    (``Backend.simulate()`` — the ``None`` default — or
    ``Backend.spmd(...)``), or the literal ``'message'`` for the
    payload-routing diagnostic executor — all
    three consume the same compiled schedules through the shared
    :func:`~repro.engine.executor.charge_schedule` deposit seam, so the
    optimizer's decisions (and the resulting machine state) are backend
    independent while numerics come from whichever engine was asked.
    """

    def __init__(self, ds: DataSpace, machine: DistributedMachine, *,
                 backend=None, opt_level=0,
                 charge_remaps: bool = True,
                 opt_window: int | None = None,
                 **backend_kwargs) -> None:
        self.ds = ds
        self.machine = machine
        #: ``opt_level="auto"`` enables the feedback loop: the -O2 pass
        #: set is pruned per program and a tuner may adapt layouts at
        #: loop-trip boundaries (repro.autotune)
        self.auto = str(opt_level).lower() == "auto"
        self.opt_level = 2 if self.auto else int(opt_level)
        self.passes = frozenset(passes_for(opt_level))
        self.charge_remaps = charge_remaps
        #: fusion-window size; ``None`` sizes it per graph at :meth:`run`
        #: via :func:`adaptive_window`
        self.opt_window = opt_window
        if backend == "message":
            from repro.engine.distexec import MessageAccurateExecutor
            self.executor = MessageAccurateExecutor(ds, machine)
        else:
            from repro.machine.backend import make_executor
            self.executor = make_executor(ds, machine, backend)
            for key, value in backend_kwargs.items():
                setattr(self.executor, key, value)
        self.accountant = (OptimizingAccountant(
            ds, machine, self.opt_level,
            window=opt_window if opt_window is not None else _WINDOW_LIMIT)
            if self.passes else None)
        self.executor.accountant = self.accountant
        #: the AutoTuner of the most recent ``auto`` run (introspection)
        self._tuner = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        if hasattr(self.executor, "close"):
            self.executor.close()

    def __enter__(self) -> "ProgramRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _replay_eligible(self, loop: LoopNode) -> bool:
        """Whether ``loop`` may be handed to the executor whole as a
        worker-resident replay program: the executor must support (and
        not have opted out of) replay, and the loop must carry the IR's
        trip-invariance certificate — the same legality
        :func:`plan_hoists` reasons from.  A loop containing a hoistable
        remap is *not* trip-invariant and falls back to the unrolled
        dispatch path, where hoisting handles it."""
        return (getattr(self.executor, "replay", False)
                and hasattr(self.executor, "execute_loop")
                and loop.is_trip_invariant()
                and loop.flat_body() is not None)

    def run(self, graph: ProgramGraph,
            on_node=None) -> ProgramRunResult:
        """Execute every dynamic node instance of ``graph`` in order.

        ``on_node(node, trip)`` — when given — is invoked after each
        dynamic node instance executes (front ends use it to trace
        per-line mapping snapshots).  A loop proven trip-invariant is
        handed to a replay-capable executor whole
        (:meth:`~repro.engine.spmd.SpmdExecutor.execute_loop`); its
        statement instances are then traced after the loop completes, in
        the exact order :meth:`~repro.engine.ir.ProgramGraph.walk` would
        have produced — sound because trip invariance means no mapping
        snapshot can change inside the loop.
        """
        acct = self.accountant
        tuner = None
        if self.auto and acct is not None:
            from repro.autotune import AutoTuner, WorkProfile, select_passes
            # cost-driven pass selection: prune the -O2 set per program
            chosen, _rationale = select_passes(graph, self.machine.config)
            self.passes = frozenset(chosen)
            acct.passes = frozenset(chosen)
            # the feedback loop's measurement half rides the accountant;
            # charge_schedule observes into it without touching ledgers
            profile = WorkProfile(self.machine.config.n_processors)
            acct.profile = profile
            tuner = AutoTuner(self.ds, self.machine,
                              config=self.machine.config, profile=profile)
            self._tuner = tuner
        if acct is not None and self.opt_window is None \
                and "coalesce" in self.passes:
            acct.window = adaptive_window(graph)
        hoists = plan_hoists(graph) if "hoist" in self.passes else set()
        schedule = ProgramSchedule(self.opt_level, tuple(self.passes))
        reports: list = []
        index = 0

        def emit(node, trip, report) -> None:
            nonlocal index
            reports.append(report)
            schedule.steps.append(self._plan(index, report))
            if on_node is not None:
                on_node(node, trip)
            index += 1

        def replay(loop: LoopNode) -> None:
            flat = loop.flat_body()
            loop_reports = self.executor.execute_loop(
                [sn.stmt for sn in flat], loop.count)
            it = iter(loop_reports)

            def visit(nodes, trip) -> None:
                for n in nodes:
                    if isinstance(n, LoopNode):
                        for k in range(n.count):
                            visit(n.body, k)
                    else:
                        emit(n, trip, next(it))

            for k in range(loop.count):
                visit(loop.body, k)

        def adapt(proposal) -> None:
            # actuation goes through the ordinary REDISTRIBUTE path:
            # epoch bump, cache invalidation, flush, ledger charge
            nonlocal index
            node = RedistributeNode(proposal.array,
                                    tuple(proposal.formats), proposal.to)
            schedule.steps.append(self._remap(index, node))
            index += 1

        def run_nodes(nodes, trip) -> None:
            nonlocal index
            for node in nodes:
                if isinstance(node, LoopNode):
                    split = tuner.consider(node) if tuner is not None \
                        else None
                    if split is not None:
                        # observation trips run unrolled; the adaptation
                        # lands at the trip boundary (only if the
                        # profile confirmed real work); the remaining
                        # trips go back to the ordinary loop path
                        for k in range(split.trip):
                            run_nodes(node.body, k)
                        tuner.apply(split, adapt)
                        rest = LoopNode(node.count - split.trip,
                                        node.body)
                        if self._replay_eligible(rest):
                            replay(rest)
                        else:
                            for k in range(rest.count):
                                run_nodes(node.body, split.trip + k)
                    elif self._replay_eligible(node):
                        replay(node)
                    else:
                        for k in range(node.count):
                            run_nodes(node.body, k)
                    continue
                if isinstance(node, StatementNode):
                    emit(node, trip, self.executor.execute(node.stmt))
                    continue
                if isinstance(node, (RedistributeNode, RealignNode)):
                    if id(node) in hoists and trip > 0:
                        acct.note_hoist()
                        schedule.steps.append(
                            RemapPlan(index, str(node), executed=False))
                    else:
                        schedule.steps.append(self._remap(index, node))
                elif isinstance(node, AllocateNode):
                    if acct is not None:
                        acct.on_layout_change()
                    self.ds.allocate(node.array, *node.bounds)
                    if acct is not None:
                        acct.note_write(node.array)
                elif isinstance(node, DeallocateNode):
                    if acct is not None:
                        acct.on_layout_change()
                    self.ds.deallocate(node.array)
                if on_node is not None:
                    on_node(node, trip)
                index += 1

        try:
            run_nodes(graph.nodes, 0)
        finally:
            if acct is not None:
                acct.flush()
        return ProgramRunResult(
            reports, schedule, self.machine, self.ds,
            savings=acct.savings() if acct is not None else {},
            adaptations=list(tuner.adaptations)
            if tuner is not None else [])

    # ------------------------------------------------------------------
    def _plan(self, index: int, report) -> StatementPlan:
        actions = []
        patterns = getattr(report, "patterns", {})
        comm = getattr(report, "comm_actions", {})
        for ref, matrix, _, _ in getattr(report, "per_ref", ()):
            actions.append(CommAction(
                ref, comm.get(ref, "charged"), int(matrix.sum()),
                patterns.get(ref, "pointwise")))
        if not actions:     # message-accurate reports carry routes
            for ref, action in comm.items():
                actions.append(CommAction(
                    ref, action, 0, patterns.get(ref, "pointwise")))
        return StatementPlan(index, str(report.statement), tuple(actions))

    def _remap(self, index: int, node) -> RemapPlan:
        if self.accountant is not None:
            self.accountant.on_layout_change()
        if isinstance(node, RedistributeNode):
            event = self.ds.redistribute(node.array, node.formats,
                                         to=node.to)
        else:
            event = self.ds.realign(node.spec)
        moved = 0
        if self.charge_remaps:
            _, moved = charge_remap(self.machine, event)
        return RemapPlan(index, str(node), executed=True,
                         moved_words=moved)
