"""Message-accurate distributed execution.

:class:`MessageAccurateExecutor` runs an assignment the way the generated
node program of [13] would: every off-processor operand element travels
through an explicit, *payload-carrying* message in the machine ledger,
and each processor computes only the left-hand-side elements it owns from
(a) its own elements and (b) the payloads it received.  The numeric
result is produced exclusively from routed values — no global shortcut —
and the test suite proves it equal to the sequential reference semantics.

This is the strongest form of the simulation: the cheaper
:class:`~repro.engine.executor.SimulatedExecutor` charges identical
*counts* (same matrices) while computing numerics globally; this executor
demonstrates the counts correspond to a working data motion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef, BinExpr, Expr, ScalarLit, \
    section_slicer
from repro.engine.owner_computes import section_owner_map
from repro.errors import MachineError
from repro.machine.simulator import DistributedMachine

__all__ = ["MessageAccurateExecutor", "RoutedMessage"]


@dataclass(frozen=True, eq=False)
class RoutedMessage:
    """A payload-carrying message: which iteration positions it serves
    and the operand values it delivers."""

    src: int
    dst: int
    ref: str
    positions: np.ndarray      #: linear iteration positions served
    payload: np.ndarray        #: operand values, aligned with positions

    @property
    def words(self) -> int:
        return int(self.payload.size)


@dataclass
class MessageAccurateReport:
    statement: str
    routed: list[RoutedMessage] = field(default_factory=list)
    local_reads: int = 0
    remote_reads: int = 0

    @property
    def total_words(self) -> int:
        return sum(m.words for m in self.routed)


class MessageAccurateExecutor:
    """Executes assignments with explicit payload routing."""

    def __init__(self, ds: DataSpace, machine: DistributedMachine) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise MachineError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        self.ds = ds
        self.machine = machine

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment,
                tag: str = "") -> MessageAccurateReport:
        ds = self.ds
        p = self.machine.config.n_processors
        shape = stmt.validate(ds)
        it_size = int(np.prod(shape)) if shape else 1
        lhs_section = stmt.lhs.section(ds)
        lhs_dist = ds.distribution_of(stmt.lhs.name)
        dst = np.asfortranarray(
            section_owner_map(lhs_dist, lhs_section)).reshape(-1,
                                                              order="F")
        report = MessageAccurateReport(str(stmt))

        # Per-reference: assemble the operand vector per iteration
        # position, routing every off-processor element as a payload.
        operand_of: dict[int, np.ndarray] = {}
        for ref in _unique_refs(stmt.rhs):
            if id(ref) not in operand_of:
                operand_of[id(ref)] = self._route_ref(
                    ref, dst, it_size, report, tag or str(stmt))

        result = self._evaluate(stmt.rhs, operand_of, it_size)
        result = np.broadcast_to(result, (it_size,)).astype(
            ds.arrays[stmt.lhs.name].dtype)

        # owner-computes write-back of owned elements (all of them: the
        # dst vector partitions the iteration space)
        lhs_arr = ds.arrays[stmt.lhs.name]
        view = lhs_arr.data[section_slicer(lhs_section)]
        np.copyto(view, result.reshape(shape, order="F"))

        work = np.bincount(dst, minlength=p)
        self.machine.compute(work * max(len(stmt.rhs.refs()), 1))
        return report

    # ------------------------------------------------------------------
    def _route_ref(self, ref: ArrayRef, dst: np.ndarray, it_size: int,
                   report: MessageAccurateReport,
                   tag: str) -> np.ndarray:
        ds = self.ds
        p = self.machine.config.n_processors
        ref_section = ref.section(ds)
        ref_dist = ds.distribution_of(ref.name)
        src = np.asfortranarray(
            section_owner_map(ref_dist, ref_section)).reshape(-1,
                                                              order="F")
        values = np.asfortranarray(
            ref.eval_global(ds)).reshape(-1, order="F")
        if src.size != it_size:
            raise MachineError(
                f"reference {ref} not conformable with the iteration "
                "space")
        assembled = np.empty(it_size, dtype=values.dtype)
        local_mask = src == dst
        # local reads: the owner already stores these elements
        assembled[local_mask] = values[local_mask]
        report.local_reads += int(local_mask.sum())
        # remote reads: group by (src, dst) pair and ship payloads
        remote = np.nonzero(~local_mask)[0]
        report.remote_reads += int(remote.size)
        if remote.size:
            pairs = src[remote] * p + dst[remote]
            order = np.argsort(pairs, kind="stable")
            sorted_pos = remote[order]
            sorted_pairs = pairs[order]
            boundaries = np.nonzero(np.diff(sorted_pairs))[0] + 1
            for chunk in np.split(sorted_pos, boundaries):
                q = int(src[chunk[0]])
                target = int(dst[chunk[0]])
                payload = values[chunk]
                msg = RoutedMessage(q, target, str(ref), chunk, payload)
                report.routed.append(msg)
                self.machine.send(q, target, msg.words,
                                  tag=f"{tag}#payload:{ref}")
                # delivery: the receiver now knows these operand values
                assembled[chunk] = payload
        return assembled

    # ------------------------------------------------------------------
    def _evaluate(self, expr: Expr, operand_of: dict[int, np.ndarray],
                  it_size: int):
        if isinstance(expr, ScalarLit):
            return expr.value
        if isinstance(expr, ArrayRef):
            return operand_of[id(expr)]
        if isinstance(expr, BinExpr):
            a = self._evaluate(expr.left, operand_of, it_size)
            b = self._evaluate(expr.right, operand_of, it_size)
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            return a / b
        raise MachineError(f"cannot evaluate {expr!r}")


def _unique_refs(expr: Expr) -> list[ArrayRef]:
    """All ArrayRef leaves by identity (duplicates in the tree are
    distinct leaves and each is routed — matching the counting
    executor's per-reference accounting)."""
    out: list[ArrayRef] = []

    def walk(e: Expr) -> None:
        if isinstance(e, ArrayRef):
            out.append(e)
        elif isinstance(e, BinExpr):
            walk(e.left)
            walk(e.right)

    walk(expr)
    return out
