"""Message-accurate distributed execution.

:class:`MessageAccurateExecutor` runs an assignment the way the generated
node program of [13] would: every off-processor operand element travels
through an explicit, *payload-carrying* message in the machine ledger,
and each processor computes only the left-hand-side elements it owns from
(a) its own elements and (b) the payloads it received.  The numeric
result is produced exclusively from routed values — no global shortcut —
and the test suite proves it equal to the sequential reference semantics.

This is the strongest form of the simulation: the cheaper
:class:`~repro.engine.executor.SimulatedExecutor` charges identical
*counts* (same matrices) while computing numerics globally; this executor
demonstrates the counts correspond to a working data motion.

Elapsed time rides the same pattern lowering as the counting executor:
each compiled route carries its words matrix and classification
(:mod:`repro.engine.lowering`), and the machine is charged through
:meth:`~repro.machine.simulator.DistributedMachine.charge_collective` —
the per-message ledger records (and their payloads in the report) are
unchanged, only the time model and pattern attribution differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef, BinExpr, Expr, ScalarLit, \
    section_slicer
from repro.engine.schedule import RouteSchedule, schedule_for, unique_refs
from repro.errors import MachineError
from repro.machine.simulator import DistributedMachine

__all__ = ["MessageAccurateExecutor", "RoutedMessage"]


@dataclass(frozen=True, eq=False)
class RoutedMessage:
    """A payload-carrying message: which iteration positions it serves
    and the operand values it delivers."""

    src: int
    dst: int
    ref: str
    positions: np.ndarray      #: linear iteration positions served
    payload: np.ndarray        #: operand values, aligned with positions

    @property
    def words(self) -> int:
        return int(self.payload.size)


@dataclass
class MessageAccurateReport:
    statement: str
    routed: list[RoutedMessage] = field(default_factory=list)
    local_reads: int = 0
    remote_reads: int = 0
    #: classified communication pattern per routed reference
    patterns: dict[str, str] = field(default_factory=dict)
    #: what the accountant did with each reference's deposit
    comm_actions: dict[str, str] = field(default_factory=dict)
    #: wall-clock seconds spent routing and computing this statement
    wall_s: float = 0.0
    #: synchronization barriers crossed (0: sequential routing)
    barrier_count: int = 0
    #: wall seconds per execution phase ('route'/'write')
    per_phase_wall: dict[str, float] = field(default_factory=dict)

    @property
    def total_words(self) -> int:
        return sum(m.words for m in self.routed)


class MessageAccurateExecutor:
    """Executes assignments with explicit payload routing."""

    def __init__(self, ds: DataSpace, machine: DistributedMachine) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise MachineError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        self.ds = ds
        self.machine = machine
        #: deposit policy; replaced by the program-level optimizer
        self.accountant = None

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment,
                tag: str = "") -> MessageAccurateReport:
        ds = self.ds
        p = self.machine.config.n_processors
        shape = stmt.validate(ds)
        it_size = int(np.prod(shape)) if shape else 1
        lhs_section = stmt.lhs.section(ds)
        # Routing (local masks + per-pair position chunks) comes from the
        # compiled schedule: iterations 2..N of a repeated statement skip
        # the owner-map comparison and argsort entirely and only gather
        # payload values.
        t0 = perf_counter()
        sched = schedule_for(ds, stmt, p, routing=True)
        report = MessageAccurateReport(str(stmt))

        # Per-reference: assemble the operand vector per iteration
        # position, routing every off-processor element as a payload.
        operand_of: dict[int, np.ndarray] = {}
        for ref, route in zip(unique_refs(stmt.rhs), sched.routes):
            operand_of[id(ref)] = self._apply_route(
                ref, route, it_size, report, tag or str(stmt),
                sched.lhs_key)

        t1 = perf_counter()
        result = self._evaluate(stmt.rhs, operand_of, it_size)
        result = np.broadcast_to(result, (it_size,)).astype(
            ds.arrays[stmt.lhs.name].dtype)

        # owner-computes write-back of owned elements (all of them: the
        # schedule's owner vector partitions the iteration space)
        lhs_arr = ds.arrays[stmt.lhs.name]
        view = lhs_arr.data[section_slicer(lhs_section)]
        np.copyto(view, result.reshape(shape, order="F"))

        self.machine.compute(sched.work)
        if self.accountant is not None:
            self.accountant.note_write(stmt.lhs.name)
        t2 = perf_counter()
        report.wall_s = t2 - t0
        report.per_phase_wall = {"route": t1 - t0, "write": t2 - t1}
        return report

    # ------------------------------------------------------------------
    def _apply_route(self, ref: ArrayRef, route: RouteSchedule,
                     it_size: int, report: MessageAccurateReport,
                     tag: str, lhs_key: bytes) -> np.ndarray:
        """Materialize one reference's messages from its compiled route:
        payloads are gathered with array slicing against the precompiled
        position chunks — no per-element appends."""
        values = np.asfortranarray(
            ref.eval_global(self.ds)).reshape(-1, order="F")
        if values.size != it_size:
            raise MachineError(
                f"reference {ref} not conformable with the iteration "
                "space")
        assembled = np.empty(it_size, dtype=values.dtype)
        # local reads: the owner already stores these elements
        assembled[route.local_mask] = values[route.local_mask]
        report.local_reads += route.n_local
        report.remote_reads += route.n_remote
        for q, target, positions in route.chunks:
            payload = values[positions]
            msg = RoutedMessage(q, target, str(ref), positions, payload)
            report.routed.append(msg)
            # delivery: the receiver now knows these operand values
            assembled[positions] = payload
        # one machine deposit per reference: the ledger records are
        # identical to per-chunk sends (chunks are sorted src-major, the
        # matrix nonzeros likewise), but elapsed accounting routes
        # through the route's classified pattern
        if route.chunks:
            if self.accountant is not None:
                action = self.accountant.deposit(
                    self.machine, route.words, route.lowering,
                    f"{tag}#payload:{ref}", kind="route", ref=str(ref),
                    source=route.source, lhs_key=lhs_key)
                report.comm_actions[str(ref)] = action
            else:
                self.machine.charge_collective(
                    route.words, route.lowering, tag=f"{tag}#payload:{ref}")
        report.patterns[str(ref)] = route.pattern
        return assembled

    # ------------------------------------------------------------------
    def _evaluate(self, expr: Expr, operand_of: dict[int, np.ndarray],
                  it_size: int):
        if isinstance(expr, ScalarLit):
            return expr.value
        if isinstance(expr, ArrayRef):
            return operand_of[id(expr)]
        if isinstance(expr, BinExpr):
            a = self._evaluate(expr.left, operand_of, it_size)
            b = self._evaluate(expr.right, operand_of, it_size)
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            return a / b
        raise MachineError(f"cannot evaluate {expr!r}")
