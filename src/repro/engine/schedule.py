"""Compiled communication schedules — the vectorized, memoized middle end.

The paper's central claim is that direct distribution + alignment
functions (no templates) suffice to *derive* ownership and communication
sets at compile time.  This module is that derivation, packaged: a
:class:`CommSchedule` is everything the execution engine needs to run one
array assignment against the current layout of a :class:`DataSpace` —

* the flattened LHS owner map (who executes which iteration under
  owner-computes) and the per-processor work vector;
* one :class:`RefSchedule` per RHS reference occurrence: the exact
  (P, P) words matrix, the local/off-processor split, and which strategy
  (analytic regular sections / dense oracle) produced it;
* when compiled ``with routing``, one :class:`RouteSchedule` per *unique*
  RHS leaf: the boolean local mask plus the per-(src, dst) iteration
  position chunks a payload-carrying executor ships — so repeated
  statements re-gather values with array slicing instead of recomputing
  sets;
* the SUPERB-style ghost-region :class:`OverlapPlan` when requested;
* one :class:`~repro.engine.lowering.Lowering` per reference, route and
  overlap plan: the compile-time pattern classification (SHIFT /
  BROADCAST / ALLGATHER / ALLTOALL / POINTWISE) the executors hand to
  :meth:`~repro.machine.simulator.DistributedMachine.charge_collective`
  so recognized traffic is priced with collective-tree formulas while
  the words matrices stay bit-identical.

Schedules are compiled once per (layout epoch, statement structure,
machine width, strategy) and memoized in the data space's
:class:`~repro.core.dataspace.ScheduleCache`; any REDISTRIBUTE / REALIGN
/ DEALLOCATE bumps the layout epoch and drops every schedule, so
Jacobi-style iteration 2..N becomes a pure cache hit while remaining
bit-identical to per-statement recomputation (the tier-1 suite is the
oracle for that).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.commsets import (
    AnalyticUnsupported,
    analytic_comm_sets,
    build_routing,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.engine.expr import ArrayRef, BinExpr, Expr, section_slicer
from repro.engine.lowering import (
    Lowering,
    POINTWISE_LOWERING,
    Pattern,
    classify_matrix,
    matrix_from_chunks,
)
from repro.engine.overlap import OverlapPlan, overlap_plan
from repro.engine.owner_computes import section_owner_map
from repro.engine.planstore import (
    active_plan_store,
    statement_content_key,
)
from repro.errors import MachineError

__all__ = ["CommSchedule", "PeerPlan", "RefSchedule", "RouteSchedule",
           "flat_storage_index", "schedule_for", "unique_refs"]


def flat_storage_index(ds: DataSpace, ref: ArrayRef, it_shape,
                       positions: np.ndarray) -> np.ndarray:
    """Lower linear iteration positions to flat Fortran-order *storage*
    indices of ``ref``'s array: iteration coords -> section coords (the
    triplet start/stride per sliced dim, the scalar subscript position
    per dropped dim) -> ravel in the array's storage order.  Shared by
    the SPMD window-plan compiler (worker gathers/writes) and the
    subset-subsumption pass (element-range residency keys): both need
    the *global element identity* behind an iteration position."""
    arr_shape = ds.arrays[ref.name].data.shape
    slicer = section_slicer(ref.section(ds))
    multi = (np.unravel_index(positions, it_shape, order="F")
             if it_shape else ())
    coords: list[np.ndarray] = []
    k = 0
    for sl in slicer:
        if isinstance(sl, slice):
            coords.append(sl.start + multi[k] * sl.step)
            k += 1
        else:
            coords.append(np.full(positions.shape, sl, dtype=np.int64))
    if not coords:      # rank-0 array
        return np.zeros(positions.shape, dtype=np.int64)
    return np.ravel_multi_index(coords, arr_shape, order="F").astype(
        np.int64)


@dataclass(frozen=True)
class RefSchedule:
    """Compiled traffic of one RHS reference occurrence."""

    ref: str
    #: exact (P, P) words matrix, entry [q, p] = words moving q -> p
    words: np.ndarray
    local: int
    off: int
    #: 'analytic' (closed-form regular sections) or 'oracle' (dense maps)
    strategy: str
    #: compile-time pattern classification of the words matrix
    lowering: Lowering = POINTWISE_LOWERING
    #: name of the array the reference reads (the halo-validity key)
    source: str = ""
    #: per-(src, dst) *element identity* of the exchange — one
    #: ``(src, dst, global flat element ids)`` group per off-diagonal
    #: cell, compiled for SHIFT-classified references only (the shapes
    #: subset-subsumption targets).  Lets the optimizer prove one
    #: exchange's elements are contained in traffic already resident
    #: from a different exchange (a 9-point diagonal inside the
    #: straight faces), which the words matrices alone cannot express.
    ghosts: tuple[tuple[int, int, frozenset], ...] | None = None

    @property
    def pattern(self) -> str:
        return self.lowering.pattern.value


@dataclass(frozen=True)
class RouteSchedule:
    """Compiled routing of one unique RHS leaf (payload execution).

    ``chunks`` holds one ``(src, dst, positions)`` entry per message: the
    linear iteration positions whose operand element travels src -> dst.
    Positions depend only on the layout, so they are compiled once;
    payload values are gathered per execution with one fancy-index each.
    ``words`` aggregates the chunks into the (P, P) matrix the machine is
    charged with, and ``lowering`` is its pattern classification.
    """

    ref: str
    local_mask: np.ndarray
    n_local: int
    n_remote: int
    chunks: tuple[tuple[int, int, np.ndarray], ...]
    words: np.ndarray
    lowering: Lowering = POINTWISE_LOWERING
    #: name of the array the route reads (the halo-validity key)
    source: str = ""

    @property
    def pattern(self) -> str:
        return self.lowering.pattern.value


@dataclass(frozen=True)
class PeerPlan:
    """The fused transfer plan of one ``(src, dst)`` unit pair: every
    RHS leaf's traffic between the pair, concatenated in leaf order.

    ``segments`` holds ``(leaf, positions)`` pairs — the unique-leaf
    index (aligned with :attr:`CommSchedule.routes`) and the linear
    iteration positions whose operand element travels src -> dst for
    that leaf.  Peer plans are a pure regrouping of the per-leaf route
    chunks: summing them reproduces the routes' words matrices exactly
    (:func:`repro.engine.lowering.fused_transfer_matrix`), which is what
    lets the SPMD backend ship one concatenated gather per peer while
    the machine is still charged the bit-identical per-reference
    matrices."""

    src: int
    dst: int
    segments: tuple[tuple[int, np.ndarray], ...]

    @property
    def words(self) -> int:
        return int(sum(pos.size for _, pos in self.segments))


@dataclass(frozen=True)
class CommSchedule:
    """Everything needed to execute one statement against one layout."""

    statement: str
    n_processors: int
    #: the DataSpace.layout_epoch the schedule was compiled in
    epoch: int
    iteration_shape: tuple[int, ...]
    #: flattened (column-major) LHS owner map: iteration -> executing unit
    lhs_owner_flat: np.ndarray
    #: per-processor elementwise-operation counts for the statement
    work: np.ndarray
    refs: tuple[RefSchedule, ...]
    routes: tuple[RouteSchedule, ...] | None = None
    #: fused per-(src, dst) transfer plans (routing schedules only):
    #: the routes' chunks regrouped by peer pair, in (src, dst) order
    peer_plans: tuple[PeerPlan, ...] | None = None
    overlap: OverlapPlan | None = None
    #: pattern classification of the overlap exchange, when one exists
    overlap_lowering: Lowering | None = None
    #: name of the written (LHS) array
    lhs_name: str = ""
    #: content digest of the flattened LHS owner map — two statements
    #: whose destinations partition identically share it, which is what
    #: lets the optimizer prove one statement's exchange covers another's
    lhs_key: bytes = b""

    @property
    def iteration_size(self) -> int:
        return int(self.lhs_owner_flat.size)

    @property
    def patterns(self) -> dict[str, str]:
        """Classified pattern per reference (or ``'*'`` for the bulk
        overlap exchange) — the attribution executors copy into reports."""
        if self.overlap is not None and self.overlap_lowering is not None:
            return {"*": self.overlap_lowering.pattern.value}
        if self.routes is not None:
            return {r.ref: r.pattern for r in self.routes}
        return {r.ref: r.pattern for r in self.refs}

    @property
    def total_words(self) -> int:
        if self.overlap is not None:
            return int(self.overlap.words.sum())
        return int(sum(int(r.words.sum()) for r in self.refs))

    def describe(self) -> str:
        strategies = ",".join(sorted({r.strategy for r in self.refs}))
        return (f"<CommSchedule {self.statement!r} P={self.n_processors} "
                f"epoch={self.epoch} refs={len(self.refs)} "
                f"[{strategies or 'none'}] words={self.total_words}>")


# ----------------------------------------------------------------------
# Statement structure helpers
# ----------------------------------------------------------------------
def unique_refs(expr: Expr) -> list[ArrayRef]:
    """Unique-by-identity ArrayRef leaves in first-occurrence order (a
    shared leaf object is routed once; structurally equal but distinct
    leaves are routed separately — the payload executor's contract)."""
    out: list[ArrayRef] = []
    seen: set[int] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, ArrayRef):
            if id(e) not in seen:
                seen.add(id(e))
                out.append(e)
        elif isinstance(e, BinExpr):
            walk(e.left)
            walk(e.right)

    walk(expr)
    return out


def _identity_signature(expr: Expr) -> tuple[int, ...]:
    """Group number of every RHS leaf occurrence, numbered by first
    appearance of the leaf *object* — distinguishes ``x + x`` (one shared
    leaf) from two structurally equal leaves for routing purposes."""
    groups: dict[int, int] = {}
    sig: list[int] = []

    def walk(e: Expr) -> None:
        if isinstance(e, ArrayRef):
            sig.append(groups.setdefault(id(e), len(groups)))
        elif isinstance(e, BinExpr):
            walk(e.left)
            walk(e.right)

    walk(expr)
    return tuple(sig)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def schedule_for(ds: DataSpace, stmt: Assignment, n_processors: int, *,
                 strategy: str = "auto", use_overlap: bool = False,
                 routing: bool = False) -> CommSchedule:
    """The compiled schedule for ``stmt`` under the current layout.

    Memoized on the data space: repeated identical statements (the Jacobi
    pattern) return the cached object; REDISTRIBUTE / REALIGN invalidate.
    Statement keys are structural (frozen dataclasses), with the leaf
    identity signature added for routing schedules.

    Above the per-scope cache sits the process-wide
    :class:`~repro.engine.planstore.PlanStore`: on a local miss the
    compiler first looks the statement up by *content* (layout digests
    plus statement structure), so an independent session that already
    compiled the same statement over the same layout donates its
    schedule — adopted with the local layout epoch re-stamped, never
    recompiled.  The per-scope cache still records its own miss either
    way (its counters keep meaning "not resident in this scope").
    """
    identity_sig = _identity_signature(stmt.rhs) if routing else None
    key = (stmt, n_processors, strategy, use_overlap, routing,
           identity_sig)
    cache = ds.schedule_cache
    hit = cache.get(key)
    if hit is not None:
        return hit
    # register the arrays the schedule was compiled against, so a remap
    # of one alignment forest invalidates exactly the schedules that
    # depend on it (unrelated forests keep theirs)
    arrays = frozenset({stmt.lhs.name, *(r.name for r in stmt.rhs.refs())})
    # a scope attached to a serving-stack SessionService carries its own
    # store; everything else shares the process-wide active one
    store = getattr(ds, "plan_store", None)
    if store is None:   # explicit: an *empty* store is len-0 falsy
        store = active_plan_store()
    content = None
    if store is not None:
        content = statement_content_key(ds, stmt, n_processors, strategy,
                                        use_overlap, routing, identity_sig)
        shared = store.get(content)
        if shared is not None:
            adopted = dataclasses.replace(shared, epoch=ds.layout_epoch)
            # non-field annotation: the content key rides on the object
            # so backends can content-address plans derived from it
            object.__setattr__(adopted, "plan_key", content)
            cache.put(key, adopted, arrays)
            return adopted
    sched = _compile(ds, stmt, n_processors, strategy, use_overlap, routing)
    cache.put(key, sched, arrays)
    if store is not None:
        object.__setattr__(sched, "plan_key", content)
        store.put(content, sched)
    return sched


def _compile(ds: DataSpace, stmt: Assignment, p: int, strategy: str,
             use_overlap: bool, routing: bool) -> CommSchedule:
    if strategy not in ("auto", "oracle", "analytic"):
        raise ValueError(f"unknown strategy {strategy!r}")
    shape = stmt.validate(ds)
    lhs_dist = ds.distribution_of(stmt.lhs.name)
    lhs_section = stmt.lhs.section(ds)
    lhs_map = section_owner_map(lhs_dist, lhs_section)
    dst = np.asfortranarray(lhs_map).reshape(-1, order="F")
    n_refs = max(len(stmt.rhs.refs()), 1)
    work = np.bincount(dst, minlength=p).astype(np.int64) * n_refs
    work.setflags(write=False)

    plan = overlap_plan(ds, stmt, p) if use_overlap else None

    # Counting matrices are compiled for the statement-counting executor
    # only; routing schedules ship actual payloads and never consult the
    # (potentially replicated-operand) counting oracle, matching the
    # payload executor's historical semantics.
    refs: list[RefSchedule] = []
    for ref in stmt.rhs.refs() if not routing else ():
        ref_dist = ds.distribution_of(ref.name)
        ref_section = ref.section(ds)
        used = "oracle"
        matrix = None
        if plan is None and strategy in ("auto", "analytic"):
            try:
                pieces = analytic_comm_sets(
                    lhs_dist, lhs_section, ref_dist, ref_section)
                matrix = words_matrix_from_pieces(pieces, p)
                used = "analytic"
                off = int(matrix.sum())
                local = lhs_section.size - off
            except AnalyticUnsupported:
                if strategy == "analytic":
                    raise
                matrix = None
        if matrix is None:
            # the overlap branch reports per-reference locality via the
            # oracle regardless of strategy (matching the seed engine)
            matrix, local, off = comm_matrix(
                lhs_dist, lhs_section, ref_dist, ref_section, p)
        matrix.setflags(write=False)
        # the hint is about the *operand* data: only a replicated
        # reference ships identical pieces to every destination
        lowering = classify_matrix(matrix,
                                   replicated=ref_dist.is_replicated)
        ghosts = None
        if lowering.pattern is Pattern.SHIFT:
            # element-range identity for the subsumption pass: which
            # global storage elements each off-diagonal cell ships.
            # Compiled from the dense owner maps (the oracle the
            # analytic pieces agree with), once per schedule.
            src_own = np.asfortranarray(
                section_owner_map(ref_dist, ref_section)).reshape(
                    -1, order="F")
            if src_own.size == dst.size:
                elems = flat_storage_index(
                    ds, ref, tuple(shape),
                    np.arange(dst.size, dtype=np.int64))
                cells = []
                for q, pr in zip(*np.nonzero(matrix)):
                    q, pr = int(q), int(pr)
                    if q == pr:
                        continue
                    sel = (src_own == q) & (dst == pr)
                    cells.append((q, pr,
                                  frozenset(elems[sel].tolist())))
                ghosts = tuple(cells)
        refs.append(RefSchedule(
            str(ref), matrix, local, off, used, lowering,
            source=ref.name, ghosts=ghosts))

    routes: tuple[RouteSchedule, ...] | None = None
    peer_plans: tuple[PeerPlan, ...] | None = None
    if routing:
        it_size = int(dst.size)
        compiled = []
        for ref in unique_refs(stmt.rhs):
            ref_dist = ds.distribution_of(ref.name)
            ref_section = ref.section(ds)
            src = np.asfortranarray(
                section_owner_map(ref_dist, ref_section)).reshape(
                    -1, order="F")
            if src.size != it_size:
                raise MachineError(
                    f"reference {ref} not conformable with the iteration "
                    "space")
            local_mask, chunks = build_routing(src, dst, p)
            local_mask.setflags(write=False)
            for _, _, positions in chunks:
                positions.setflags(write=False)
            route_words = matrix_from_chunks(chunks, p)
            route_words.setflags(write=False)
            # routes never claim the replicated (broadcast) discount:
            # chunks partition the iteration space, so every shipped
            # payload is a distinct piece even when the array's storage
            # is replicated — scatter-shaped by construction
            compiled.append(RouteSchedule(
                str(ref), local_mask, int(local_mask.sum()),
                int(it_size - local_mask.sum()), chunks, route_words,
                classify_matrix(route_words), source=ref.name))
        routes = tuple(compiled)
        # regroup the per-leaf chunks by (src, dst) peer pair — the
        # fused transfer plans a payload backend ships as one gather
        buckets: dict[tuple[int, int], list] = {}
        for leaf, route in enumerate(routes):
            for src_u, dst_u, positions in route.chunks:
                if positions.size:
                    buckets.setdefault((src_u, dst_u), []).append(
                        (leaf, positions))
        peer_plans = tuple(
            PeerPlan(src_u, dst_u, tuple(segments))
            for (src_u, dst_u), segments in sorted(buckets.items()))

    dst.setflags(write=False)
    return CommSchedule(
        statement=str(stmt), n_processors=p, epoch=ds.layout_epoch,
        iteration_shape=tuple(shape), lhs_owner_flat=dst, work=work,
        refs=tuple(refs), routes=routes, peer_plans=peer_plans,
        overlap=plan,
        overlap_lowering=(classify_matrix(plan.words)
                          if plan is not None else None),
        lhs_name=stmt.lhs.name,
        lhs_key=hashlib.blake2b(dst.tobytes(),
                                digest_size=16).digest())
