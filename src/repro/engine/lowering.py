"""Pattern-classified lowering of communication schedules to collectives.

The paper argues its cost cases — §5.1 replication, the §4.2/§7 remap
arguments — in terms of *structured* communication: broadcast trees for
replicated alignees, dense exchanges for remaps, nearest-neighbour
traffic for stencils.  :mod:`repro.machine.collectives` prices those
structures, but a words matrix deposited through the raw point-to-point
model never reaches them.  This module closes that gap: it inspects the
exact (P, P) words matrix of a compiled
:class:`~repro.engine.schedule.CommSchedule` reference (or route, or
remap event) and classifies the traffic as one of

* ``SHIFT``      — banded stencil exchange: the nonzero (src, dst) pairs
  fall into a handful of circular offsets, each offset a partial
  permutation whose messages proceed concurrently;
* ``BROADCAST``  — a single root (or concurrent per-group roots) fanning
  a uniform volume of *replicated* data out to two or more destinations
  (the §5.1 ``*``-subscript replication shape);
* ``SCATTER``    — the same one-root fan-out shape without replication:
  each destination receives a *distinct* piece, so the root's outgoing
  volume is irreducible and the tree only saves startups;
* ``ALLGATHER``  — every contributing processor sends a row-constant
  volume to all others (replication remaps: each old owner's block ends
  up everywhere);
* ``ALLTOALL``   — a dense remap: (nearly) every ordered pair exchanges
  data (BLOCK -> CYCLIC and friends);
* ``POINTWISE``  — the fallback: unstructured traffic, priced message by
  message as before.

Classification is a *pure* function of the words matrix (plus a
``replicated`` hint separating replication traffic from dense remaps —
the two are indistinguishable from the matrix alone) and never alters
the matrix: executors deposit bit-identical messages and counters either
way, and only the elapsed-time model and the per-pattern attribution
change.  :meth:`Lowering.time` prices a recognized pattern with the
alpha-beta tree formulas; the machine charges ``min(collective, p2p)`` —
layout-aware transport selection in the spirit of DASH (Idrees et al.,
arXiv:1603.01536), never worse than the point-to-point model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.machine import collectives
from repro.machine.config import MachineConfig

__all__ = ["Pattern", "Lowering", "POINTWISE_LOWERING", "classify_matrix",
           "coalesce_deposits", "fused_transfer_matrix",
           "matrix_from_chunks", "p2p_time"]

#: fraction of off-diagonal (src, dst) pairs that must be nonzero for a
#: matrix to count as a dense ALLTOALL remap
_ALLTOALL_DENSITY = 0.75
#: maximum number of distinct circular offsets a SHIFT band may span
_SHIFT_MAX_OFFSETS = 4


class Pattern(str, Enum):
    """The recognized communication shapes (values are report keys)."""

    SHIFT = "shift"
    BROADCAST = "broadcast"
    SCATTER = "scatter"
    ALLGATHER = "allgather"
    ALLTOALL = "alltoall"
    POINTWISE = "pointwise"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class Lowering:
    """A classified words matrix: the pattern plus the parameters its
    collective cost formula needs.  ``words_per_unit`` is the volume one
    participant handles (the uniform fan-out volume for BROADCAST, the
    largest per-processor contribution for ALLGATHER/ALLTOALL);
    ``offset_words`` holds, per distinct SHIFT offset, the largest single
    message of that concurrent round."""

    pattern: Pattern
    words_per_unit: int = 0
    participants: int = 0
    root: int | None = None
    offset_words: tuple[int, ...] = ()
    #: receiver-disjoint rounds a group BROADCAST needs (the maximum
    #: number of roots any single destination hears from)
    rounds: int = 1

    def time(self, config: MachineConfig) -> float | None:
        """Collective-model time for this pattern, or ``None`` when the
        traffic must stay on the point-to-point model (POINTWISE, or a
        distance-sensitive machine where tree rounds are not uniform)."""
        if self.pattern is Pattern.POINTWISE or config.hop_factor:
            return None
        if self.pattern is Pattern.BROADCAST:
            return self.rounds * collectives.broadcast(
                config, self.words_per_unit, self.participants)[0]
        if self.pattern is Pattern.SCATTER:
            return collectives.scatter(config, self.words_per_unit,
                                       self.participants)[0]
        if self.pattern is Pattern.ALLGATHER:
            return collectives.allgather(config, self.words_per_unit,
                                         self.participants)[0]
        if self.pattern is Pattern.ALLTOALL:
            return collectives.alltoall(config, self.words_per_unit,
                                        self.participants)[0]
        return collectives.shift(config, self.offset_words)[0]

    def describe(self) -> str:
        return (f"<{self.pattern.value} w={self.words_per_unit} "
                f"parts={self.participants}>")


#: the shared fallback sentinel (schedules default to it)
POINTWISE_LOWERING = Lowering(Pattern.POINTWISE)


def classify_matrix(words: np.ndarray, *,
                    replicated: bool = False) -> Lowering:
    """Classify one exact (P, P) words matrix.

    ``replicated`` says the traffic serves a replicated mapping (a ``*``
    base subscript, a REPLICATED format, a scalar-arrangement placement):
    a full uniform matrix then reads as ALLGATHER (everyone ends up with
    everything) rather than ALLTOALL (everyone trades distinct pieces).
    The matrix is never modified.
    """
    w = np.asarray(words)
    p = int(w.shape[0])
    if w.shape != (p, p) or p == 0:
        raise ValueError(f"expected a square words matrix, got {w.shape}")
    off = w.copy()
    np.fill_diagonal(off, 0)
    src, dst = np.nonzero(off)
    if src.size == 0:
        return POINTWISE_LOWERING
    vals = off[src, dst]
    senders = np.unique(src)

    # One root, >= 2 destinations, uniform volume: a BROADCAST when the
    # data is replicated (every destination receives the same piece, so
    # a binomial tree shrinks the volume too), a SCATTER otherwise (the
    # pieces are distinct — the root's outgoing volume is irreducible
    # and the tree only amortizes startups)
    if senders.size == 1 and src.size >= 2 and np.all(vals == vals[0]):
        pattern = Pattern.BROADCAST if replicated else Pattern.SCATTER
        return Lowering(pattern, words_per_unit=int(vals[0]),
                        participants=int(src.size) + 1,
                        root=int(senders[0]))

    row_nnz = np.count_nonzero(off, axis=1)
    full_rows = bool(np.all(row_nnz[senders] == p - 1))
    row_constant = full_rows and all(
        int(off[q].max()) == int(np.min(off[q][off[q] > 0]))
        for q in senders.tolist())
    if senders.size >= 2 and row_constant:
        per_proc = int(off.max())
        if replicated:
            return Lowering(Pattern.ALLGATHER, words_per_unit=per_proc,
                            participants=p)
        return Lowering(Pattern.ALLTOALL, words_per_unit=per_proc,
                        participants=p)

    # group-wise replication (a ``*`` base subscript onto one dimension
    # of a processor grid): every source fans a uniform volume out to its
    # own replication group.  Overlapping groups (a destination hearing
    # from R roots) are decomposed into R receiver-disjoint rounds —
    # schedule each receiver's k-th incoming message in round k — so one
    # concurrent tree per round covers every receiver's ingest volume
    if replicated and np.all(vals == vals[0]):
        rounds = int(np.count_nonzero(off, axis=0).max())
        fan = int(row_nnz[senders].max())
        return Lowering(Pattern.BROADCAST, words_per_unit=int(vals[0]),
                        participants=fan + 1, rounds=rounds)

    density = src.size / float(p * (p - 1)) if p > 1 else 0.0
    if density >= _ALLTOALL_DENSITY:
        return Lowering(Pattern.ALLTOALL, words_per_unit=int(vals.max()),
                        participants=p)

    # SHIFT: few distinct circular offsets; each offset group is a
    # partial permutation by construction (an (src, offset) pair fixes
    # its dst), so its messages proceed concurrently in one round.
    offsets = (dst - src) % p
    distinct = np.unique(offsets)
    if distinct.size <= _SHIFT_MAX_OFFSETS:
        round_words = tuple(int(vals[offsets == d].max())
                            for d in distinct.tolist())
        return Lowering(Pattern.SHIFT, words_per_unit=max(round_words),
                        participants=p, offset_words=round_words)
    return POINTWISE_LOWERING


def coalesce_deposits(deposits) -> tuple[np.ndarray, Lowering]:
    """Merge a fusion window of ``(words_matrix, lowering)`` deposits
    into one matrix and its classification.

    Matrices add elementwise, so messages between the same (src, dst)
    pair collapse into one with summed words — the word total is exact
    by construction, only startups drop.  The merged matrix is
    re-classified; the replicated hint survives only when *every* member
    carried replicated traffic (a merged window of distinct pieces must
    not claim the broadcast discount).
    """
    if not deposits:
        raise ValueError("cannot coalesce an empty deposit window")
    merged = np.zeros_like(np.asarray(deposits[0][0]))
    replicated = True
    for matrix, lowering in deposits:
        merged = merged + np.asarray(matrix)
        replicated = replicated and lowering.pattern in (
            Pattern.BROADCAST, Pattern.ALLGATHER)
    return merged, classify_matrix(merged, replicated=replicated)


def matrix_from_chunks(chunks, n_processors: int) -> np.ndarray:
    """The (P, P) words matrix of a compiled route's
    ``(src, dst, positions)`` chunks (one entry per message)."""
    matrix = np.zeros((n_processors, n_processors), dtype=np.int64)
    for src, dst, positions in chunks:
        matrix[src, dst] += int(len(positions))
    return matrix


def fused_transfer_matrix(peer_plans, n_processors: int) -> np.ndarray:
    """The (P, P) words matrix implied by a schedule's fused per-peer
    transfer plans.  Peer plans concatenate every leaf's chunks for one
    (src, dst) pair, so this equals the sum of the per-leaf route
    matrices — the invariant that lets the SPMD backend execute one
    fused gather per peer while charging the machine the per-reference
    matrices unchanged."""
    matrix = np.zeros((n_processors, n_processors), dtype=np.int64)
    for plan in peer_plans or ():
        matrix[plan.src, plan.dst] += plan.words
    return matrix


def p2p_time(config: MachineConfig, words: np.ndarray) -> float:
    """The point-to-point model's time for a words matrix — the baseline
    the lowered patterns are selected against (and the number reports
    quote as ``time_p2p``).  Delegates to the single
    :func:`repro.machine.collectives.pointwise` formula the machine
    ledger charges with."""
    off = np.asarray(words).copy()
    np.fill_diagonal(off, 0)
    src, dst = np.nonzero(off)
    return collectives.pointwise(config, src, dst, off[src, dst])
