"""Owner-computes helpers: iteration partitioning and work vectors."""

from __future__ import annotations

import numpy as np

from repro.distributions.distribution import Distribution
from repro.engine.expr import section_slicer
from repro.fortran.section import ArraySection

__all__ = ["section_owner_map", "local_iteration_counts", "work_vector"]


def section_owner_map(dist: Distribution,
                      section: ArraySection) -> np.ndarray:
    """Primary-owner map of the elements a section selects, shaped like
    the section (vectorized: a strided slice of the dense owner map)."""
    pmap = dist.primary_owner_map()
    return pmap[section_slicer(section)]


def local_iteration_counts(owner_map: np.ndarray,
                           n_processors: int) -> np.ndarray:
    """Number of iterations each processor executes under owner-computes:
    a bincount of the LHS owner map."""
    flat = np.asarray(owner_map).reshape(-1)
    return np.bincount(flat, minlength=n_processors).astype(np.int64)


def work_vector(owner_map: np.ndarray, n_processors: int,
                ops_per_element: int = 1) -> np.ndarray:
    """Per-processor elementwise-operation counts for one statement."""
    return local_iteration_counts(owner_map, n_processors) * ops_per_element
