"""Owner-computes helpers: iteration partitioning and work vectors."""

from __future__ import annotations

import numpy as np

from repro.distributions.distribution import Distribution
from repro.engine.expr import section_slicer
from repro.fortran.section import ArraySection
from repro.fortran.triplet import Triplet

__all__ = ["section_owner_map", "local_iteration_counts", "work_vector"]

#: a section at most this fraction of its parent uses the sparse
#: owners_of kernel instead of materializing the dense owner map
_SPARSE_FRACTION = 4


def _section_indices(section: ArraySection) -> np.ndarray:
    """The parent index tuples the section selects, as an
    ``(size, rank)`` array in column-major element order."""
    size = section.size
    out = np.empty((size, section.parent.rank), dtype=np.int64)
    stride = 1
    pos = np.arange(size, dtype=np.int64)
    for k, sub in enumerate(section.subscripts):
        if isinstance(sub, Triplet):
            vals = sub.values()
            out[:, k] = vals[(pos // stride) % len(vals)]
            stride *= len(vals)
        else:
            out[:, k] = sub
    return out


def section_owner_map(dist: Distribution,
                      section: ArraySection) -> np.ndarray:
    """Primary-owner map of the elements a section selects, shaped like
    the section.

    Two vectorized paths: a strided slice of the memoized dense owner
    map (the common case — free once the map is cached), or, for a
    section much smaller than its parent whose distribution supplies a
    closed-form ``owners_of`` bulk kernel, a direct gather over just the
    section's elements, skipping the dense materialization entirely.
    """
    small = section.size * _SPARSE_FRACTION < dist.domain.size
    if small and dist._owner_map_cache is None and \
            type(dist).owners_of is not Distribution.owners_of:
        owners = dist.owners_of(_section_indices(section))
        return owners.reshape(section.shape, order="F")
    pmap = dist.primary_owner_map()
    return pmap[section_slicer(section)]


def local_iteration_counts(owner_map: np.ndarray,
                           n_processors: int) -> np.ndarray:
    """Number of iterations each processor executes under owner-computes:
    a bincount of the LHS owner map."""
    flat = np.asarray(owner_map).reshape(-1)
    return np.bincount(flat, minlength=n_processors).astype(np.int64)


def work_vector(owner_map: np.ndarray, n_processors: int,
                ops_per_element: int = 1) -> np.ndarray:
    """Per-processor elementwise-operation counts for one statement."""
    return local_iteration_counts(owner_map, n_processors) * ops_per_element
