"""The process-wide, content-addressed store of compiled plans.

The per-scope :class:`~repro.core.dataspace.ScheduleCache` memoizes
compiled :class:`~repro.engine.schedule.CommSchedule` objects *within*
one :class:`~repro.core.dataspace.DataSpace`; this module adds the
serving-stack layer above it: one thread-safe store shared by every
session in the process, addressing plans by **content** instead of by
scope.  Two independent sessions running the same Jacobi over the same
layout produce identical content keys, so the second session adopts the
first one's compiled schedules (and the SPMD backend's fused
:class:`~repro.engine.spmd.WindowTask` splits) without compiling
anything — the cross-tenant cache the ``repro serve`` service exists
to exploit.

A content key has three ingredients:

* the **statement structure** — the frozen :class:`Assignment` itself
  (structural equality), plus the compile options ``(p, strategy,
  use_overlap, routing, identity signature)`` the per-scope cache
  already keys on;
* one **per-array layout key** for every array the statement touches:
  ``(name, dtype, distribution class, describe(), domain bounds,
  blake2b digest of the memoized primary owner map, replication)`` —
  the digest ties the key to the actual ownership function, the
  describe string and replication fields are belt-and-braces for
  distributions whose full owner *sets* exceed the primary map;
* the abstract-processor width of the scope.

Adoption never shares mutable state: every field of a compiled schedule
is a read-only array, and the adopter re-stamps the scope-local
``epoch`` (and, for window plans, the executor-local ``serial``) with
:func:`dataclasses.replace`, so the stored object is never mutated.

The store is bounded (LRU) and always on; tests swap in a private
store with :func:`swapped_plan_store` to get isolated counters.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from dataclasses import dataclass, field

__all__ = ["PlanStore", "active_plan_store", "set_active_plan_store",
           "swapped_plan_store", "distribution_key",
           "statement_content_key"]


@dataclass
class PlanStore:
    """A bounded, thread-safe, content-addressed plan table.

    Values are compiled plan objects (schedules, window-task splits);
    keys are the content tuples built by :func:`statement_content_key`.
    ``hits``/``misses`` count lookups, so ``hit_rate`` is the fraction
    of plan requests that crossed session boundaries instead of
    compiling — the serving metric the bench harness gates.
    """

    maxsize: int = 256
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _entries: dict = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def get(self, key):
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                self.misses += 1
                return None
            self.hits += 1
            # LRU refresh: move to the most-recent end of the dict
            self._entries[key] = self._entries.pop(key)
            return hit

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._entries:
                return      # a concurrent compiler won the race
            while len(self._entries) >= self.maxsize:
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
            self._entries[key] = value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses, "evictions": self.evictions,
                    "hit_rate": self.hit_rate}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: the one store every session in the process shares by default
GLOBAL_PLAN_STORE = PlanStore()

_active: PlanStore | None = GLOBAL_PLAN_STORE
_active_lock = threading.Lock()


def active_plan_store() -> PlanStore | None:
    """The store :func:`~repro.engine.schedule.schedule_for` consults
    (``None`` disables cross-session sharing)."""
    return _active


def set_active_plan_store(store: PlanStore | None) -> PlanStore | None:
    """Replace the active store; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = store
    return previous


@contextlib.contextmanager
def swapped_plan_store(store: PlanStore | None):
    """``with swapped_plan_store(PlanStore()):`` — scoped replacement,
    for tests that need isolated counters (or no sharing at all)."""
    previous = set_active_plan_store(store)
    try:
        yield store
    finally:
        set_active_plan_store(previous)


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def _dist_digest(dist) -> bytes:
    """blake2b digest of the distribution's dense primary owner map,
    memoized on the (immutable) distribution instance — dynamic
    directives build new distribution objects, never mutate old ones."""
    digest = getattr(dist, "_plan_digest", None)
    if digest is None:
        amap = dist.primary_owner_map()
        digest = hashlib.blake2b(amap.tobytes(),
                                 digest_size=16).digest()
        dist._plan_digest = digest
    return digest


def distribution_key(name: str, dtype, dist) -> tuple:
    """The content key of one array's layout (see the module doc)."""
    replicated = bool(dist.is_replicated)
    return (name, str(dtype), type(dist).__name__, dist.describe(),
            tuple((t.lower, t.last) for t in dist.domain.dims),
            _dist_digest(dist), replicated,
            dist.processors() if replicated else None)


def statement_content_key(ds, stmt, n_processors: int, strategy: str,
                          use_overlap: bool, routing: bool,
                          identity_sig) -> tuple:
    """The scope-independent content key of one compiled schedule."""
    names = sorted({stmt.lhs.name, *(r.name for r in stmt.rhs.refs())})
    return ("sched", stmt, n_processors, strategy, use_overlap, routing,
            identity_sig, ds.ap.size,
            tuple(distribution_key(name, ds.arrays[name].dtype,
                                   ds.distribution_of(name))
                  for name in names))
