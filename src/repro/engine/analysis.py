"""Static analysis over the program IR: `repro lint` without executing.

Everything this analyzer reasons about is *declared* — index domains,
distribution formats, alignment, DYNAMIC/ALLOCATABLE attributes, loop
trip counts — which is exactly the paper's argument for a directive
language: the compiler can verify a distributed program and predict its
communication before anything runs.  :func:`analyze` walks a
:class:`~repro.engine.ir.ProgramGraph` purely structurally and reports
:class:`~repro.engine.diagnostics.Diagnostic` findings:

* **name/storage hazards** — unknown arrays (RPR001), use after
  DEALLOCATE (RPR003), references to never-allocated allocatables
  (RPR004), double ALLOCATE / DEALLOCATE-of-unallocated (RPR008), and
  the loop-carried variant (RPR007: a body whose net allocation state
  changes re-runs into a guaranteed failure on trip 2);
* **section hazards** — subscripts or ranks outside the declared domain
  (RPR002) and non-conforming LHS/RHS section shapes (RPR005), the
  static halves of :class:`~repro.fortran.section.ArraySection` and
  :meth:`~repro.engine.assignment.Assignment.validate`;
* **def-use hazards** — reads of in-program allocations that nothing
  ever wrote (RPR010) and zero-trip loops (RPR011), computed once per
  static node, not once per trip;
* **layout hazards** — remaps of non-DYNAMIC arrays (RPR006), dead
  remaps whose layout epoch no statement ever uses (RPR012), and writes
  to replicated arrays, where every copy must be updated (RPR013);
* **perf lints** — statements whose compile-time lowering
  (:func:`~repro.engine.schedule.schedule_for` /
  :func:`~repro.engine.lowering.classify_matrix`) classifies as
  ALLTOALL (RPR020), remaps the transfer-matrix pricing calls dense
  (RPR021), and loop-invariant remaps the ``-O2`` hoist pass would
  lift but lower opt levels re-execute every trip (RPR022).

On top sits the **fusion-window race checker**: an independent
reimplementation of the SPMD window formation rule
(:func:`plan_windows`) plus a pairwise RAW/WAR conflict detector
(:func:`window_conflicts`), asserting the one concurrency-critical
planner in the system (:meth:`repro.engine.spmd.SpmdExecutor.execute_all`)
never groups conflicting statements under a single phase barrier.  WAW
pairs are legal there: workers apply a window's writes in statement
order, and the canonical download happens per statement in order.  The
checker runs standalone (:func:`check_fusion_windows`), inside
:func:`analyze`, and as a debug-mode assertion inside the SPMD executor
(``REPRO_DEBUG_WINDOWS=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.assignment import Assignment
from repro.engine.diagnostics import Diagnostic, DiagnosticError, Span
from repro.engine.expr import ArrayRef
from repro.engine.ir import (
    AllocateNode,
    DeallocateNode,
    LoopNode,
    Node,
    ProgramGraph,
    RealignNode,
    RedistributeNode,
    StatementNode,
)
from repro.engine.lowering import Pattern
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet

__all__ = [
    "analyze", "assert_window_race_free", "check_fusion_windows",
    "plan_windows", "replay_blockers", "window_conflicts",
]

#: wrap-around bound for liveness scans: two unrolled trips expose every
#: loop-carried next-use a further trip could (trip 3 repeats trip 2)
_LOOP_CLAMP = 2

#: dense-remap threshold: fraction of the domain a remap must move for
#: RPR021 (matches the ALLTOALL density intuition of the lowering model)
_DENSE_REMAP = 0.5


# ----------------------------------------------------------------------
# Per-array abstract state
# ----------------------------------------------------------------------
@dataclass
class _ArrayState:
    """What the analyzer knows about one array at a program point."""

    domain: IndexDomain | None
    allocatable: bool = False
    dynamic: bool = False
    #: a recorded DEALLOCATE killed the instance (RPR003 vs RPR004)
    deallocated: bool = False
    #: the live instance came from an in-graph ALLOCATE
    fresh: bool = False
    #: some statement wrote the array at or before this point
    written: bool = False
    #: the data space's layout for this array still matches the program
    #: point (no in-graph remap/ALLOCATE/DEALLOCATE has touched it), so
    #: compiled schedules and distributions read off ``ds`` are valid
    layout_current: bool = True


def _initial_state(ds: Any) -> dict[str, _ArrayState]:
    states: dict[str, _ArrayState] = {}
    for name, arr in getattr(ds, "arrays", {}).items():
        states[name] = _ArrayState(
            domain=arr.domain if arr.is_allocated else None,
            allocatable=bool(getattr(arr, "allocatable", False)),
            dynamic=bool(getattr(arr, "dynamic", False)))
    return states


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class _Analysis:
    def __init__(self, ds: Any, graph: ProgramGraph, *, opt_level: int,
                 lines: Mapping[int, int] | None, perf: bool) -> None:
        self.ds = ds
        self.graph = graph
        self.opt_level = int(opt_level)
        self.lines = lines or {}
        self.perf = perf
        self.states = _initial_state(ds)
        self.diagnostics: list[Diagnostic] = []
        #: one finding per (code, node id, array): a hazard inside a
        #: loop body is reported once, never once per trip
        self._seen: set[tuple[str, int, str]] = set()
        #: static pre-order statement index per node id (Session spans)
        self._index: dict[int, int] = {}
        counter = 0
        for node in _static_preorder(graph.nodes):
            self._index[id(node)] = counter
            counter += 1
        self._hoisted: set[int] = set()
        if self.perf:
            from repro.engine.passes import plan_hoists
            self._hoisted = plan_hoists(graph)
        self._loop_stack: list[LoopNode] = []

    # -- spans ---------------------------------------------------------
    def span_of(self, node: Node) -> Span:
        line = self.lines.get(id(node))
        return Span(line=line,
                    statement=(self._index.get(id(node))
                               if line is None else None),
                    label=str(node))

    def report(self, code: str, node: Node, message: str, *,
               array: str = "", words: int | None = None) -> None:
        key = (code, id(node), array)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(Diagnostic(
            code, message, span=self.span_of(node), array=array,
            words=words))

    # -- the walk ------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        self._visit_body(self.graph.nodes)
        self._check_dead_remaps()
        self.diagnostics.extend(check_fusion_windows(
            self.graph, span_of=self.span_of))
        return self.diagnostics

    def _visit_body(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            if isinstance(node, StatementNode):
                self._visit_statement(node)
            elif isinstance(node, (RedistributeNode, RealignNode)):
                self._visit_remap(node)
            elif isinstance(node, AllocateNode):
                self._visit_allocate(node)
            elif isinstance(node, DeallocateNode):
                self._visit_deallocate(node)
            elif isinstance(node, LoopNode):
                self._visit_loop(node)

    # -- storage events ------------------------------------------------
    def _visit_allocate(self, node: AllocateNode) -> None:
        state = self.states.get(node.array)
        if state is None:
            self.report("RPR001", node,
                        f"ALLOCATE of unknown array {node.array!r}",
                        array=node.array)
            return
        if not state.allocatable:
            self.report("RPR008", node,
                        f"ALLOCATE of {node.array!r}, which was not "
                        "declared ALLOCATABLE", array=node.array)
        if state.domain is not None:
            self.report("RPR008", node,
                        f"ALLOCATE of {node.array!r}, which is already "
                        "allocated at this point", array=node.array)
        from repro.core.dataspace import DataSpace
        try:
            domain = DataSpace._domain_from_bounds(node.bounds)
        except Exception:
            domain = None
        state.domain = domain
        state.deallocated = False
        state.fresh = True
        state.written = False
        state.layout_current = False

    def _visit_deallocate(self, node: DeallocateNode) -> None:
        state = self.states.get(node.array)
        if state is None:
            self.report("RPR001", node,
                        f"DEALLOCATE of unknown array {node.array!r}",
                        array=node.array)
            return
        if state.domain is None:
            self.report("RPR008", node,
                        f"DEALLOCATE of {node.array!r}, which is not "
                        "allocated at this point", array=node.array)
        state.domain = None
        state.deallocated = True
        state.layout_current = False

    # -- statements ----------------------------------------------------
    def _resolve_ref(self, node: Node, ref: ArrayRef,
                     *, reading: bool) -> tuple[int, ...] | None:
        """Name/storage/bounds checks of one reference; returns the
        section shape when the reference is resolvable."""
        state = self.states.get(ref.name)
        if state is None:
            self.report("RPR001", node,
                        f"reference to unknown array {ref.name!r}",
                        array=ref.name)
            return None
        if state.domain is None:
            if state.deallocated:
                self.report("RPR003", node,
                            f"{ref.name!r} is referenced after its "
                            "DEALLOCATE", array=ref.name)
            else:
                self.report("RPR004", node,
                            f"{ref.name!r} has no instance here: "
                            "ALLOCATE it before referencing it",
                            array=ref.name)
            return None
        if reading and state.fresh and not state.written:
            self.report("RPR010", node,
                        f"{ref.name!r} is read but nothing has written "
                        "it since its ALLOCATE", array=ref.name)
        domain = state.domain
        if ref.subscripts is None:
            return domain.shape
        if len(ref.subscripts) != domain.rank:
            self.report("RPR002", node,
                        f"{ref} has {len(ref.subscripts)} subscripts "
                        f"for the rank-{domain.rank} domain {domain}",
                        array=ref.name)
            return None
        shape: list[int] = []
        ok = True
        for k, (sub, dim) in enumerate(zip(ref.subscripts, domain.dims)):
            if isinstance(sub, Triplet):
                if not sub.is_empty and not (sub.first in dim
                                             and sub.last in dim):
                    self.report(
                        "RPR002", node,
                        f"{ref}: triplet subscript {sub} leaves "
                        f"dimension {k + 1} of the declared domain "
                        f"{domain}", array=ref.name)
                    ok = False
                shape.append(len(sub))
            else:
                if int(sub) not in dim:
                    self.report(
                        "RPR002", node,
                        f"{ref}: scalar subscript {int(sub)} is outside "
                        f"dimension {k + 1} of the declared domain "
                        f"{domain}", array=ref.name)
                    ok = False
        return tuple(shape) if ok else None

    def _visit_statement(self, node: StatementNode) -> None:
        stmt = node.stmt
        lhs_shape = self._resolve_ref(node, stmt.lhs, reading=False)
        rhs_shapes: list[tuple[int, ...] | None] = []
        resolvable = lhs_shape is not None
        for ref in stmt.rhs.refs():
            shape = self._resolve_ref(node, ref, reading=True)
            rhs_shapes.append(shape)
            resolvable = resolvable and shape is not None
        if resolvable and lhs_shape is not None:
            for ref, shape in zip(stmt.rhs.refs(), rhs_shapes):
                # rank-0 references are scalars and conform to anything
                if shape not in ((), None, lhs_shape):
                    self.report(
                        "RPR005", node,
                        f"RHS section {ref} has shape {shape}, which "
                        f"does not conform to the LHS shape {lhs_shape}",
                        array=ref.name)
        lhs_state = self.states.get(stmt.lhs.name)
        if lhs_state is not None and lhs_state.domain is not None:
            self._check_replicated_write(node, stmt, lhs_state)
            lhs_state.written = True
        if resolvable:
            self._perf_lint_statement(node, stmt)

    def _check_replicated_write(self, node: StatementNode,
                                stmt: Assignment,
                                state: _ArrayState) -> None:
        if not state.layout_current:
            return
        try:
            dist = self.ds.distribution_of(stmt.lhs.name)
        except Exception:
            return
        if getattr(dist, "is_replicated", False):
            self.report(
                "RPR013", node,
                f"{stmt.lhs.name!r} is replicated: every copy must be "
                "updated on each write, so the assignment broadcasts",
                array=stmt.lhs.name)

    def _perf_lint_statement(self, node: StatementNode,
                             stmt: Assignment) -> None:
        if not self.perf:
            return
        names = {stmt.lhs.name, *(r.name for r in stmt.rhs.refs())}
        if any(not self.states[n].layout_current for n in names
               if n in self.states):
            return      # an in-graph layout event outdated ds's mapping
        try:
            from repro.engine.schedule import schedule_for
            sched = schedule_for(self.ds, stmt, self.ds.ap.size)
        except Exception:
            return      # not compilable against the live scope: no lint
        flagged: set[str] = set()
        for ref in sched.refs:
            if ref.lowering.pattern is Pattern.ALLTOALL \
                    and ref.ref not in flagged:
                flagged.add(ref.ref)
                words = int(ref.words.sum())
                self.report(
                    "RPR020", node,
                    f"{ref.ref} lowers to an ALLTOALL exchange moving "
                    f"{words} words per execution under the declared "
                    "mappings", array=ref.source or ref.ref,
                    words=words)

    # -- remaps --------------------------------------------------------
    def _visit_remap(self, node: RedistributeNode | RealignNode) -> None:
        if isinstance(node, RedistributeNode):
            names = [node.array]
            what = f"REDISTRIBUTE {node.array}"
        else:
            names = [node.spec.alignee]
            what = f"REALIGN {node.spec.alignee}"
            base = self.states.get(node.spec.base)
            if base is None:
                self.report("RPR001", node,
                            f"{what}: unknown base array "
                            f"{node.spec.base!r}", array=node.spec.base)
        for name in names:
            state = self.states.get(name)
            if state is None:
                self.report("RPR001", node,
                            f"{what}: unknown array {name!r}",
                            array=name)
                continue
            if not state.dynamic:
                self.report("RPR006", node,
                            f"{what}: the array was not declared "
                            "DYNAMIC", array=name)
            if state.domain is None:
                code = "RPR003" if state.deallocated else "RPR004"
                self.report(code, node,
                            f"{what}: the array has no instance at "
                            "this point", array=name)
            else:
                self._perf_lint_remap(node, name, state)
            state.layout_current = False

    def _perf_lint_remap(self, node: RedistributeNode | RealignNode,
                         name: str, state: _ArrayState) -> None:
        if not self.perf:
            return
        loop = self._loop_stack[-1] if self._loop_stack else None
        if id(node) in self._hoisted and loop is not None \
                and loop.count >= 2 and self.opt_level < 2:
            self.report(
                "RPR022", node,
                f"loop-invariant remap of {name!r} re-executes on all "
                f"{loop.count} trips; -O2 hoists it to the first trip",
                array=name)
        if not isinstance(node, RedistributeNode) \
                or not state.layout_current:
            return
        try:
            from repro.core.dataspace import RemapEvent
            from repro.distributions.distribution import FormatDistribution
            from repro.engine.redistribute import price_remap
            old = self.ds.distribution_of(name)
            formats = tuple(node.formats)
            consuming = sum(f.consumes_target_dim for f in formats)
            target = self.ds.resolve_target(node.to, max(consuming, 1))
            new = FormatDistribution(old.domain, formats, target,
                                     self.ds.ap)
            event = RemapEvent(name, old, new, "LINT")
            _, moved = price_remap(event, self.ds.ap.size)
        except Exception:
            return
        size = max(old.domain.size, 1)
        if moved >= _DENSE_REMAP * size:
            self.report(
                "RPR021", node,
                f"REDISTRIBUTE {name} is a dense remap: {moved} of "
                f"{size} elements change owners under the declared "
                "mappings", array=name, words=moved)

    # -- loops ---------------------------------------------------------
    def _visit_loop(self, node: LoopNode) -> None:
        if node.count == 0:
            self.report("RPR011", node,
                        "zero-trip loop: the body never executes")
            # hazards in dead code still get reported, but its state
            # changes must not leak into the live program
            saved = {n: replace(s) for n, s in self.states.items()}
            self._loop_stack.append(node)
            self._visit_body(node.body)
            self._loop_stack.pop()
            self.states = saved
            return
        before_alloc = {n: s.domain is not None
                        for n, s in self.states.items()}
        self._loop_stack.append(node)
        self._visit_body(node.body)      # trip-0 semantics, once
        self._loop_stack.pop()
        if node.count >= 2:
            for name, was in before_alloc.items():
                now = self.states[name].domain is not None
                if was == now:
                    continue
                flipped = "ALLOCATEs" if now else "DEALLOCATEs"
                other = "DEALLOCATE" if now else "ALLOCATE"
                self.report(
                    "RPR007", node,
                    f"loop body {flipped} {name!r} without a matching "
                    f"{other}: trip 2 of {node.count} re-runs the body "
                    "against the flipped allocation state",
                    array=name)
        self._perf_lint_loop(node)

    def _perf_lint_loop(self, node: LoopNode) -> None:
        """RPR023: the declared cost profiles prove this loop's layout
        leaves processors idle and a priced GENERAL_BLOCK re-partition
        would pay for itself — the same advisor ``opt="auto"`` acts on."""
        if not self.perf or node.count < 2:
            return
        if not getattr(self.ds, "cost_profiles", None):
            return
        try:
            from repro.autotune.advisor import propose_for_loop
            from repro.machine.config import MachineConfig
            proposals = propose_for_loop(
                self.ds, MachineConfig(self.ds.ap.size), node)
        except Exception:
            return
        for prop in proposals:
            if not prop.worthwhile:
                continue
            state = self.states.get(prop.array)
            if state is None or not state.layout_current:
                continue
            self.report(
                "RPR023", node,
                f"load imbalance: {prop.array!r} runs this loop at "
                f"{prop.imbalance_before:.2f}x the mean processor work "
                f"under its declared cost profile; a balanced "
                f"GENERAL_BLOCK re-partition models {prop.modeled_gain:.0f} "
                f"gain over the remaining trips vs {prop.modeled_cost:.0f} "
                "remap cost (opt='auto' adapts this automatically)",
                array=prop.array, words=prop.moved_words)

    # -- dead remaps (dynamic-instance scan, reported per node) --------
    def _check_dead_remaps(self) -> None:
        instances = list(_walk_clamped(self.graph.nodes))
        live: set[int] = set()
        remaps: dict[int, tuple[Node, str]] = {}
        for i, node in enumerate(instances):
            for name in _remapped_arrays(node):
                remaps.setdefault(id(node), (node, name))
                if id(node) in live:
                    continue
                for later in instances[i + 1:]:
                    if isinstance(later, StatementNode):
                        if name in later.reads() | later.writes():
                            live.add(id(node))
                            break
                    elif name in later.layout_of():
                        break   # a later event closes the epoch unread
                else:
                    # the layout survives the program: the scope keeps
                    # it for owners() queries and later run() segments
                    live.add(id(node))
        for node, name in remaps.values():
            if id(node) in live:
                continue
            state = self.states.get(name)
            if state is None or not state.dynamic:
                continue    # already an error; no warning on top
            self.report(
                "RPR012", node,
                f"dead remap: no statement reads or writes {name!r} "
                "before the next layout event replaces the mapping",
                array=name)


def _remapped_arrays(node: Node) -> tuple[str, ...]:
    if isinstance(node, RedistributeNode):
        return (node.array,)
    if isinstance(node, RealignNode):
        return (node.spec.alignee,)
    return ()


def _static_preorder(nodes: Sequence[Node]) -> Iterator[Node]:
    for node in nodes:
        yield node
        if isinstance(node, LoopNode):
            yield from _static_preorder(node.body)


def _walk_clamped(nodes: Sequence[Node],
                  clamp: int = _LOOP_CLAMP) -> Iterator[Node]:
    """Execution order with loop trips clamped to ``clamp``: enough
    unrolling to expose every wrap-around next-use without paying for
    full trip counts."""
    for node in nodes:
        if isinstance(node, LoopNode):
            for _ in range(min(node.count, clamp)):
                yield from _walk_clamped(node.body, clamp)
        else:
            yield node


def analyze(ds: Any, graph: ProgramGraph, *, opt_level: int = 0,
            lines: Mapping[int, int] | None = None,
            perf: bool = True) -> list[Diagnostic]:
    """Statically analyze ``graph`` against the scope ``ds``.

    Nothing executes and the scope is never mutated.  ``lines`` is the
    directive front end's ``id(node) -> source line`` map; without it,
    findings carry statement indices.  ``perf=False`` skips the lints
    that compile schedules or price remaps — the cheap mode the serving
    stack uses to gate programs on error severity only.
    """
    analysis = _Analysis(ds, graph, opt_level=opt_level, lines=lines,
                         perf=perf)
    return analysis.run()


# ----------------------------------------------------------------------
# Replay legality (the SPMD worker-resident loop path)
# ----------------------------------------------------------------------
def replay_blockers(loop: LoopNode) -> list[str]:
    """Why ``loop`` may NOT be compiled into a worker-resident replay
    program — an independent restatement of the trip-invariance
    certificate (:meth:`~repro.engine.ir.LoopNode.is_trip_invariant`)
    that *names* each blocking node, the way the other lint walkers do.

    An empty list means every trip sees the same layouts and storage
    instances: every schedule compiled on trip 0 is valid verbatim for
    trips 1..N-1, so workers may run the whole loop ahead of the
    coordinator's per-trip accounting.  A non-empty list is the reason
    the runner falls back to per-window dispatch.
    """
    blockers: list[str] = []
    if loop.count <= 0:
        blockers.append("zero-trip loop (nothing to replay)")
    for node in _static_preorder(loop.body):
        if isinstance(node, (RedistributeNode, RealignNode)):
            blockers.append(
                f"mid-loop remap breaks trip invariance: {node}")
        elif isinstance(node, AllocateNode):
            blockers.append(
                f"mid-loop allocation flips storage: {node}")
        elif isinstance(node, DeallocateNode):
            blockers.append(
                f"mid-loop deallocation flips storage: {node}")
    return blockers


# ----------------------------------------------------------------------
# The fusion-window race checker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowConflict:
    """One RAW/WAR pair inside a fusion window (``i`` before ``j``)."""

    kind: str                   #: 'RAW' or 'WAR'
    i: int
    j: int
    arrays: frozenset[str] = field(default_factory=frozenset)


def window_conflicts(window: Sequence[Assignment]) -> list[WindowConflict]:
    """Pairwise RAW/WAR conflicts between *distinct* statements of one
    fusion window.

    The legality contract of the fused SPMD path: a window executes
    under a single phase barrier, with every statement's reads gathered
    from pre-window state — so a later statement must not read an
    earlier one's write (RAW), and an earlier statement's reads must
    not be of an array a later statement overwrites (WAR).  WAW pairs
    are legal (writes apply in statement order on every worker and the
    canonical download is per statement, in order), and a statement's
    own LHS-in-RHS overlap stays within the statement: the barrier
    orders its reads before its writes.
    """
    out: list[WindowConflict] = []
    for i, earlier in enumerate(window):
        e_reads = {r.name for r in earlier.rhs.refs()}
        for j in range(i + 1, len(window)):
            later = window[j]
            l_reads = {r.name for r in later.rhs.refs()}
            raw = {earlier.lhs.name} & l_reads
            if raw:
                out.append(WindowConflict("RAW", i, j, frozenset(raw)))
            war = e_reads & {later.lhs.name}
            if war:
                out.append(WindowConflict("WAR", i, j, frozenset(war)))
    return out


def plan_windows(stmts: Sequence[Assignment]) -> list[list[Assignment]]:
    """Independent recomputation of the fused SPMD window formation.

    Grows each window greedily with the *pairwise* legality test of
    :func:`window_conflicts` — a statement joins the open window iff
    appending it introduces no RAW/WAR conflict with any statement
    already in it.  :meth:`~repro.engine.spmd.SpmdExecutor.execute_all`
    derives the same partition from running read/write sets; the
    differential property test (and the ``REPRO_DEBUG_WINDOWS``
    assertion) hold the two implementations to each other.
    """
    windows: list[list[Assignment]] = []
    window: list[Assignment] = []
    for stmt in stmts:
        if window and window_conflicts([*window, stmt]):
            windows.append(window)
            window = []
        window.append(stmt)
    if window:
        windows.append(window)
    return windows


def _conflict_message(window: Sequence[Assignment],
                      conflict: WindowConflict) -> str:
    arrays = ", ".join(sorted(conflict.arrays))
    return (f"fusion window groups racing statements: "
            f"{conflict.kind} conflict on {arrays} between "
            f"'{window[conflict.i]}' and '{window[conflict.j]}' under "
            "one phase barrier")


def assert_window_race_free(window: Sequence[Assignment]) -> None:
    """Raise :class:`DiagnosticError` (RPR009) if ``window`` pairs
    conflicting statements — the debug-mode assertion the SPMD executor
    runs per formed window when ``REPRO_DEBUG_WINDOWS`` is set."""
    conflicts = window_conflicts(window)
    if conflicts:
        raise DiagnosticError([
            Diagnostic("RPR009", _conflict_message(window, c),
                       span=Span(label=str(window[c.j])),
                       array=min(c.arrays))
            for c in conflicts])


def check_fusion_windows(graph: ProgramGraph,
                         span_of: Any = None) -> list[Diagnostic]:
    """The standalone window race check over a whole program: re-derive
    the fusion windows of every maximal consecutive statement run (the
    sequences the fused backend receives) and verify each is conflict
    free.  A sound window builder makes this an empty list — a finding
    here is an internal invariant violation, not a user error."""
    out: list[Diagnostic] = []
    run: list[tuple[Node, Assignment]] = []

    def flush() -> None:
        if not run:
            return
        stmts = [s for _, s in run]
        for w_start, window in _window_offsets(plan_windows(stmts)):
            for c in window_conflicts(window):
                node = run[w_start + c.j][0]
                span = span_of(node) if span_of is not None \
                    else Span(label=str(node))
                out.append(Diagnostic(
                    "RPR009", _conflict_message(window, c),
                    span=span, array=min(c.arrays)))
        run.clear()

    for node in _walk_clamped(graph.nodes):
        if isinstance(node, StatementNode):
            run.append((node, node.stmt))
        else:
            flush()
    flush()
    return out


def _window_offsets(windows: list[list[Assignment]]
                    ) -> Iterator[tuple[int, list[Assignment]]]:
    start = 0
    for window in windows:
        yield start, window
        start += len(window)
