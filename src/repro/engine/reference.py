"""Sequential reference execution (ground truth).

Array statements are executed with plain NumPy over the arrays' global
canonical storage — the sequential semantics every distributed execution
must reproduce.  The simulated executor runs this first (so numeric state
advances identically) and the test suite cross-checks distributed comm
accounting against independent oracles.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.expr import section_slicer

__all__ = ["execute_sequential"]


def execute_sequential(ds: DataSpace, stmt: Assignment) -> np.ndarray:
    """Execute ``stmt`` with sequential semantics; returns the values
    written (a copy, shaped like the LHS section)."""
    stmt.validate(ds)
    value = stmt.rhs.eval_global(ds)
    lhs_arr = ds.arrays[stmt.lhs.name]
    slicer = section_slicer(stmt.lhs.section(ds))
    # RHS is fully evaluated before assignment (Fortran array semantics:
    # no interference even when LHS overlaps RHS operands).
    result = np.array(np.broadcast_to(
        value, stmt.lhs.shape(ds)), copy=True)
    lhs_arr.data[slicer] = result
    return result
