"""Data-movement pricing for dynamic remapping.

REDISTRIBUTE, REALIGN and procedure-boundary remaps (§4.2, §5.2, §7) move
every element whose owner set changes.  :func:`price_remap` computes the
exact (P, P) transfer matrix for a :class:`~repro.core.dataspace.RemapEvent`:

* non-replicated old/new mappings: one dense owner-map comparison
  (vectorized);
* replication involved: per element, each *new* owner missing the element
  receives one copy from the smallest old owner.

:func:`charge_remap` classifies the resulting matrix
(:mod:`repro.engine.lowering`) before depositing it: a replication remap
(the §5.1 ``*`` base subscript, a REPLICATED format) is priced as
broadcast/allgather trees, a dense remap (BLOCK -> CYCLIC, §4.2) as an
alltoall — instead of the per-element point-to-point fan-out — while the
transfer matrix itself stays bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataspace import RemapEvent
from repro.engine.lowering import Lowering, classify_matrix
from repro.errors import MachineError
from repro.machine.message import Message
from repro.machine.metrics import CommStats
from repro.machine.simulator import DistributedMachine

__all__ = ["price_remap", "charge_remap", "remap_lowering"]

_REPLICATED_LIMIT = 1_000_000


def price_remap(event: RemapEvent,
                n_processors: int) -> tuple[np.ndarray, int]:
    """Exact transfer matrix and moved-element count for a remap event.

    A fresh mapping (``event.old is None`` — e.g. first distribution at
    ALLOCATE) moves nothing.
    """
    p = n_processors
    matrix = np.zeros((p, p), dtype=np.int64)
    if event.old is None:
        return matrix, 0
    old, new = event.old, event.new
    if old.domain != new.domain:
        raise MachineError(
            f"remap of {event.array!r} changes the index domain "
            f"({old.domain} -> {new.domain})")
    if not old.is_replicated and not new.is_replicated:
        om = old.primary_owner_map().reshape(-1, order="F")
        nm = new.primary_owner_map().reshape(-1, order="F")
        mask = om != nm
        moved = int(mask.sum())
        pairs = om[mask] * p + nm[mask]
        matrix += np.bincount(pairs, minlength=p * p).reshape(p, p)
        return matrix, moved
    if old.domain.size > _REPLICATED_LIMIT:
        raise MachineError(
            f"replicated remap pricing refused for {old.domain.size} "
            "elements")
    moved = 0
    for idx in old.domain:
        old_owners = old.owners(idx)
        src = min(old_owners)
        for dst in new.owners(idx):
            if dst not in old_owners:
                matrix[src, dst] += 1
                moved += 1
    return matrix, moved


def remap_lowering(event: RemapEvent, matrix: np.ndarray) -> Lowering:
    """The pattern classification :func:`charge_remap` prices ``event``
    with — the single place the remap's replication hint is derived, so
    reports quoting a remap's pattern cannot drift from what is charged."""
    replicated = event.new.is_replicated or (
        event.old is not None and event.old.is_replicated)
    return classify_matrix(matrix, replicated=replicated)


def charge_remap(machine: DistributedMachine, event: RemapEvent
                 ) -> tuple[np.ndarray, int]:
    """Price a remap and charge it to the machine ledger.

    The transfer matrix is deposited unchanged; elapsed time routes
    through the matrix's pattern classification, so replication remaps
    are charged as broadcast/allgather trees and dense remaps as
    alltoall exchanges rather than serialized point-to-point fan-out.
    """
    matrix, moved = price_remap(event, machine.config.n_processors)
    machine.charge_collective(matrix, remap_lowering(event, matrix),
                              tag=f"remap:{event.array}:{event.reason}")
    return matrix, moved


def price_remap_collective(event: RemapEvent, config) -> tuple[float, int]:
    """Alternative pricing of a remap as tree collectives.

    Replication remaps (an element gaining many owners, e.g. a REALIGN
    onto a ``*`` base subscript) are better implemented as broadcasts
    than as point-to-point fan-out; this prices each element's fan-out
    as a binomial-tree broadcast among its new owners and returns
    ``(time_estimate, total_words)``.  Non-replicating remaps fall back
    to the point-to-point matrix under the same cost model.
    """
    from repro.machine import collectives
    p = config.n_processors
    if event.old is None:
        return 0.0, 0
    new = event.new
    if not new.is_replicated:
        matrix, _ = price_remap(event, p)
        time = 0.0
        for s, d in zip(*np.nonzero(matrix)):
            time += config.message_cost(int(s), int(d),
                                        int(matrix[s, d]))
        return time, int(matrix.sum())
    if new.domain.size > _REPLICATED_LIMIT:
        raise MachineError(
            f"collective remap pricing refused for {new.domain.size} "
            "elements")
    # group elements by fan-out size; one broadcast tree per element
    # batch of identical fan-out (elements broadcast together amortize
    # the alpha across the batch's words)
    fanout_words: dict[int, int] = {}
    for idx in new.domain:
        gained = len(new.owners(idx) - event.old.owners(idx))
        if gained > 0:
            fanout_words[gained + 1] = fanout_words.get(gained + 1,
                                                        0) + 1
    time = 0.0
    words = 0
    for participants, batch_words in fanout_words.items():
        t, w = collectives.broadcast(config, batch_words, participants)
        time += t
        words += w
    return time, words


def total_remap_stats(events, n_processors: int) -> CommStats:
    """Aggregate CommStats over a sequence of remap events."""
    stats = CommStats(n_processors)
    for event in events:
        matrix, _ = price_remap(event, n_processors)
        src, dst = np.nonzero(matrix)
        for s, d in zip(src.tolist(), dst.tolist()):
            stats.record_message(Message(s, d, int(matrix[s, d]),
                                         event.reason))
    return stats
