"""Shared-memory SPMD execution backend: real workers, compiled schedules.

Every other executor in this repo *models* the node program; this one
runs it.  Each abstract processor of the machine (or a contiguous group
of them, when ``n_workers`` is smaller than the machine) becomes a real
worker executing the *already-compiled* routing schedules of
:mod:`repro.engine.schedule`:

* the worker's iteration set is read off the schedule's flattened LHS
  owner map (owner-computes, exactly the simulator's partition);
* operand gathers are the schedule's precompiled ``(src, dst,
  positions)`` chunks, executed as one fancy-index per message against
  the shared array storage — the PGAS one-sided get, in the spirit of
  DASH (Idrees et al., arXiv:1603.01536);
* a barrier separates the gather phase from the owner-computes
  write-back (Fortran array semantics: the RHS is fully read before the
  LHS is written, even when they overlap), and a second barrier ends
  the statement.

Two worker substrates sit behind one task protocol:

* ``process`` — forked OS processes over anonymous shared-memory
  ``mmap`` buffers mirroring every array (created before the fork, so
  the mapping is inherited and writable by all workers);
* ``thread`` — a thread pool reading the canonical NumPy arrays
  directly (always available; the fallback when ``fork`` is not).

The simulator stays the cost oracle: accounting is charged through the
same counting schedules and :func:`~repro.engine.executor.charge_schedule`
path as :class:`~repro.engine.executor.SimulatedExecutor`, so the
reported words matrices, ledger, pattern attribution and modeled time
are bit-identical to the simulated run, while the numeric results are
produced exclusively by the parallel workers and proven equal to the
sequential reference by the three-way differential harness.

Compiled task descriptors are memoized per (layout epoch, schedule) and
shipped to each worker once; steady-state statements (Jacobi iterations
2..N) send only a small task key.
"""

from __future__ import annotations

import mmap
import multiprocessing
import queue
import sys
import threading
import traceback
from dataclasses import dataclass

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.executor import ExecutionReport, charge_schedule
from repro.engine.expr import ArrayRef, BinExpr, Expr, ScalarLit, \
    section_slicer
from repro.engine.schedule import schedule_for, unique_refs
from repro.errors import MachineError
from repro.machine.simulator import DistributedMachine

__all__ = ["SpmdExecutor", "WorkerTask", "RefGather"]

#: seconds a worker waits at a phase barrier before declaring the
#: statement wedged (a crashed peer) and aborting the barrier
_BARRIER_TIMEOUT = 120.0
#: compiled task splits retained per executor (LRU): splits hold
#: O(iteration size) position arrays in the master *and* every worker,
#: so a session sweeping many distinct statements evicts its oldest
#: splits (mirroring the ScheduleCache bound they are derived from)
_TASK_CACHE_MAX = 64
#: seconds the master polls a worker pipe before checking liveness
_POLL_INTERVAL = 1.0


# ----------------------------------------------------------------------
# Task protocol (what the master ships, what a worker executes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefGather:
    """One RHS leaf's gather recipe for one worker: the section slicer
    into the shared array plus ``(positions, slots)`` pairs — the
    schedule's local split and the incoming route chunks, with the
    precomputed slots into the worker's owned-iteration vector."""

    name: str
    slicer: tuple
    parts: tuple[tuple[np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class WorkerTask:
    """Everything one worker needs to execute one statement."""

    serial: int
    shape: tuple[int, ...]
    lhs_name: str
    lhs_slicer: tuple
    lhs_dtype: np.dtype
    #: iteration positions this worker's units own (sorted)
    my_pos: np.ndarray
    #: one gather recipe per unique RHS leaf, in first-occurrence order
    refs: tuple[RefGather, ...]
    rhs: Expr


def _eval_vec(expr: Expr, operands: dict[int, np.ndarray]):
    """Evaluate the RHS over the worker's gathered operand vectors —
    elementwise IEEE ops, so a subset evaluation is bit-identical to the
    same elements of the sequential whole-array evaluation."""
    if isinstance(expr, ScalarLit):
        return expr.value
    if isinstance(expr, ArrayRef):
        return operands[id(expr)]
    if isinstance(expr, BinExpr):
        a = _eval_vec(expr.left, operands)
        b = _eval_vec(expr.right, operands)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    raise MachineError(f"cannot evaluate {expr!r}")


def _run_task(task: WorkerTask, arrays: dict[str, np.ndarray], barrier
              ) -> None:
    """One worker's share of one statement: gather, barrier, write,
    barrier."""
    operands: dict[int, np.ndarray] = {}
    for ref, rg in zip(unique_refs(task.rhs), task.refs):
        view = arrays[rg.name][rg.slicer]
        vec = np.empty(task.my_pos.size, dtype=np.asarray(view).dtype)
        for positions, slots in rg.parts:
            vec[slots] = view[np.unravel_index(positions, task.shape,
                                               order="F")]
        operands[id(ref)] = vec
    result = _eval_vec(task.rhs, operands)
    result = np.broadcast_to(result, (task.my_pos.size,)).astype(
        task.lhs_dtype)
    barrier.wait(_BARRIER_TIMEOUT)   # every operand read before any write
    if task.my_pos.size:
        view = arrays[task.lhs_name][task.lhs_slicer]
        view[np.unravel_index(task.my_pos, task.shape,
                              order="F")] = result
    barrier.wait(_BARRIER_TIMEOUT)   # statement complete


def _worker_loop(endpoint, barrier, arrays: dict[str, np.ndarray]) -> None:
    """A worker's service loop: cached task table + the two-phase
    statement protocol.  Runs as a forked process or a thread."""
    tasks: dict[int, WorkerTask] = {}
    while True:
        msg = endpoint.recv()
        if msg[0] == "stop":
            return
        if msg[0] == "drop":
            # master evicted/invalidated this task split; no ack (pipes
            # are FIFO, so later exec messages order after the drop)
            tasks.pop(msg[1], None)
            continue
        _, serial, task = msg
        if task is not None:
            tasks[serial] = task
        try:
            cached = tasks.get(serial)
            if cached is None:
                raise MachineError(f"worker has no cached task {serial}")
            _run_task(cached, arrays, barrier)
            endpoint.send(("ok", serial))
        except Exception:
            # break peers out of the barrier so the statement fails fast
            try:
                barrier.abort()
            except Exception:
                pass
            endpoint.send(("err", traceback.format_exc()))


def _process_worker_main(conn, barrier, meta) -> None:
    """Entry point of a forked worker: map the inherited shared buffers
    back into Fortran-ordered arrays and serve tasks."""
    arrays = {
        name: np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape,
                            dtype=np.int64))).reshape(shape, order="F")
        for name, (buf, dtype, shape) in meta.items()}
    _worker_loop(_PipeEndpoint(conn), barrier, arrays)


# ----------------------------------------------------------------------
# Channels (one send/recv protocol over pipes or queues)
# ----------------------------------------------------------------------
class _PipeEndpoint:
    """A worker's end of a multiprocessing pipe."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def recv(self):
        return self._conn.recv()

    def send(self, msg) -> None:
        self._conn.send(msg)


class _QueueEndpoint:
    """One end of a thread-mode channel (a pair of queues)."""

    def __init__(self, inbox: queue.Queue, outbox: queue.Queue) -> None:
        self._inbox = inbox
        self._outbox = outbox

    def recv(self):
        return self._inbox.get()

    def send(self, msg) -> None:
        self._outbox.put(msg)


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------
def _pick_mode(mode: str) -> str:
    if mode not in ("auto", "process", "thread"):
        raise MachineError(f"unknown SPMD mode {mode!r}; use "
                           "'process', 'thread' or 'auto'")
    if mode != "auto":
        return mode
    if sys.platform.startswith("linux") and \
            "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


class _WorkerPool:
    """N persistent workers over shared array storage.

    ``process`` mode mirrors every created array into an anonymous
    shared ``mmap`` buffer *before* forking, so parent and children
    address the same pages; ``thread`` mode shares the canonical arrays
    natively.
    """

    def __init__(self, ds: DataSpace, n_workers: int, mode: str) -> None:
        self.n_workers = n_workers
        self.mode = _pick_mode(mode)
        self.broken: str | None = None
        self._mmaps: list[mmap.mmap] = []
        self.shared: dict[str, np.ndarray] = {}
        self._instances: dict[str, int] = {}
        self._procs: list = []
        self._endpoints: list = []
        if self.mode == "process":
            self._start_processes(ds)
        else:
            self._start_threads(ds)

    # -- startup -------------------------------------------------------
    def _start_processes(self, ds: DataSpace) -> None:
        ctx = multiprocessing.get_context("fork")
        self.barrier = ctx.Barrier(self.n_workers)
        meta = {}
        for name in ds.created_arrays():
            data = ds.arrays[name].data
            mm = mmap.mmap(-1, max(data.nbytes, 1))
            shared = np.frombuffer(mm, dtype=data.dtype,
                                   count=data.size).reshape(
                                       data.shape, order="F")
            shared[...] = data          # upload the canonical values
            self._mmaps.append(mm)
            self.shared[name] = shared
            self._instances[name] = ds.arrays[name].instance
            meta[name] = (mm, data.dtype, data.shape)
        for _ in range(self.n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_process_worker_main,
                               args=(child, self.barrier, meta),
                               daemon=True)
            proc.start()
            child.close()
            self._endpoints.append(_PipeEndpoint(parent))
            self._procs.append(proc)

    def _start_threads(self, ds: DataSpace) -> None:
        self.barrier = threading.Barrier(self.n_workers)
        # threads address the canonical storage directly; the dict is
        # refreshed by the master before each statement
        self.shared = {name: ds.arrays[name].data
                       for name in ds.created_arrays()}
        self._channels = []
        for _ in range(self.n_workers):
            inbox: queue.Queue = queue.Queue()
            outbox: queue.Queue = queue.Queue()
            worker_end = _QueueEndpoint(inbox, outbox)
            master_end = _QueueEndpoint(outbox, inbox)
            thread = threading.Thread(
                target=_worker_loop,
                args=(worker_end, self.barrier, self.shared), daemon=True)
            thread.start()
            self._endpoints.append(master_end)
            self._procs.append(thread)

    # -- master-side array coherence -----------------------------------
    def covers(self, ds: DataSpace, names) -> bool:
        """True iff every named array is addressable by the current
        workers (process mode forks over a fixed array set; an array
        created or re-allocated since then needs a pool restart)."""
        if self.mode == "thread":
            return True
        return all(
            name in self.shared
            and self._instances[name] == ds.arrays[name].instance
            for name in names)

    def bind_array(self, ds: DataSpace, name: str) -> None:
        """Make ``name`` addressable by the workers, verifying the
        instance seen at session start is still current."""
        arr = ds.arrays[name]
        if self.mode == "thread":
            self.shared[name] = arr.data
            self._instances[name] = arr.instance
            return
        if name not in self.shared:
            raise MachineError(
                f"array {name!r} was created after the SPMD session "
                "started; process-mode workers cannot map it — close() "
                "the executor and execute again to re-fork over the "
                "current arrays")
        if self._instances[name] != arr.instance:
            raise MachineError(
                f"array {name!r} was re-allocated after the SPMD session "
                "started; close() the executor and execute again")

    def upload(self, ds: DataSpace, name: str) -> None:
        """Copy the canonical values of ``name`` into the shared mirror
        (process mode; a no-op for threads)."""
        self.bind_array(ds, name)
        if self.mode == "process":
            self.shared[name][...] = ds.arrays[name].data

    def download(self, ds: DataSpace, name: str, slicer: tuple) -> None:
        """Copy a written section back into the canonical array."""
        if self.mode == "process":
            ds.arrays[name].data[slicer] = self.shared[name][slicer]

    # -- statement execution -------------------------------------------
    def drop_task(self, serial: int) -> None:
        """Tell every worker to forget one cached task split (sent when
        the master evicts or invalidates it, so worker memory tracks the
        master's bounded table)."""
        if self.broken:
            return
        for endpoint in self._endpoints:
            try:
                endpoint.send(("drop", serial))
            except Exception:
                pass

    def run_statement(self, serial: int,
                      tasks: list[WorkerTask] | None) -> None:
        """Dispatch one statement to every worker and await the acks.
        ``tasks`` is shipped on the first use of a schedule; later
        executions send only the serial (workers replay their cache)."""
        if self.broken:
            raise MachineError(
                f"SPMD worker pool is broken ({self.broken}); close() "
                "and execute again to restart it")
        try:
            for w, endpoint in enumerate(self._endpoints):
                endpoint.send(("exec", serial,
                               tasks[w] if tasks is not None else None))
        except Exception as exc:
            self.broken = "dispatch failed"
            raise MachineError(
                f"SPMD dispatch failed (worker pipe: {exc!r}); close() "
                "and execute again to restart the pool") from exc
        failures = []
        for w, endpoint in enumerate(self._endpoints):
            while True:
                status, detail = self._recv(w, endpoint)
                if status == "ok" and detail != serial:
                    # stale ack from an abandoned earlier statement
                    continue
                break
            if status != "ok":
                failures.append(f"worker {w}: {detail}")
        if failures:
            self.broken = "worker error"
            raise MachineError(
                "SPMD statement failed:\n" + "\n".join(failures))

    def _recv(self, w: int, endpoint):
        if self.mode == "thread":
            return endpoint.recv()
        waited = 0.0
        conn = endpoint._conn
        while not conn.poll(_POLL_INTERVAL):
            waited += _POLL_INTERVAL
            if not self._procs[w].is_alive():
                self.broken = f"worker {w} died"
                raise MachineError(f"SPMD worker {w} died mid-statement")
            if waited > _BARRIER_TIMEOUT + 10.0:
                self.broken = f"worker {w} hung"
                raise MachineError(f"SPMD worker {w} timed out")
        return conn.recv()

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        for endpoint in self._endpoints:
            try:
                endpoint.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if self.mode == "process" and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        if self.mode == "process":
            for endpoint in self._endpoints:
                try:
                    endpoint._conn.close()
                except Exception:
                    pass
        self._endpoints = []
        self._procs = []
        self.shared = {}
        for mm in self._mmaps:
            try:
                mm.close()
            except Exception:
                pass
        self._mmaps = []


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class SpmdExecutor:
    """Executes statements on real parallel workers.

    Drop-in for :class:`~repro.engine.executor.SimulatedExecutor`: the
    same constructor shape, the same :class:`ExecutionReport`, the same
    machine charges — but the numeric effect is produced by ``n_workers``
    concurrent workers executing the compiled routing schedules over
    shared memory.  Use as a context manager (or call :meth:`close`) to
    release the worker pool; a closed executor transparently restarts
    its pool on the next :meth:`execute`.
    """

    def __init__(self, ds: DataSpace, machine: DistributedMachine, *,
                 n_workers: int | None = None, mode: str = "auto",
                 strategy: str = "auto", use_overlap: bool = False) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise MachineError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        if strategy not in ("auto", "oracle", "analytic"):
            raise ValueError(f"unknown strategy {strategy!r}")
        p = machine.config.n_processors
        self.ds = ds
        self.machine = machine
        self.strategy = strategy
        self.use_overlap = use_overlap
        self.n_workers = p if n_workers is None else int(n_workers)
        if not 1 <= self.n_workers <= p:
            raise MachineError(
                f"n_workers must be in 1..{p}, got {self.n_workers}")
        self.mode = mode
        #: deposit policy; replaced by the program-level optimizer
        self.accountant = None
        self._pool: _WorkerPool | None = None
        #: id(routing schedule) -> (serial, per-worker tasks); pins the
        #: schedule objects so ids stay unique while cached
        self._tasks: dict[int, tuple[int, list[WorkerTask], object]] = {}
        self._sent: set[int] = set()
        self._serial = 0
        self._epoch: int | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "SpmdExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the workers and release the shared buffers (idempotent).
        The next :meth:`execute` forks a fresh pool over the then-current
        arrays."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._tasks.clear()
        self._sent.clear()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> _WorkerPool:
        if self._pool is None:
            self._pool = _WorkerPool(self.ds, self.n_workers, self.mode)
            self._sent.clear()
        return self._pool

    @property
    def pool_mode(self) -> str:
        """The worker substrate actually in use ('process'/'thread')."""
        return self._ensure_pool().mode

    def refresh(self, *names: str) -> None:
        """Re-upload the canonical values of ``names`` (all arrays when
        empty) into the shared mirrors — needed only if array data was
        mutated outside this executor mid-session (process mode)."""
        pool = self._ensure_pool()
        for name in names or tuple(pool.shared):
            pool.upload(self.ds, name)

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment, tag: str = "") -> ExecutionReport:
        """Run one assignment on the workers; returns the same report —
        and leaves the machine in the same state — as the simulator."""
        ds = self.ds
        p = self.machine.config.n_processors
        stmt.validate(ds)
        route_sched = schedule_for(ds, stmt, p, routing=True)
        count_sched = schedule_for(ds, stmt, p, strategy=self.strategy,
                                   use_overlap=self.use_overlap)
        pool = self._ensure_pool()
        if self._epoch != ds.layout_epoch:
            # REDISTRIBUTE/REALIGN dropped the schedules; drop the
            # compiled task splits with them, in the workers too
            for serial, _, _ in self._tasks.values():
                pool.drop_task(serial)
                self._sent.discard(serial)
            self._tasks.clear()
            self._epoch = ds.layout_epoch
        names = {stmt.lhs.name, *(r.name for r in stmt.rhs.refs())}
        if not pool.covers(ds, names):
            # an array was ALLOCATEd or re-allocated after the workers
            # forked: restart the pool over the current arrays.  The
            # canonical storage is authoritative at statement boundaries
            # (every written section is downloaded), so this is lossless.
            self.close()
            pool = self._ensure_pool()
        for name in names:
            pool.bind_array(ds, name)
        serial, tasks = self._tasks_for(route_sched, stmt)
        first = serial not in self._sent
        pool.run_statement(serial, tasks if first else None)
        self._sent.add(serial)
        pool.download(ds, stmt.lhs.name,
                      section_slicer(stmt.lhs.section(ds)))
        return charge_schedule(self.machine, count_sched, tag,
                               accountant=self.accountant)

    def execute_all(self, stmts, tag: str = "") -> list[ExecutionReport]:
        return [self.execute(s, tag=tag) for s in stmts]

    # ------------------------------------------------------------------
    def _tasks_for(self, route_sched, stmt: Assignment
                   ) -> tuple[int, list[WorkerTask]]:
        """The per-worker task split of one routing schedule, memoized on
        the schedule object (Jacobi iterations 2..N reuse it).  The table
        is LRU-bounded at ``_TASK_CACHE_MAX``; evictions also drop the
        split from every worker's cache."""
        hit = self._tasks.get(id(route_sched))
        if hit is not None:
            # LRU refresh
            self._tasks[id(route_sched)] = self._tasks.pop(id(route_sched))
            return hit[0], hit[1]
        while len(self._tasks) >= _TASK_CACHE_MAX:
            old_serial, _, _ = self._tasks.pop(next(iter(self._tasks)))
            if self._pool is not None:
                self._pool.drop_task(old_serial)
            self._sent.discard(old_serial)
        ds = self.ds
        p = route_sched.n_processors
        w = self.n_workers
        # contiguous unit -> worker grouping (identity when W == P)
        wmap = (np.arange(p, dtype=np.int64) * w) // p
        wdst = wmap[route_sched.lhs_owner_flat]
        shape = route_sched.iteration_shape
        lhs_slicer = section_slicer(stmt.lhs.section(ds))
        lhs_dtype = ds.arrays[stmt.lhs.name].dtype
        serial = self._serial
        self._serial += 1
        tasks: list[WorkerTask] = []
        leaves = unique_refs(stmt.rhs)
        for worker in range(w):
            mask = wdst == worker
            my_pos = np.nonzero(mask)[0]
            refs: list[RefGather] = []
            for ref, route in zip(leaves, route_sched.routes):
                parts: list[tuple[np.ndarray, np.ndarray]] = []
                local_pos = np.nonzero(route.local_mask & mask)[0]
                if local_pos.size:
                    parts.append(
                        (local_pos, np.searchsorted(my_pos, local_pos)))
                for _, dst_unit, positions in route.chunks:
                    if wmap[dst_unit] == worker and positions.size:
                        parts.append(
                            (positions,
                             np.searchsorted(my_pos, positions)))
                refs.append(RefGather(ref.name,
                                      section_slicer(ref.section(ds)),
                                      tuple(parts)))
            tasks.append(WorkerTask(
                serial=serial, shape=tuple(shape), lhs_name=stmt.lhs.name,
                lhs_slicer=lhs_slicer, lhs_dtype=lhs_dtype, my_pos=my_pos,
                refs=tuple(refs), rhs=stmt.rhs))
        self._tasks[id(route_sched)] = (serial, tasks, route_sched)
        return serial, tasks
