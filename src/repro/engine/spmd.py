"""Shared-memory SPMD execution backend: real workers, compiled schedules.

Every other executor in this repo *models* the node program; this one
runs it.  Each abstract processor of the machine (or a contiguous group
of them, when ``n_workers`` is smaller than the machine) becomes a real
worker executing the *already-compiled* routing schedules of
:mod:`repro.engine.schedule`.

Two execution paths share one worker pool and task protocol:

* the **fused** path (default): the master compiles each fusion window
  — a run of statements with no cross-statement read/write overlap —
  into one :class:`WindowTask` per worker.  All index arithmetic is
  done at compile time: iteration positions are lowered to flat
  Fortran-order storage indices, every peer's traffic is concatenated
  into one gather per (src worker, array) pair
  (:class:`~repro.engine.schedule.PeerPlan`, regrouped per worker), a
  contiguous block-face transfer becomes a zero-copy ``(lo, hi)``
  window sliced straight out of the shared segment, and the whole
  window synchronizes on a **single phase barrier** separating every
  operand read from every owner-computes write (Fortran array
  semantics);
* the **unfused** path (``fused=False``): the historical per-statement
  protocol — per-leaf fancy-index gathers against section views and a
  gather/write barrier *pair* per statement — kept as the comparison
  baseline the fused path is differentially tested (and benchmarked)
  against.

A third path rides on the fused plans: **worker-resident loop replay**
(:meth:`SpmdExecutor.execute_loop`).  When the program runner proves a
loop body trip-invariant (no remaps, no allocation flips — the IR's
layout-epoch certificate), the ordered window serials are shipped once
with a trip count and each worker replays all N trips locally: one
``send`` starts the loop, one ``recv`` returns aggregated per-phase
timings, and *zero* coordinator messages cross the pipe between trips.
On the replay path the per-window ``ctx.Barrier`` (two semaphore
syscalls per crossing) is replaced by :class:`SenseBarrier` — a
generation-counter barrier in a pre-fork shared ``mmap`` segment,
spin-then-``sched_yield``, one padded cache line per worker — with the
same ``_BARRIER_TIMEOUT`` wedge detection.  Each window crosses it
twice per trip: the usual read/write phase barrier, plus a post-write
crossing that replaces the coordinator ack round in ordering window
k's writes before window k+1's gathers.

Two worker substrates sit behind the same protocol:

* ``process`` — forked OS processes over anonymous shared-memory
  ``mmap`` buffers mirroring every array (created before the fork, so
  the mapping is inherited and writable by all workers);
* ``thread`` — a thread pool reading the canonical NumPy arrays
  directly (always available; the fallback when ``fork`` is not).
  Thread-mode replay keeps the pool's ``threading.Barrier`` (spinning
  under the GIL is pathological) — the replay win there is the removed
  per-trip queue round-trips.

The simulator stays the cost oracle: accounting is charged through the
same counting schedules and :func:`~repro.engine.executor.charge_schedule`
path as :class:`~repro.engine.executor.SimulatedExecutor`, so the
reported words matrices, ledger, pattern attribution and modeled time
are bit-identical to the simulated run on both paths, while the numeric
results are produced exclusively by the parallel workers and proven
equal to the sequential reference by the differential harness.

Compiled task descriptors are memoized per (layout epoch, schedule) and
shipped to each worker once; steady-state statements (Jacobi iterations
2..N) send only a small task key.
"""

from __future__ import annotations

import dataclasses
import mmap
import multiprocessing
import os
import queue
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.executor import ExecutionReport, charge_schedule
from repro.engine.expr import ArrayRef, BinExpr, Expr, ScalarLit, \
    section_slicer
from repro.engine.planstore import active_plan_store
from repro.engine.schedule import flat_storage_index as _flat_store_index
from repro.engine.schedule import schedule_for, unique_refs
from repro.errors import MachineError
from repro.machine.simulator import DistributedMachine

__all__ = ["SenseBarrier", "SpmdExecutor", "WindowTask", "WorkerTask",
           "RefGather", "OperandSpec", "PeerPull", "PeerTransfer",
           "StmtPlan", "fusion_windows"]

#: when set (``REPRO_DEBUG_WINDOWS=1``), every fusion window formed by
#: :meth:`SpmdExecutor.execute_all` is re-checked for RAW/WAR conflicts
#: by the independent race checker of :mod:`repro.engine.analysis`
#: before it executes — CI runs the whole SPMD leg under this flag
_DEBUG_WINDOWS = os.environ.get("REPRO_DEBUG_WINDOWS", "0") not in ("", "0")


def fusion_windows(stmts: Iterable[Assignment]) -> list[list[Assignment]]:
    """Partition a statement sequence into the fusion windows the fused
    path executes: a statement joins the open window unless it reads an
    array the window wrote (RAW) or writes an array the window read
    (WAR).  WAW overlap is allowed — writes apply in statement order on
    every worker and the canonical download is per statement, in order.
    """
    windows: list[list[Assignment]] = []
    window: list[Assignment] = []
    reads: set[str] = set()
    written: set[str] = set()
    for stmt in stmts:
        stmt_reads = {r.name for r in stmt.rhs.refs()}
        if window and (stmt_reads & written or stmt.lhs.name in reads):
            windows.append(window)
            window, reads, written = [], set(), set()
        window.append(stmt)
        reads |= stmt_reads
        written.add(stmt.lhs.name)
    if window:
        windows.append(window)
    return windows

#: seconds a worker waits at a phase barrier before declaring the
#: statement wedged (a crashed peer) and aborting the barrier
_BARRIER_TIMEOUT = 120.0
#: compiled task splits retained per executor (LRU): splits hold
#: O(iteration size) position arrays in the master *and* every worker,
#: so a session sweeping many distinct statements evicts its oldest
#: splits (mirroring the ScheduleCache bound they are derived from)
_TASK_CACHE_MAX = 64
#: seconds the master polls a worker pipe before checking liveness
_POLL_INTERVAL = 1.0
#: busy-spin iterations a :class:`SenseBarrier` waiter burns before it
#: starts yielding its time slice (the arrival skew of a balanced
#: window fits in the spin; an oversubscribed core falls through to
#: ``sched_yield`` immediately after)
_SPIN_ITERS = 64
#: int64 slots between adjacent workers' generation counters — 64 bytes,
#: one cache line, so publishing an arrival never invalidates a peer's
#: line (no false sharing on the spin)
_SENSE_STRIDE = 8

_sched_yield = getattr(os, "sched_yield", None)


def _yield_slice() -> None:
    if _sched_yield is not None:
        _sched_yield()
    else:  # pragma: no cover - non-posix fallback
        time.sleep(0)


class _PeerAbortError(MachineError):
    """A peer worker aborted the barrier (its own error is reported on
    its own pipe; this waiter only relays the cause)."""


#: the distinct relay message peers send when a barrier is aborted under
#: them — the master's failure summary then names the real cause instead
#: of burying it in an unrelated traceback (regression-tested)
_PEER_FAILED = ("peer failed: another worker aborted the phase barrier "
                "(its own error follows on its pipe)")


class SenseBarrier:
    """A generation-counter shared-memory barrier for the replay path.

    ``slots`` is an int64 view over a pre-fork ``mmap`` segment holding
    one padded generation counter per worker (stride
    :data:`_SENSE_STRIDE` = one cache line) plus one abort flag.  Each
    counter has a *single writer* — its own worker — so arrival is one
    aligned store and readiness is a strided min-scan; no atomic RMW is
    needed.  Waiters spin :data:`_SPIN_ITERS` times, then
    ``sched_yield`` (mandatory on oversubscribed cores), preserving the
    ``_BARRIER_TIMEOUT`` wedge detection: a waiter that times out sets
    the abort flag and raises; peers observing the flag raise
    :class:`_PeerAbortError` immediately.

    Generations are monotonic and never reset: every worker crosses the
    barrier the same number of times per replayed loop (trips × windows
    × 2, a compile-time constant), so counters stay in lock-step across
    loop invocations without coordinator involvement.
    """

    def __init__(self, slots: np.ndarray, rank: int, n: int) -> None:
        self._slots = slots
        self._rank = rank
        self._n = n
        self._gen = 0

    @staticmethod
    def n_slots(n_workers: int) -> int:
        """int64 slots a pool must map for ``n_workers`` (+1 abort)."""
        return n_workers * _SENSE_STRIDE + 1

    def wait(self, timeout: float) -> None:
        self._gen += 1
        gen = self._gen
        slots = self._slots
        abort_i = self._n * _SENSE_STRIDE
        slots[self._rank * _SENSE_STRIDE] = gen
        spins = 0
        deadline = 0.0
        while True:
            if int(slots[0:abort_i:_SENSE_STRIDE].min()) >= gen:
                return
            if slots[abort_i]:
                raise _PeerAbortError(_PEER_FAILED)
            spins += 1
            if spins <= _SPIN_ITERS:
                continue
            if not deadline:
                deadline = perf_counter() + timeout
            elif perf_counter() > deadline:
                self.abort()
                raise MachineError(
                    f"SPMD replay barrier timed out after {timeout:.0f}s "
                    "(a peer worker wedged or died)")
            _yield_slice()

    def abort(self) -> None:
        """Release every waiter into :class:`_PeerAbortError` (sticky;
        the pool is restarted afterwards)."""
        self._slots[self._n * _SENSE_STRIDE] = 1


# ----------------------------------------------------------------------
# Task protocol (what the master ships, what a worker executes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefGather:
    """One RHS leaf's gather recipe for one worker: the section slicer
    into the shared array plus ``(positions, slots)`` pairs — the
    schedule's local split and the incoming route chunks, with the
    precomputed slots into the worker's owned-iteration vector."""

    name: str
    slicer: tuple
    parts: tuple[tuple[np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class WorkerTask:
    """Everything one worker needs to execute one statement (the
    unfused per-statement protocol)."""

    serial: int
    shape: tuple[int, ...]
    lhs_name: str
    lhs_slicer: tuple
    lhs_dtype: np.dtype
    #: iteration positions this worker's units own (sorted)
    my_pos: np.ndarray
    #: one gather recipe per unique RHS leaf, in first-occurrence order
    refs: tuple[RefGather, ...]
    rhs: Expr


@dataclass(frozen=True)
class OperandSpec:
    """One unique-leaf operand vector of one window statement."""

    name: str
    size: int
    dtype: np.dtype
    #: flat Fortran-order ``(lo, hi)`` storage window when the whole
    #: vector is one contiguous ascending run of an array no statement
    #: in the window writes: the worker slices it zero-copy out of the
    #: shared segment instead of staging a copy
    view: tuple[int, int] | None = None


@dataclass(frozen=True)
class PeerPull:
    """One fused pull from one source array: a single gather — a
    zero-copy contiguous ``(lo, hi)`` block-face window or one
    concatenated fancy index — plus the scatter segments into the
    consuming operand vectors (``staged[start:stop]`` lands at
    ``vec[operand][slots]``)."""

    name: str
    #: concatenated flat F-order gather index; ``None`` when the pull
    #: is the contiguous ``[lo, hi)`` storage window
    index: np.ndarray | None
    lo: int
    hi: int
    #: (operand, slots, start, stop); ``slots`` is a slice when the
    #: landing run is contiguous, else an index vector
    segments: tuple[tuple[int, object, int, int], ...]


@dataclass(frozen=True)
class PeerTransfer:
    """All fused pulls whose source elements live on one peer worker."""

    src_worker: int
    pulls: tuple[PeerPull, ...]


@dataclass(frozen=True)
class StmtPlan:
    """One statement's compute/write recipe inside a window."""

    lhs_name: str
    lhs_dtype: np.dtype
    #: flat F-order store index; ``None`` when the contiguous ``[lo, hi)``
    write_index: np.ndarray | None
    lo: int
    hi: int
    #: owned-iteration count (operand vector length)
    size: int
    rhs: Expr
    #: global operand ids, aligned with ``unique_refs(rhs)``
    operands: tuple[int, ...]


@dataclass(frozen=True)
class WindowTask:
    """Everything one worker needs to execute one fusion window with a
    single phase barrier: gather/compute every statement, barrier,
    write every statement."""

    serial: int
    #: every array the window touches (flat views are taken once)
    names: tuple[str, ...]
    ops: tuple[OperandSpec, ...]
    transfers: tuple[PeerTransfer, ...]
    stmts: tuple[StmtPlan, ...]


def _eval_vec(expr: Expr, operands: dict[int, np.ndarray]) -> Any:
    """Evaluate the RHS over the worker's gathered operand vectors —
    elementwise IEEE ops, so a subset evaluation is bit-identical to the
    same elements of the sequential whole-array evaluation."""
    if isinstance(expr, ScalarLit):
        return expr.value
    if isinstance(expr, ArrayRef):
        return operands[id(expr)]
    if isinstance(expr, BinExpr):
        a = _eval_vec(expr.left, operands)
        b = _eval_vec(expr.right, operands)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    raise MachineError(f"cannot evaluate {expr!r}")


def _run_task(task: WorkerTask, arrays: dict[str, np.ndarray],
              barrier: Any) -> tuple[float, float]:
    """One worker's share of one statement on the unfused path: gather,
    barrier, write, barrier.  Returns (gather, write) phase seconds."""
    t0 = perf_counter()
    operands: dict[int, np.ndarray] = {}
    for ref, rg in zip(unique_refs(task.rhs), task.refs):
        view = arrays[rg.name][rg.slicer]
        vec = np.empty(task.my_pos.size, dtype=np.asarray(view).dtype)
        for positions, slots in rg.parts:
            vec[slots] = view[np.unravel_index(positions, task.shape,
                                               order="F")]
        operands[id(ref)] = vec
    result = _eval_vec(task.rhs, operands)
    result = np.broadcast_to(result, (task.my_pos.size,)).astype(
        task.lhs_dtype)
    t_gather = perf_counter() - t0
    barrier.wait(_BARRIER_TIMEOUT)   # every operand read before any write
    t0 = perf_counter()
    if task.my_pos.size:
        view = arrays[task.lhs_name][task.lhs_slicer]
        view[np.unravel_index(task.my_pos, task.shape,
                              order="F")] = result
    t_write = perf_counter() - t0
    barrier.wait(_BARRIER_TIMEOUT)   # statement complete
    return t_gather, t_write


def _run_window(task: WindowTask, arrays: dict[str, np.ndarray],
                barrier: Any) -> tuple[float, float]:
    """One worker's share of one fusion window: execute every fused
    peer pull and evaluate every statement, cross the window's single
    phase barrier, then write every owned result.  All indices are flat
    Fortran-order storage positions precomputed at compile time — the
    steady-state loop does no index arithmetic.  Returns (gather,
    write) phase seconds."""
    flat = {name: arrays[name].reshape(-1, order="F")
            for name in task.names}
    t0 = perf_counter()
    vec: list[np.ndarray] = []
    for op in task.ops:
        if op.view is not None:
            vec.append(flat[op.name][op.view[0]:op.view[1]])
        else:
            vec.append(np.empty(op.size, dtype=op.dtype))
    for transfer in task.transfers:
        for pull in transfer.pulls:
            src = flat[pull.name]
            staged = (src[pull.lo:pull.hi] if pull.index is None
                      else src[pull.index])
            for op_i, slots, start, stop in pull.segments:
                vec[op_i][slots] = staged[start:stop]
    results: list[np.ndarray] = []
    for sp in task.stmts:
        operands = {id(ref): vec[op_i]
                    for ref, op_i in zip(unique_refs(sp.rhs), sp.operands)}
        result = _eval_vec(sp.rhs, operands)
        # .astype copies, so zero-copy operand views are materialized
        # here, before the barrier releases any writer
        results.append(np.broadcast_to(result, (sp.size,)).astype(
            sp.lhs_dtype))
    t_gather = perf_counter() - t0
    barrier.wait(_BARRIER_TIMEOUT)   # the window's only barrier
    t0 = perf_counter()
    for sp, result in zip(task.stmts, results):
        if not sp.size:
            continue
        dst = flat[sp.lhs_name]
        if sp.write_index is None:
            dst[sp.lo:sp.hi] = result
        else:
            dst[sp.write_index] = result
    return t_gather, perf_counter() - t0


def _abort_barriers(*barriers: Any) -> None:
    """Break peers out of every given barrier so a failure is fast."""
    seen: set[int] = set()
    for b in barriers:
        if id(b) in seen:
            continue
        seen.add(id(b))
        try:
            b.abort()
        except Exception:
            pass


def _replay_loop(windows: Sequence[WindowTask],
                 arrays: dict[str, np.ndarray], rbarrier: Any,
                 trips: int) -> tuple[float, float]:
    """Replay ``trips`` trips of a compiled window sequence entirely
    worker-side: no coordinator message crosses the pipe until the loop
    is done.  Each window crosses the replay barrier twice per trip —
    its usual pre-write phase barrier (inside :func:`_run_window`) and a
    post-write crossing making this window's writes visible before any
    peer's next gather (the ordering the coordinator ack round provides
    on the dispatch path).  Returns accumulated (gather, write)
    seconds."""
    t_gather = t_write = 0.0
    for _ in range(trips):
        for wt in windows:
            g, w = _run_window(wt, arrays, rbarrier)
            rbarrier.wait(_BARRIER_TIMEOUT)
            t_gather += g
            t_write += w
    return t_gather, t_write


def _worker_loop(endpoint: Any, barrier: Any,
                 arrays: dict[str, np.ndarray], rank: int = 0,
                 sense: np.ndarray | None = None) -> None:
    """A worker's service loop: cached task table + the phase-barrier
    statement protocol + the loop-replay protocol.  Runs as a forked
    process or a thread.  ``sense`` is the process-mode replay-barrier
    segment; thread-mode replay reuses the pool barrier (spinning under
    the GIL is pathological)."""
    tasks: dict[int, WorkerTask | WindowTask] = {}
    rbarrier: Any = barrier if sense is None else SenseBarrier(
        sense, rank, (sense.size - 1) // _SENSE_STRIDE)
    while True:
        msg = endpoint.recv()
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "drop":
            # master evicted/invalidated this task split; no ack (pipes
            # are FIFO, so later exec messages order after the drop)
            tasks.pop(msg[1], None)
            continue
        if kind == "task":
            # replay preload: cache without executing (no ack)
            tasks[msg[1]] = msg[2]
            continue
        if kind == "loop":
            _, loop_id, serials, trips = msg
            try:
                windows: list[WindowTask] = []
                for serial in serials:
                    cached_w = tasks.get(serial)
                    if not isinstance(cached_w, WindowTask):
                        raise MachineError(
                            f"worker has no cached window task {serial}")
                    windows.append(cached_w)
                phases = _replay_loop(windows, arrays, rbarrier, trips)
                endpoint.send(("ok", ("loop", loop_id), phases))
            except (threading.BrokenBarrierError, _PeerAbortError):
                endpoint.send(("err", _PEER_FAILED, None))
            except Exception:
                _abort_barriers(barrier, rbarrier)
                endpoint.send(("err", traceback.format_exc(), None))
            continue
        _, serial, task = msg
        if task is not None:
            tasks[serial] = task
        try:
            cached = tasks.get(serial)
            if cached is None:
                raise MachineError(f"worker has no cached task {serial}")
            if isinstance(cached, WindowTask):
                phases = _run_window(cached, arrays, barrier)
            else:
                phases = _run_task(cached, arrays, barrier)
            endpoint.send(("ok", serial, phases))
        except threading.BrokenBarrierError:
            # a peer aborted mid-statement: relay the real cause instead
            # of an unrelated BrokenBarrierError traceback
            endpoint.send(("err", _PEER_FAILED, None))
        except Exception:
            # break peers out of the barrier so the statement fails fast
            _abort_barriers(barrier, rbarrier)
            endpoint.send(("err", traceback.format_exc(), None))


def _process_worker_main(conn: Any, barrier: Any, meta: dict[str, Any],
                         rank: int, sense_buf: Any) -> None:
    """Entry point of a forked worker: map the inherited shared buffers
    back into Fortran-ordered arrays and serve tasks."""
    arrays = {
        name: np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape,
                            dtype=np.int64))).reshape(shape, order="F")
        for name, (buf, dtype, shape) in meta.items()}
    sense = np.frombuffer(sense_buf, dtype=np.int64)
    _worker_loop(_PipeEndpoint(conn), barrier, arrays, rank=rank,
                 sense=sense)


# ----------------------------------------------------------------------
# Channels (one send/recv protocol over pipes or queues)
# ----------------------------------------------------------------------
class _PipeEndpoint:
    """A worker's end of a multiprocessing pipe."""

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def recv(self) -> Any:
        return self._conn.recv()

    def send(self, msg: Any) -> None:
        self._conn.send(msg)


class _QueueEndpoint:
    """One end of a thread-mode channel (a pair of queues)."""

    def __init__(self, inbox: "queue.Queue[Any]",
                 outbox: "queue.Queue[Any]") -> None:
        self._inbox = inbox
        self._outbox = outbox

    def recv(self) -> Any:
        return self._inbox.get()

    def send(self, msg: Any) -> None:
        self._outbox.put(msg)


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------
def _pick_mode(mode: str) -> str:
    if mode == "fork":          # Backend.spmd(mode="fork") alias
        mode = "process"
    if mode not in ("auto", "process", "thread"):
        raise MachineError(f"unknown SPMD mode {mode!r}; use "
                           "'process' ('fork'), 'thread' or 'auto'")
    if mode != "auto":
        return mode
    if sys.platform.startswith("linux") and \
            "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


class _WorkerPool:
    """N persistent workers over shared array storage.

    ``process`` mode mirrors every created array into an anonymous
    shared ``mmap`` buffer *before* forking, so parent and children
    address the same pages; ``thread`` mode shares the canonical arrays
    natively.
    """

    barrier: Any

    def __init__(self, ds: DataSpace, n_workers: int, mode: str) -> None:
        self.n_workers = n_workers
        self.mode = _pick_mode(mode)
        self.broken: str | None = None
        self._mmaps: list[mmap.mmap] = []
        self.shared: dict[str, np.ndarray] = {}
        self._instances: dict[str, int] = {}
        self._procs: list[Any] = []
        self._endpoints: list[Any] = []
        if self.mode == "process":
            self._start_processes(ds)
        else:
            self._start_threads(ds)

    # -- startup -------------------------------------------------------
    def _start_processes(self, ds: DataSpace) -> None:
        ctx = multiprocessing.get_context("fork")
        self.barrier = ctx.Barrier(self.n_workers)
        # the replay barrier's shared segment: one padded generation
        # counter per worker + the abort flag, mapped before the fork so
        # every worker inherits the same pages
        sense_mm = mmap.mmap(-1, SenseBarrier.n_slots(self.n_workers) * 8)
        self._mmaps.append(sense_mm)
        np.frombuffer(sense_mm, dtype=np.int64)[:] = 0
        meta: dict[str, Any] = {}
        for name in ds.created_arrays():
            data = ds.arrays[name].data
            mm = mmap.mmap(-1, max(data.nbytes, 1))
            shared = np.frombuffer(mm, dtype=data.dtype,
                                   count=data.size).reshape(
                                       data.shape, order="F")
            shared[...] = data          # upload the canonical values
            self._mmaps.append(mm)
            self.shared[name] = shared
            self._instances[name] = ds.arrays[name].instance
            meta[name] = (mm, data.dtype, data.shape)
        for rank in range(self.n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_process_worker_main,
                               args=(child, self.barrier, meta, rank,
                                     sense_mm),
                               daemon=True)
            proc.start()
            child.close()
            self._endpoints.append(_PipeEndpoint(parent))
            self._procs.append(proc)

    def _start_threads(self, ds: DataSpace) -> None:
        self.barrier = threading.Barrier(self.n_workers)
        # threads address the canonical storage directly; the dict is
        # refreshed by the master before each statement
        self.shared = {name: ds.arrays[name].data
                       for name in ds.created_arrays()}
        for rank in range(self.n_workers):
            inbox: "queue.Queue[Any]" = queue.Queue()
            outbox: "queue.Queue[Any]" = queue.Queue()
            worker_end = _QueueEndpoint(inbox, outbox)
            master_end = _QueueEndpoint(outbox, inbox)
            thread = threading.Thread(
                target=_worker_loop,
                args=(worker_end, self.barrier, self.shared, rank),
                daemon=True)
            thread.start()
            self._endpoints.append(master_end)
            self._procs.append(thread)

    # -- master-side array coherence -----------------------------------
    def covers(self, ds: DataSpace, names: Iterable[str]) -> bool:
        """True iff every named array is addressable by the current
        workers (process mode forks over a fixed array set; an array
        created or re-allocated since then needs a pool restart)."""
        if self.mode == "thread":
            return True
        return all(
            name in self.shared
            and self._instances[name] == ds.arrays[name].instance
            for name in names)

    def bind_array(self, ds: DataSpace, name: str) -> None:
        """Make ``name`` addressable by the workers, verifying the
        instance seen at session start is still current."""
        arr = ds.arrays[name]
        if self.mode == "thread":
            self.shared[name] = arr.data
            self._instances[name] = arr.instance
            return
        if name not in self.shared:
            raise MachineError(
                f"array {name!r} was created after the SPMD session "
                "started; process-mode workers cannot map it — close() "
                "the executor and execute again to re-fork over the "
                "current arrays")
        if self._instances[name] != arr.instance:
            raise MachineError(
                f"array {name!r} was re-allocated after the SPMD session "
                "started; close() the executor and execute again")

    def upload(self, ds: DataSpace, name: str) -> None:
        """Copy the canonical values of ``name`` into the shared mirror
        (process mode; a no-op for threads)."""
        self.bind_array(ds, name)
        if self.mode == "process":
            self.shared[name][...] = ds.arrays[name].data

    def download(self, ds: DataSpace, name: str, slicer: tuple) -> None:
        """Copy a written section back into the canonical array."""
        if self.mode == "process":
            ds.arrays[name].data[slicer] = self.shared[name][slicer]

    # -- statement execution -------------------------------------------
    def drop_task(self, serial: int) -> None:
        """Tell every worker to forget one cached task split (sent when
        the master evicts or invalidates it, so worker memory tracks the
        master's bounded table)."""
        if self.broken:
            return
        for endpoint in self._endpoints:
            try:
                endpoint.send(("drop", serial))
            except Exception:
                pass

    def run_statement(self, serial: int, tasks: Sequence[Any] | None
                      ) -> dict[str, float]:
        """Dispatch one statement (or fused window) to every worker and
        await the acks.  ``tasks`` is shipped on the first use of a
        schedule; later executions send only the serial (workers replay
        their cache).  Returns the per-phase wall seconds, each phase
        the max across workers."""
        if self.broken:
            raise MachineError(
                f"SPMD worker pool is broken ({self.broken}); close() "
                "and execute again to restart it")
        try:
            for w, endpoint in enumerate(self._endpoints):
                endpoint.send(("exec", serial,
                               tasks[w] if tasks is not None else None))
        except Exception as exc:
            self.broken = "dispatch failed"
            raise MachineError(
                f"SPMD dispatch failed (worker pipe: {exc!r}); close() "
                "and execute again to restart the pool") from exc
        failures: list[str] = []
        t_gather = t_write = 0.0
        for w, endpoint in enumerate(self._endpoints):
            while True:
                status, detail, phases = self._recv(w, endpoint)
                if status == "ok" and detail != serial:
                    # stale ack from an abandoned earlier statement
                    continue
                break
            if status != "ok":
                failures.append(f"worker {w}: {detail}")
            elif phases is not None:
                t_gather = max(t_gather, phases[0])
                t_write = max(t_write, phases[1])
        if failures:
            self.broken = "worker error"
            raise MachineError(
                "SPMD statement failed:\n" + "\n".join(failures))
        return {"gather": t_gather, "write": t_write}

    # -- loop replay ---------------------------------------------------
    def send_task(self, serial: int, tasks: Sequence[WindowTask]) -> None:
        """Preload one compiled window split into every worker's cache
        without executing it (no ack; pipes are FIFO, so a later
        ``loop`` message orders after the preload)."""
        if self.broken:
            raise MachineError(
                f"SPMD worker pool is broken ({self.broken}); close() "
                "and execute again to restart it")
        try:
            for w, endpoint in enumerate(self._endpoints):
                endpoint.send(("task", serial, tasks[w]))
        except Exception as exc:
            self.broken = "dispatch failed"
            raise MachineError(
                f"SPMD task preload failed (worker pipe: {exc!r}); "
                "close() and execute again to restart the pool") from exc

    def start_loop(self, loop_id: int, serials: Sequence[int],
                   trips: int) -> None:
        """Start a worker-resident replay of ``trips`` trips over the
        cached window ``serials``: one message per worker, after which
        the workers run ahead with zero coordinator traffic.  The single
        end-of-loop ack is collected by :meth:`finish_loop`."""
        if self.broken:
            raise MachineError(
                f"SPMD worker pool is broken ({self.broken}); close() "
                "and execute again to restart it")
        try:
            for endpoint in self._endpoints:
                endpoint.send(("loop", loop_id, tuple(serials),
                               int(trips)))
        except Exception as exc:
            self.broken = "dispatch failed"
            raise MachineError(
                f"SPMD replay dispatch failed (worker pipe: {exc!r}); "
                "close() and execute again to restart the pool") from exc

    def finish_loop(self, loop_id: int) -> dict[str, float]:
        """Await every worker's single end-of-loop ack; returns the
        aggregated per-phase wall seconds (max across workers)."""
        failures: list[str] = []
        t_gather = t_write = 0.0
        for w, endpoint in enumerate(self._endpoints):
            while True:
                status, detail, phases = self._recv(w, endpoint)
                if status == "ok" and detail != ("loop", loop_id):
                    # stale ack from an abandoned earlier statement
                    continue
                break
            if status != "ok":
                failures.append(f"worker {w}: {detail}")
            elif phases is not None:
                t_gather = max(t_gather, phases[0])
                t_write = max(t_write, phases[1])
        if failures:
            self.broken = "worker error"
            raise MachineError(
                "SPMD replay loop failed:\n" + "\n".join(failures))
        return {"gather": t_gather, "write": t_write}

    def _recv(self, w: int, endpoint: Any) -> Any:
        if self.mode == "thread":
            return endpoint.recv()
        waited = 0.0
        conn = endpoint._conn
        while not conn.poll(_POLL_INTERVAL):
            waited += _POLL_INTERVAL
            if not self._procs[w].is_alive():
                self.broken = f"worker {w} died"
                raise MachineError(f"SPMD worker {w} died mid-statement")
            if waited > _BARRIER_TIMEOUT + 10.0:
                self.broken = f"worker {w} hung"
                raise MachineError(f"SPMD worker {w} timed out")
        return conn.recv()

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        for endpoint in self._endpoints:
            try:
                endpoint.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if self.mode == "process" and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        if self.mode == "process":
            for endpoint in self._endpoints:
                try:
                    endpoint._conn.close()
                except Exception:
                    pass
        self._endpoints = []
        self._procs = []
        self.shared = {}
        for mm in self._mmaps:
            try:
                mm.close()
            except Exception:
                pass
        self._mmaps = []


# ----------------------------------------------------------------------
# Window-plan compilation (master side)
# ----------------------------------------------------------------------
# flat storage lowering is shared with the schedule compiler: the SPMD
# window plans and the subsumption pass both key on global element ids
# (imported above as _flat_store_index)


def _contiguous_bounds(index: np.ndarray) -> tuple[int, int] | None:
    """``(lo, hi)`` when ``index`` is one ascending stride-1 run (a
    contiguous block face in flat storage), else ``None``."""
    if not index.size:
        return None
    lo, hi = int(index[0]), int(index[-1])
    if hi - lo != index.size - 1:
        return None
    if index.size > 1 and not bool(np.all(np.diff(index) == 1)):
        return None
    return lo, hi + 1


def _slots_spec(slots: np.ndarray) -> Any:
    """Compress a strictly increasing landing-slot vector to a slice
    when it is one stride-1 run."""
    bounds = _contiguous_bounds(slots)
    if bounds is not None:
        return slice(bounds[0], bounds[1])
    return slots


def _compile_window(ds: DataSpace, route_scheds: Sequence[Any],
                    stmts: Sequence[Assignment], p: int, w: int,
                    serial: int) -> list[WindowTask]:
    """Compile one fusion window into per-worker :class:`WindowTask`
    plans: regroup the schedules' unit-level
    :class:`~repro.engine.schedule.PeerPlan` transfers by worker, lower
    every position set to flat storage indices, fuse all pulls with the
    same (source worker, array) into one concatenated gather, and turn
    contiguous runs into zero-copy windows."""
    wmap = (np.arange(p, dtype=np.int64) * w) // p
    writes = {stmt.lhs.name for stmt in stmts}
    names = tuple(sorted({name for stmt in stmts
                          for name in (stmt.lhs.name,
                                       *(r.name for r in stmt.rhs.refs()))}))
    tasks: list[WindowTask] = []
    for worker in range(w):
        # [name, size, dtype, view] per operand; frozen at the end
        ops: list[list[Any]] = []
        #: gather entries in discovery order:
        #: (src worker, array, operand, slots, flat gather index)
        raw: list[tuple[int, str, int, np.ndarray, np.ndarray]] = []
        plans: list[StmtPlan] = []
        for stmt, rsched in zip(stmts, route_scheds):
            mask = wmap[rsched.lhs_owner_flat] == worker
            my_pos = np.nonzero(mask)[0]
            it_shape = rsched.iteration_shape
            widx = _flat_store_index(ds, stmt.lhs, it_shape, my_pos)
            wbounds = _contiguous_bounds(widx)
            leaves = unique_refs(stmt.rhs)
            op_ids: list[int] = []
            op_of_leaf: dict[int, tuple[int, ArrayRef]] = {}
            for leaf_i, (ref, route) in enumerate(
                    zip(leaves, rsched.routes)):
                op = len(ops)
                op_ids.append(op)
                op_of_leaf[leaf_i] = (op, ref)
                ops.append([ref.name, int(my_pos.size),
                            ds.arrays[ref.name].dtype, None])
                local_pos = np.nonzero(route.local_mask & mask)[0]
                if local_pos.size:
                    raw.append((worker, ref.name, op,
                                np.searchsorted(my_pos, local_pos),
                                _flat_store_index(ds, ref, it_shape,
                                                  local_pos)))
            for plan in rsched.peer_plans or ():
                if wmap[plan.dst] != worker:
                    continue
                src_worker = int(wmap[plan.src])
                for leaf_i, positions in plan.segments:
                    op, ref = op_of_leaf[leaf_i]
                    raw.append((src_worker, ref.name, op,
                                np.searchsorted(my_pos, positions),
                                _flat_store_index(ds, ref, it_shape,
                                                  positions)))
            plans.append(StmtPlan(
                lhs_name=stmt.lhs.name,
                lhs_dtype=ds.arrays[stmt.lhs.name].dtype,
                write_index=None if wbounds is not None else widx,
                lo=wbounds[0] if wbounds is not None else 0,
                hi=wbounds[1] if wbounds is not None else 0,
                size=int(my_pos.size), rhs=stmt.rhs,
                operands=tuple(op_ids)))
        # zero-copy operand views: an operand fed by exactly one pull
        # whose slots are the identity and whose flat index is one
        # contiguous run of an array nothing in the window writes is
        # sliced straight out of shared storage — drop its pull.
        # (Slots from searchsorted over a position partition are
        # strictly increasing, so full length implies identity.)
        feeds: dict[int, int] = {}
        for _, _, op, _, _ in raw:
            feeds[op] = feeds.get(op, 0) + 1
        kept: list[tuple[int, str, int, np.ndarray, np.ndarray]] = []
        for entry in raw:
            src_worker, name, op, slots, flat = entry
            bounds = _contiguous_bounds(flat)
            if (name not in writes and feeds[op] == 1
                    and slots.size == ops[op][1] and bounds is not None):
                ops[op][3] = bounds
            else:
                kept.append(entry)
        # fuse the surviving pulls: one gather per (src worker, array)
        buckets: dict[tuple[int, str], list[Any]] = {}
        for src_worker, name, op, slots, flat in kept:
            buckets.setdefault((src_worker, name), []).append(
                (op, slots, flat))
        by_src: dict[int, list[PeerPull]] = {}
        for (src_worker, name), entries in buckets.items():
            flats = [flat for _, _, flat in entries]
            index = (flats[0] if len(flats) == 1
                     else np.concatenate(flats))
            segments: list[tuple[int, Any, int, int]] = []
            offset = 0
            for op, slots, flat in entries:
                segments.append((op, _slots_spec(slots), offset,
                                 offset + int(flat.size)))
                offset += int(flat.size)
            bounds = _contiguous_bounds(index)
            if bounds is not None:
                pull = PeerPull(name, None, bounds[0], bounds[1],
                                tuple(segments))
            else:
                pull = PeerPull(name, index, 0, 0, tuple(segments))
            by_src.setdefault(src_worker, []).append(pull)
        transfers = tuple(
            PeerTransfer(src_worker, tuple(pulls))
            for src_worker, pulls in sorted(by_src.items()))
        tasks.append(WindowTask(
            serial=serial, names=names,
            ops=tuple(OperandSpec(name, size, dtype, view)
                      for name, size, dtype, view in ops),
            transfers=transfers, stmts=tuple(plans)))
    return tasks


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class SpmdExecutor:
    """Executes statements on real parallel workers.

    Drop-in for :class:`~repro.engine.executor.SimulatedExecutor`: the
    same constructor shape, the same :class:`ExecutionReport`, the same
    machine charges — but the numeric effect is produced by ``n_workers``
    concurrent workers executing the compiled routing schedules over
    shared memory.  ``fused=True`` (default) runs the fused per-peer
    transfer plans with one phase barrier per fusion window;
    ``fused=False`` keeps the historical two-barrier per-statement
    protocol.  Use as a context manager (or call :meth:`close`) to
    release the worker pool; a closed executor transparently restarts
    its pool on the next :meth:`execute`.
    """

    def __init__(self, ds: DataSpace, machine: DistributedMachine, *,
                 n_workers: int | None = None, mode: str = "auto",
                 strategy: str = "auto", use_overlap: bool = False,
                 fused: bool = True, replay: bool = True) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise MachineError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        if strategy not in ("auto", "oracle", "analytic"):
            raise ValueError(f"unknown strategy {strategy!r}")
        p = machine.config.n_processors
        self.ds = ds
        self.machine = machine
        self.strategy = strategy
        self.use_overlap = use_overlap
        self.fused = bool(fused)
        #: whether :meth:`execute_loop` may compile trip-invariant loops
        #: into worker-resident replay programs (needs the fused plans)
        self.replay = bool(replay)
        #: pool dispatches (statement or window) — the golden
        #: replay-refusal tests assert a refused loop falls back here
        self.dispatch_count = 0
        #: worker-resident loops replayed
        self.replay_count = 0
        self.n_workers = p if n_workers is None else int(n_workers)
        if not 1 <= self.n_workers <= p:
            raise MachineError(
                f"n_workers must be in 1..{p}, got {self.n_workers}")
        self.mode = mode
        #: deposit policy; replaced by the program-level optimizer
        self.accountant: Any = None
        self._pool: _WorkerPool | None = None
        #: cache key -> (serial, per-worker tasks, schedule pins); keys
        #: are id(routing schedule) tuples, pinning the schedule objects
        #: so ids stay unique while cached
        self._tasks: dict[Any, Any] = {}
        self._sent: set[int] = set()
        self._serial = 0
        #: guards the task-split LRU (and the serial counter): the
        #: serving stack executes sessions from multiple threads, and
        #: the LRU refresh/eviction pops are not atomic
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __enter__(self) -> "SpmdExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the workers and release the shared buffers (idempotent).
        The next :meth:`execute` forks a fresh pool over the then-current
        arrays."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        with self._lock:
            self._tasks.clear()
            self._sent.clear()

    def _restart_pool(self) -> None:
        """Replace the worker pool without dropping the compiled task
        splits: the master-side plans (and their serials) survive, only
        the workers' caches are gone — every split is re-shipped on its
        next use."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        with self._lock:
            self._sent.clear()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> _WorkerPool:
        if self._pool is None:
            self._pool = _WorkerPool(self.ds, self.n_workers, self.mode)
            self._sent.clear()
        return self._pool

    @property
    def pool_mode(self) -> str:
        """The worker substrate actually in use ('process'/'thread')."""
        return self._ensure_pool().mode

    def refresh(self, *names: str) -> None:
        """Re-upload the canonical values of ``names`` (all arrays when
        empty) into the shared mirrors — needed only if array data was
        mutated outside this executor mid-session (process mode)."""
        pool = self._ensure_pool()
        for name in names or tuple(pool.shared):
            pool.upload(self.ds, name)

    def _prepare(self, names: Iterable[str]) -> _WorkerPool:
        """Pool coverage + array binding shared by both execution paths.

        Layout mutations need no sweep here: task splits are keyed on
        the *identity* of routing-schedule objects pinned in the LRU, and
        a REDISTRIBUTE/REALIGN/DEALLOCATE drops the affected schedules
        from the :class:`~repro.core.dataspace.ScheduleCache`, so the
        next ``schedule_for`` returns a fresh object — a natural task
        miss.  Entries of *unaffected* alignment forests stay reachable
        and warm (matching the cache's fine-grained invalidation);
        entries for dropped schedules become unreachable and age out of
        the bounded LRU.
        """
        ds = self.ds
        pool = self._ensure_pool()
        if not pool.covers(ds, names):
            # an array was ALLOCATEd or re-allocated after the workers
            # forked: restart the pool over the current arrays, keeping
            # the compiled window plans of unaffected forests warm.  The
            # canonical storage is authoritative at statement boundaries
            # (every written section is downloaded), so this is lossless.
            self._restart_pool()
            pool = self._ensure_pool()
        for name in names:
            pool.bind_array(ds, name)
        return pool

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment, tag: str = "") -> ExecutionReport:
        """Run one assignment on the workers; returns the same report —
        and leaves the machine in the same state — as the simulator."""
        if self.fused:
            return self._execute_window([stmt], tag)[0]
        return self._execute_legacy(stmt, tag)

    def execute_all(self, stmts: Iterable[Assignment], tag: str = ""
                    ) -> list[ExecutionReport]:
        """Run a statement sequence.  On the fused path, consecutive
        statements with no cross-statement read/write overlap form one
        fusion window executed under a single phase barrier (a
        statement's own LHS-in-RHS overlap stays within its window: the
        barrier orders its reads before its writes)."""
        stmts = list(stmts)
        if not self.fused:
            return [self._execute_legacy(s, tag) for s in stmts]
        reports: list[ExecutionReport] = []
        for window in fusion_windows(stmts):
            if _DEBUG_WINDOWS:
                from repro.engine.analysis import assert_window_race_free
                assert_window_race_free(window)
            reports.extend(self._execute_window(window, tag))
        return reports

    def execute_loop(self, stmts: Sequence[Assignment], trips: int,
                     tag: str = "") -> list[ExecutionReport]:
        """Run ``trips`` trips of a trip-invariant statement body as a
        worker-resident replay program: ship every fusion window's plan
        once, send one ``loop`` message, and let the workers replay all
        trips over the :class:`SenseBarrier` with zero coordinator
        traffic between trips.  The coordinator charges the (cached)
        counting schedules once per trip in program order while the
        workers run ahead, so the returned reports — and the machine
        state — are bit-identical to ``trips`` consecutive
        :meth:`execute_all` calls (which is also the literal fallback
        when ``fused`` or ``replay`` is off).

        The *caller* owns replay legality: only hand a body here when
        its loop is proven trip-invariant
        (:meth:`~repro.engine.ir.LoopNode.is_trip_invariant`), otherwise
        the trip-0 schedules this method compiles once would be replayed
        against layouts they no longer describe.
        """
        stmts = list(stmts)
        if trips <= 0 or not stmts:
            return []
        if not (self.fused and self.replay):
            reports: list[ExecutionReport] = []
            for _ in range(trips):
                reports.extend(self.execute_all(stmts, tag))
            return reports
        t0 = perf_counter()
        ds = self.ds
        p = self.machine.config.n_processors
        windows = fusion_windows(stmts)
        if _DEBUG_WINDOWS:
            from repro.engine.analysis import assert_window_race_free
            for window in windows:
                assert_window_race_free(window)
        # compile every window's routing + counting schedules once —
        # trip invariance makes trip 0's schedules valid for all trips
        names: set[str] = set()
        win_routes: list[list[Any]] = []
        win_counts: list[list[Any]] = []
        for window in windows:
            route_scheds: list[Any] = []
            count_scheds: list[Any] = []
            for stmt in window:
                stmt.validate(ds)
                route_scheds.append(
                    schedule_for(ds, stmt, p, routing=True))
                count_scheds.append(
                    schedule_for(ds, stmt, p, strategy=self.strategy,
                                 use_overlap=self.use_overlap))
                names.add(stmt.lhs.name)
                names.update(r.name for r in stmt.rhs.refs())
            win_routes.append(route_scheds)
            win_counts.append(count_scheds)
        pool = self._prepare(names)
        serials: list[int] = []
        for window, routes in zip(windows, win_routes):
            serial, tasks = self._window_tasks_for(routes, window)
            if serial not in self._sent:
                pool.send_task(serial, tasks)
                self._sent.add(serial)
            serials.append(serial)
        with self._lock:
            loop_id = self._serial
            self._serial += 1
        pool.start_loop(loop_id, serials, trips)
        # the workers are now running ahead; the coordinator charges the
        # trip-invariant counting schedules per trip in program order
        # (invariant 8: run-ahead is licensed only inside a proven
        # trip-invariant loop, where charges cannot depend on worker
        # progress)
        loop_reports: list[ExecutionReport] = []
        for _ in range(trips):
            for counts in win_counts:
                first = True
                for cs in counts:
                    report = charge_schedule(self.machine, cs, tag,
                                             accountant=self.accountant)
                    # two SenseBarrier crossings per window per trip:
                    # the pre-write phase barrier + the post-write
                    # crossing replacing the coordinator ack round
                    report.barrier_count = 2 if first else 0
                    first = False
                    loop_reports.append(report)
        phases = pool.finish_loop(loop_id)
        for window in windows:
            for stmt in window:
                pool.download(ds, stmt.lhs.name,
                              section_slicer(stmt.lhs.section(ds)))
        wall = perf_counter() - t0
        for report in loop_reports:
            report.wall_s = wall / len(loop_reports)
        loop_reports[0].per_phase_wall = phases
        self.replay_count += 1
        return loop_reports

    # ------------------------------------------------------------------
    def _execute_legacy(self, stmt: Assignment, tag: str
                        ) -> ExecutionReport:
        """The unfused per-statement path: per-leaf gathers and a
        gather/write barrier pair."""
        t0 = perf_counter()
        ds = self.ds
        p = self.machine.config.n_processors
        stmt.validate(ds)
        route_sched = schedule_for(ds, stmt, p, routing=True)
        count_sched = schedule_for(ds, stmt, p, strategy=self.strategy,
                                   use_overlap=self.use_overlap)
        names = {stmt.lhs.name, *(r.name for r in stmt.rhs.refs())}
        pool = self._prepare(names)
        serial, tasks = self._tasks_for(route_sched, stmt)
        first = serial not in self._sent
        self.dispatch_count += 1
        phases = pool.run_statement(serial, tasks if first else None)
        self._sent.add(serial)
        pool.download(ds, stmt.lhs.name,
                      section_slicer(stmt.lhs.section(ds)))
        report = charge_schedule(self.machine, count_sched, tag,
                                 accountant=self.accountant)
        report.wall_s = perf_counter() - t0
        report.barrier_count = 2
        report.per_phase_wall = phases
        return report

    def _execute_window(self, stmts: Sequence[Assignment], tag: str
                        ) -> list[ExecutionReport]:
        """The fused path: one dispatch, one phase barrier, one ack
        round for a whole fusion window."""
        t0 = perf_counter()
        ds = self.ds
        p = self.machine.config.n_processors
        route_scheds: list[Any] = []
        count_scheds: list[Any] = []
        names: set[str] = set()
        for stmt in stmts:
            stmt.validate(ds)
            route_scheds.append(schedule_for(ds, stmt, p, routing=True))
            count_scheds.append(
                schedule_for(ds, stmt, p, strategy=self.strategy,
                             use_overlap=self.use_overlap))
            names.add(stmt.lhs.name)
            names.update(r.name for r in stmt.rhs.refs())
        pool = self._prepare(names)
        serial, tasks = self._window_tasks_for(route_scheds, stmts)
        first = serial not in self._sent
        self.dispatch_count += 1
        phases = pool.run_statement(serial, tasks if first else None)
        self._sent.add(serial)
        for stmt in stmts:
            pool.download(ds, stmt.lhs.name,
                          section_slicer(stmt.lhs.section(ds)))
        # accounting is charged per statement in program order — the
        # simulator's exact deposits, independent of the fused numerics
        reports = [charge_schedule(self.machine, cs, tag,
                                   accountant=self.accountant)
                   for cs in count_scheds]
        wall = perf_counter() - t0
        for report in reports:
            report.wall_s = wall / len(reports)
        reports[0].barrier_count = 1    # the window's single barrier
        reports[0].per_phase_wall = phases
        return reports

    # ------------------------------------------------------------------
    def _evict_to_fit(self) -> None:
        while len(self._tasks) >= _TASK_CACHE_MAX:
            old_serial, _, _ = self._tasks.pop(next(iter(self._tasks)))
            if self._pool is not None:
                self._pool.drop_task(old_serial)
            self._sent.discard(old_serial)

    def _window_tasks_for(self, route_scheds: Sequence[Any],
                          stmts: Sequence[Assignment]
                          ) -> tuple[int, list[WindowTask]]:
        """The per-worker window plans of one fusion window, memoized on
        the routing-schedule objects (Jacobi iterations 2..N reuse
        them).  Shares the LRU table (and its bound) with the unfused
        splits."""
        key = ("w",) + tuple(id(rs) for rs in route_scheds)
        with self._lock:
            hit = self._tasks.get(key)
            if hit is not None:
                self._tasks[key] = self._tasks.pop(key)   # LRU refresh
                return hit[0], hit[1]
            self._evict_to_fit()
            serial = self._serial
            self._serial += 1
        # cross-session sharing: window plans are content-addressed in
        # the process-wide plan store by the routing schedules' content
        # keys plus the worker split, the same way the schedules
        # themselves are.  An adopted plan only needs its executor-local
        # serial re-stamped (plans are otherwise scope-independent:
        # layouts and domains are pinned by the content keys).
        store = getattr(self.ds, "plan_store", None)
        if store is None:   # explicit: an empty store is len-0 falsy
            store = active_plan_store()
        content = None
        if store is not None:
            plan_keys = tuple(getattr(rs, "plan_key", None)
                              for rs in route_scheds)
            if all(k is not None for k in plan_keys):
                content = ("wtask", plan_keys,
                           self.machine.config.n_processors,
                           self.n_workers)
                shared = store.get(content)
                if shared is not None:
                    tasks = [dataclasses.replace(t, serial=serial)
                             for t in shared]
                    with self._lock:
                        self._tasks[key] = (serial, tasks,
                                            tuple(route_scheds))
                    return serial, tasks
        tasks = _compile_window(self.ds, route_scheds, stmts,
                                self.machine.config.n_processors,
                                self.n_workers, serial)
        with self._lock:
            self._tasks[key] = (serial, tasks, tuple(route_scheds))
        if content is not None:
            store.put(content, tuple(
                dataclasses.replace(t, serial=-1) for t in tasks))
        return serial, tasks

    def _tasks_for(self, route_sched: Any, stmt: Assignment
                   ) -> tuple[int, list[WorkerTask]]:
        """The per-worker task split of one routing schedule (unfused
        path), memoized on the schedule object.  The table is
        LRU-bounded at ``_TASK_CACHE_MAX``; evictions also drop the
        split from every worker's cache."""
        with self._lock:
            hit = self._tasks.get(id(route_sched))
            if hit is not None:
                # LRU refresh
                self._tasks[id(route_sched)] = self._tasks.pop(
                    id(route_sched))
                return hit[0], hit[1]
            self._evict_to_fit()
        ds = self.ds
        p = route_sched.n_processors
        w = self.n_workers
        # contiguous unit -> worker grouping (identity when W == P)
        wmap = (np.arange(p, dtype=np.int64) * w) // p
        wdst = wmap[route_sched.lhs_owner_flat]
        shape = route_sched.iteration_shape
        lhs_slicer = section_slicer(stmt.lhs.section(ds))
        lhs_dtype = ds.arrays[stmt.lhs.name].dtype
        with self._lock:
            serial = self._serial
            self._serial += 1
        tasks: list[WorkerTask] = []
        leaves = unique_refs(stmt.rhs)
        for worker in range(w):
            mask = wdst == worker
            my_pos = np.nonzero(mask)[0]
            refs: list[RefGather] = []
            for ref, route in zip(leaves, route_sched.routes):
                parts: list[tuple[np.ndarray, np.ndarray]] = []
                local_pos = np.nonzero(route.local_mask & mask)[0]
                if local_pos.size:
                    parts.append(
                        (local_pos, np.searchsorted(my_pos, local_pos)))
                for _, dst_unit, positions in route.chunks:
                    if wmap[dst_unit] == worker and positions.size:
                        parts.append(
                            (positions,
                             np.searchsorted(my_pos, positions)))
                refs.append(RefGather(ref.name,
                                      section_slicer(ref.section(ds)),
                                      tuple(parts)))
            tasks.append(WorkerTask(
                serial=serial, shape=tuple(shape), lhs_name=stmt.lhs.name,
                lhs_slicer=lhs_slicer, lhs_dtype=lhs_dtype, my_pos=my_pos,
                refs=tuple(refs), rhs=stmt.rhs))
        with self._lock:
            self._tasks[id(route_sched)] = (serial, tasks, route_sched)
        return serial, tasks
