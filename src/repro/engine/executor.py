"""The simulated executor: sequential numerics + exact comm accounting.

:class:`SimulatedExecutor` runs statements against a data space and a
machine: the numeric effect is the sequential reference semantics (so the
program's data evolves exactly as Fortran defines), while communication
and per-processor work are charged to the machine ledger.  Three comm
accounting strategies:

* ``"oracle"``   — dense owner-map comparison (always exact);
* ``"analytic"`` — closed-form regular sections (raises on unsupported
  mappings);
* ``"auto"``     — analytic when possible, oracle otherwise (default).

Elapsed time is charged through
:meth:`~repro.machine.simulator.DistributedMachine.charge_collective`:
each reference's compiled pattern classification
(:mod:`repro.engine.lowering`) routes recognized shapes — stencil
shifts, replication broadcasts/allgathers, dense remaps — to the
collective-tree formulas of :mod:`repro.machine.collectives`, while the
deposited words matrices stay bit-identical to the point-to-point model.

Reports carry the aggregate matrix, per-reference splits and the
per-reference pattern attribution so the experiments can attribute
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.reference import execute_sequential
from repro.engine.schedule import schedule_for
from repro.machine.simulator import DistributedMachine

__all__ = ["Accountant", "SimulatedExecutor", "ExecutionReport",
           "charge_schedule"]


class Accountant:
    """The deposit seam between compiled schedules and the machine.

    Every communication charge an executor makes flows through one
    :meth:`deposit` call; this default implementation charges the
    machine unchanged, so executors behave exactly as before.  The
    program-level optimizer (:mod:`repro.engine.passes`) substitutes an
    accounting policy that may *skip* a deposit (the data is already
    resident — halo validity / communication CSE) or *buffer* it into a
    fusion window (cross-statement message coalescing), without the
    executors knowing.  Numerics never route through an accountant: it
    only decides what the machine is charged.
    """

    def deposit(self, machine: DistributedMachine, words, lowering,
                tag: str, *, kind: str = "ref", ref: str = "",
                source: str = "", lhs_key: bytes = b"",
                sources: tuple = (), ghosts=None):
        """Charge one words matrix; returns the action taken
        (``'charged'`` | ``'fused'`` | ``'halo-skip'`` | ``'cse-skip'``
        | ``'subsume-skip'`` | ``'local'``) — or an ``(action, words)``
        tuple when only part of the exchange reached the machine (the
        subsumption pass zeroing element-covered cells).  ``ghosts`` is
        the reference's per-cell element identity
        (:attr:`~repro.engine.schedule.RefSchedule.ghosts`), ``None``
        when not compiled."""
        machine.charge_collective(words, lowering, tag=tag)
        return "charged"

    def note_write(self, name: str) -> None:
        """An executed statement just wrote array ``name``."""

    def flush(self) -> None:
        """Deposit any buffered (coalesced) traffic now."""


#: the stateless pass-through used when no optimizer is attached
DEFAULT_ACCOUNTANT = Accountant()


@dataclass
class ExecutionReport:
    """Accounting for one executed statement."""

    statement: str
    #: aggregate (P, P) words matrix over all RHS references
    words: np.ndarray
    #: per-reference (ref string, matrix, local, off) tuples
    per_ref: list[tuple[str, np.ndarray, int, int]] = field(
        default_factory=list)
    #: per-processor iteration counts (owner-computes work)
    work: np.ndarray | None = None
    #: which comm strategy each reference used
    strategies: dict[str, str] = field(default_factory=dict)
    #: classified communication pattern per reference (``'*'`` for the
    #: bulk overlap exchange) — see :mod:`repro.engine.lowering`
    patterns: dict[str, str] = field(default_factory=dict)
    #: what the accountant did with each reference's deposit
    #: ('charged' | 'fused' | 'halo-skip' | 'cse-skip' | 'local');
    #: ``words``/``per_ref``/``patterns`` always carry the full logical
    #: traffic regardless, so attribution survives fusion
    comm_actions: dict[str, str] = field(default_factory=dict)
    #: words physically charged to the machine for this statement
    #: (== total_words when nothing was skipped)
    charged_words: int = 0
    #: wall-clock seconds the backend spent producing this statement's
    #: numeric effect (a fused SPMD window's wall is split evenly over
    #: its statements, so sums over a program stay honest)
    wall_s: float = 0.0
    #: synchronization barriers the backend crossed for this statement:
    #: 0 for the sequential executors, 2 per statement on the unfused
    #: SPMD path, and exactly 1 per fusion window on the fused path
    #: (carried by the window's first report)
    barrier_count: int = 0
    #: wall seconds per execution phase (e.g. ``'gather'``/``'write'``,
    #: each the max across workers), on the report that carries the
    #: window's barrier count
    per_phase_wall: dict[str, float] = field(default_factory=dict)

    @property
    def total_words(self) -> int:
        return int(self.words.sum())

    @property
    def saved_words(self) -> int:
        """Logical words the optimizer did not re-move."""
        return self.total_words - self.charged_words

    def words_by_pattern(self) -> dict[str, int]:
        """Total words attributed to each classified pattern (references
        that moved nothing contribute no bucket)."""
        if "*" in self.patterns:   # bulk overlap exchange
            return {self.patterns["*"]: self.total_words}
        out: dict[str, int] = {}
        for ref, matrix, _, _ in self.per_ref:
            moved = int(matrix.sum())
            if moved:
                pattern = self.patterns.get(ref, "pointwise")
                out[pattern] = out.get(pattern, 0) + moved
        return out

    @property
    def total_messages(self) -> int:
        return int(np.count_nonzero(self.words))

    @property
    def local_refs(self) -> int:
        return sum(n_local for _, _, n_local, _ in self.per_ref)

    @property
    def off_processor_refs(self) -> int:
        return sum(o for _, _, _, o in self.per_ref)

    @property
    def locality(self) -> float:
        total = self.local_refs + self.off_processor_refs
        return self.local_refs / total if total else 1.0

    def summary(self) -> str:
        return (f"{self.statement}: words={self.total_words} "
                f"msgs={self.total_messages} locality={self.locality:.3f}")


def charge_schedule(machine: DistributedMachine, sched, tag: str = "",
                    accountant: Accountant | None = None
                    ) -> ExecutionReport:
    """Charge one compiled *counting* schedule to a machine and build its
    report.

    This is the single accounting path shared by
    :class:`SimulatedExecutor` and the parallel
    :class:`~repro.engine.spmd.SpmdExecutor`: both executors deposit the
    same schedule objects through it, so their words matrices, ledger
    records, per-pattern attribution and elapsed model are bit-identical
    by construction (the three-way differential harness re-proves it).
    Deposits route through ``accountant`` (default: charge unchanged);
    the report's ``per_ref``/``patterns`` attribution is always the full
    logical traffic, while ``charged_words``/``comm_actions`` record
    what physically reached the machine.
    """
    acct = accountant if accountant is not None else DEFAULT_ACCOUNTANT
    p = machine.config.n_processors
    machine.compute(sched.work)
    report = ExecutionReport(sched.statement,
                             np.zeros((p, p), dtype=np.int64),
                             work=sched.work)
    base_tag = tag or sched.statement
    if sched.overlap is not None:
        action = acct.deposit(
            machine, sched.overlap.words, sched.overlap_lowering,
            f"{base_tag}#overlap", kind="overlap", ref="*",
            lhs_key=sched.lhs_key, sources=sched.overlap.sources)
        report.words += sched.overlap.words
        report.strategies["*"] = "overlap"
        report.patterns["*"] = sched.overlap_lowering.pattern.value
        report.comm_actions["*"] = action
        if action in ("charged", "fused"):
            report.charged_words += sched.overlap.total_words
        # reference-level locality is still reported (without
        # double-charging the machine) for comparability
        for rs in sched.refs:
            machine.stats.record_refs(rs.local, rs.off)
            report.per_ref.append((rs.ref, rs.words, rs.local, rs.off))
        acct.note_write(sched.lhs_name)
        # observation-only: an attached autotune profile reads the
        # schedule/report after charging; it never touches the ledgers
        profile = getattr(acct, "profile", None)
        if profile is not None:
            profile.observe(sched, report)
        return report
    for k, rs in enumerate(sched.refs):
        result = acct.deposit(
            machine, rs.words, rs.lowering,
            f"{base_tag}#ref{k}:{rs.ref}", kind="ref", ref=rs.ref,
            source=rs.source, lhs_key=sched.lhs_key,
            ghosts=getattr(rs, "ghosts", None))
        if isinstance(result, tuple):
            # partial charge (subsumption zeroed covered cells)
            action, charged = result
        else:
            action = result
            charged = (int(rs.words.sum())
                       if action in ("charged", "fused") else 0)
        machine.stats.record_refs(rs.local, rs.off)
        report.per_ref.append((rs.ref, rs.words, rs.local, rs.off))
        report.strategies[rs.ref] = rs.strategy
        report.patterns[rs.ref] = rs.pattern
        report.comm_actions[rs.ref] = action
        report.charged_words += charged
        report.words += rs.words
    acct.note_write(sched.lhs_name)
    profile = getattr(acct, "profile", None)
    if profile is not None:
        profile.observe(sched, report)
    return report


class SimulatedExecutor:
    """Executes statements, charging traffic/work to a machine."""

    def __init__(self, ds: DataSpace, machine: DistributedMachine,
                 strategy: str = "auto", use_overlap: bool = False) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise ValueError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        if strategy not in ("auto", "oracle", "analytic"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.ds = ds
        self.machine = machine
        self.strategy = strategy
        #: when True, shift stencils over block-partitioned mappings are
        #: charged as bulk ghost-region (overlap) exchanges — SUPERB's
        #: optimization [11] — instead of per-reference traffic
        self.use_overlap = use_overlap
        #: deposit policy; replaced by the program-level optimizer
        self.accountant: Accountant | None = None

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment, tag: str = "") -> ExecutionReport:
        """Run one assignment: numerics + communication + work.

        Communication sets come from the memoized compiled schedule
        (:func:`repro.engine.schedule.schedule_for`): the first execution
        of a statement shape compiles it, repeats are cache hits, and
        REDISTRIBUTE/REALIGN invalidate.
        """
        ds = self.ds
        p = self.machine.config.n_processors
        t0 = perf_counter()
        stmt.validate(ds)
        execute_sequential(ds, stmt)
        t1 = perf_counter()
        sched = schedule_for(ds, stmt, p, strategy=self.strategy,
                             use_overlap=self.use_overlap)
        report = charge_schedule(self.machine, sched, tag,
                                 accountant=self.accountant)
        t2 = perf_counter()
        report.wall_s = t2 - t0
        report.per_phase_wall = {"numerics": t1 - t0, "charge": t2 - t1}
        return report

    def execute_all(self, stmts, tag: str = "") -> list[ExecutionReport]:
        return [self.execute(s, tag=tag) for s in stmts]
