"""The simulated executor: sequential numerics + exact comm accounting.

:class:`SimulatedExecutor` runs statements against a data space and a
machine: the numeric effect is the sequential reference semantics (so the
program's data evolves exactly as Fortran defines), while communication
and per-processor work are charged to the machine ledger.  Three comm
accounting strategies:

* ``"oracle"``   — dense owner-map comparison (always exact);
* ``"analytic"`` — closed-form regular sections (raises on unsupported
  mappings);
* ``"auto"``     — analytic when possible, oracle otherwise (default).

Reports carry both the aggregate matrix and per-reference splits so the
experiments can attribute traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.commsets import (
    AnalyticUnsupported,
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.engine.owner_computes import section_owner_map, work_vector
from repro.engine.reference import execute_sequential
from repro.machine.simulator import DistributedMachine

__all__ = ["SimulatedExecutor", "ExecutionReport"]


@dataclass
class ExecutionReport:
    """Accounting for one executed statement."""

    statement: str
    #: aggregate (P, P) words matrix over all RHS references
    words: np.ndarray
    #: per-reference (ref string, matrix, local, off) tuples
    per_ref: list[tuple[str, np.ndarray, int, int]] = field(
        default_factory=list)
    #: per-processor iteration counts (owner-computes work)
    work: np.ndarray | None = None
    #: which comm strategy each reference used
    strategies: dict[str, str] = field(default_factory=dict)

    @property
    def total_words(self) -> int:
        return int(self.words.sum())

    @property
    def total_messages(self) -> int:
        return int(np.count_nonzero(self.words))

    @property
    def local_refs(self) -> int:
        return sum(l for _, _, l, _ in self.per_ref)

    @property
    def off_processor_refs(self) -> int:
        return sum(o for _, _, _, o in self.per_ref)

    @property
    def locality(self) -> float:
        total = self.local_refs + self.off_processor_refs
        return self.local_refs / total if total else 1.0

    def summary(self) -> str:
        return (f"{self.statement}: words={self.total_words} "
                f"msgs={self.total_messages} locality={self.locality:.3f}")


class SimulatedExecutor:
    """Executes statements, charging traffic/work to a machine."""

    def __init__(self, ds: DataSpace, machine: DistributedMachine,
                 strategy: str = "auto", use_overlap: bool = False) -> None:
        if machine.config.n_processors < ds.ap.size:
            raise ValueError(
                f"machine has {machine.config.n_processors} processors "
                f"but the data space's AP needs {ds.ap.size}")
        if strategy not in ("auto", "oracle", "analytic"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.ds = ds
        self.machine = machine
        self.strategy = strategy
        #: when True, shift stencils over block-partitioned mappings are
        #: charged as bulk ghost-region (overlap) exchanges — SUPERB's
        #: optimization [11] — instead of per-reference traffic
        self.use_overlap = use_overlap

    # ------------------------------------------------------------------
    def execute(self, stmt: Assignment, tag: str = "") -> ExecutionReport:
        """Run one assignment: numerics + communication + work."""
        ds = self.ds
        p = self.machine.config.n_processors
        stmt.validate(ds)
        execute_sequential(ds, stmt)

        lhs_dist = ds.distribution_of(stmt.lhs.name)
        lhs_section = stmt.lhs.section(ds)
        lhs_map = section_owner_map(lhs_dist, lhs_section)
        n_refs = max(len(stmt.rhs.refs()), 1)
        work = work_vector(lhs_map, p, ops_per_element=n_refs)
        self.machine.compute(work)

        report = ExecutionReport(str(stmt),
                                 np.zeros((p, p), dtype=np.int64),
                                 work=work)
        if self.use_overlap:
            from repro.engine.overlap import overlap_plan
            plan = overlap_plan(ds, stmt, p)
            if plan is not None:
                self.machine.exchange(plan.words,
                                      tag=f"{tag or stmt}#overlap")
                report.words += plan.words
                report.strategies["*"] = "overlap"
                # reference-level locality is still reported (without
                # double-charging the machine) for comparability
                for k, ref in enumerate(stmt.rhs.refs()):
                    ref_dist = ds.distribution_of(ref.name)
                    matrix, local, off = comm_matrix(
                        lhs_dist, lhs_section, ref_dist,
                        ref.section(ds), p)
                    self.machine.stats.record_refs(local, off)
                    report.per_ref.append((str(ref), matrix, local, off))
                return report
        for k, ref in enumerate(stmt.rhs.refs()):
            ref_dist = ds.distribution_of(ref.name)
            ref_section = ref.section(ds)
            used = "oracle"
            matrix = None
            if self.strategy in ("auto", "analytic"):
                try:
                    pieces = analytic_comm_sets(
                        lhs_dist, lhs_section, ref_dist, ref_section)
                    matrix = words_matrix_from_pieces(pieces, p)
                    used = "analytic"
                    off = int(matrix.sum())
                    local = lhs_section.size - off
                except AnalyticUnsupported:
                    if self.strategy == "analytic":
                        raise
                    matrix = None
            if matrix is None:
                matrix, local, off = comm_matrix(
                    lhs_dist, lhs_section, ref_dist, ref_section, p)
            mtag = tag or str(stmt)
            self.machine.exchange(matrix, tag=f"{mtag}#ref{k}:{ref}")
            self.machine.stats.record_refs(local, off)
            report.per_ref.append((str(ref), matrix, local, off))
            report.strategies[str(ref)] = used
            report.words += matrix
        return report

    def execute_all(self, stmts, tag: str = "") -> list[ExecutionReport]:
        return [self.execute(s, tag=tag) for s in stmts]
