"""Overlap (ghost region) analysis for shift stencils.

SUPERB [11] introduced *overlap areas*: when an assignment's RHS reference
is the same array mapping shifted by a constant per-dimension offset (the
staggered-grid and Jacobi patterns), each processor only needs a halo of
``|offset|`` columns from each neighbour, fetched in one bulk message per
neighbour instead of element-by-element traffic.  This module detects
shift references and prices the haloed execution, which experiment E8
contrasts with the naive per-reference traffic.

Overlap plans are compiled once per statement shape into the
:class:`~repro.engine.schedule.CommSchedule` and memoized with it, so a
haloed Jacobi sweep pays the shift detection and neighbour search only on
its first iteration; the equal-mapping check below rides on the memoized
dense owner maps of the distribution layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataspace import DataSpace
from repro.distributions.distribution import FormatDistribution
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.fortran.triplet import Triplet

__all__ = ["detect_shifts", "overlap_plan", "OverlapPlan"]


def detect_shifts(ds: DataSpace, stmt: Assignment
                  ) -> dict[ArrayRef, tuple[int, ...]] | None:
    """If every RHS reference reads some array through a constant
    per-dimension shift of the LHS section (same rank, stride 1), return
    ``{ref: shift_vector}``; otherwise ``None``.

    The shift of a reference is defined positionally: iteration ``t``
    reads ``ref_triplet.lower + (t_d - 1)`` versus the LHS's
    ``lhs_triplet.lower + (t_d - 1)``, so the vector is the difference of
    the section lower bounds (classic stencil form).
    """
    lhs_sec = stmt.lhs.section(ds)
    if any(not isinstance(s, Triplet) or s.stride != 1
           for s in lhs_sec.subscripts):
        return None
    out: dict[ArrayRef, tuple[int, ...]] = {}
    for ref in stmt.rhs.refs():
        sec = ref.section(ds)
        if sec.rank != lhs_sec.rank:
            return None
        if any(not isinstance(s, Triplet) or s.stride != 1
               for s in sec.subscripts):
            return None
        shift = tuple(rt.lower - lt.lower
                      for rt, lt in zip(sec.triplets, lhs_sec.triplets))
        out[ref] = shift
    return out


@dataclass
class OverlapPlan:
    """Halo widths and bulk-message traffic for a shift stencil."""

    widths_low: tuple[int, ...]     #: halo width on the low side, per dim
    widths_high: tuple[int, ...]    #: halo width on the high side, per dim
    #: (P, P) ghost-exchange words matrix
    words: np.ndarray
    #: messages per processor pair (0/1 entries summed into the matrix)
    n_messages: int

    @property
    def total_words(self) -> int:
        return int(self.words.sum())


def overlap_plan(ds: DataSpace, stmt: Assignment,
                 n_processors: int) -> OverlapPlan | None:
    """Compute the ghost-region exchange for a same-mapping shift stencil.

    Applicable when all RHS references name arrays whose distribution
    equals the LHS array's *block-partitioned* distribution (contiguous
    owned set per dimension); returns ``None`` when not applicable.
    """
    shifts = detect_shifts(ds, stmt)
    if shifts is None:
        return None
    lhs_dist = ds.distribution_of(stmt.lhs.name)
    if not isinstance(lhs_dist, FormatDistribution) or \
            lhs_dist.is_replicated:
        return None
    for ref in shifts:
        rd = ds.distribution_of(ref.name)
        if not distributions_equal_shapes(rd, lhs_dist):
            return None
    rank = lhs_dist.domain.rank
    lo = [0] * rank
    hi = [0] * rank
    for shift in shifts.values():
        kept = stmt.lhs.section(ds).kept_dims
        for d, s in zip(kept, shift):
            if s < 0:
                lo[d] = max(lo[d], -s)
            elif s > 0:
                hi[d] = max(hi[d], s)
    # ghost exchange: for every owning unit, for every dim with nonzero
    # width, the neighbouring block supplies width * (local extent of the
    # other dims) words.
    words = np.zeros((n_processors, n_processors), dtype=np.int64)
    n_messages = 0
    units = lhs_dist.processors()
    # owned contiguous ranges per unit per dim
    owned: dict[int, list[Triplet]] = {}
    for u in units:
        trip = lhs_dist.owned_triplets(u)
        per_dim = []
        ok = True
        for dsets in trip:
            if len(dsets) != 1 or dsets[0].stride != 1:
                ok = False
                break
            per_dim.append(dsets[0])
        if not ok:
            return None   # non-contiguous (cyclic) ownership: no halo form
        owned[u] = per_dim
    for u in units:
        mine = owned[u]
        for d in range(rank):
            for width, side in ((lo[d], -1), (hi[d], +1)):
                if width == 0:
                    continue
                # find the neighbour owning the adjacent indices
                edge = mine[d].lower - 1 if side < 0 else mine[d].last + 1
                for v in units:
                    if v == u:
                        continue
                    if edge in owned[v][d] and all(
                            owned[v][k].lower == mine[k].lower
                            for k in range(rank) if k != d):
                        halo = width
                        other = 1
                        for k in range(rank):
                            if k != d:
                                other *= len(mine[k])
                        avail = len(owned[v][d])
                        words[v, u] += min(halo, avail) * other
                        n_messages += 1
                        break
    return OverlapPlan(tuple(lo), tuple(hi), words, n_messages)


def distributions_equal_shapes(a, b) -> bool:
    """Same-mapping check tolerant of equal-shape domains with different
    bounds (U(0:N) vs P(1:N) in the staggered grid): compares owner maps
    elementwise over the common shape."""
    am = a.primary_owner_map()
    bm = b.primary_owner_map()
    if am.shape != bm.shape:
        return False
    return bool(np.array_equal(am, bm))
