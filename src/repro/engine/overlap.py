"""Overlap (ghost region) analysis for shift stencils.

SUPERB [11] introduced *overlap areas*: when an assignment's RHS reference
is the same array mapping shifted by a constant per-dimension offset (the
staggered-grid and Jacobi patterns), each processor only needs a halo of
``|offset|`` columns from each neighbour, fetched in one bulk message per
neighbour instead of element-by-element traffic.  This module detects
shift references and prices the haloed execution, which experiment E8
contrasts with the naive per-reference traffic.

Overlap plans are compiled once per statement shape into the
:class:`~repro.engine.schedule.CommSchedule` and memoized with it, so a
haloed Jacobi sweep pays the shift detection and neighbour search only on
its first iteration; the equal-mapping check below rides on the memoized
dense owner maps of the distribution layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataspace import DataSpace
from repro.distributions.distribution import FormatDistribution
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.fortran.triplet import Triplet

__all__ = ["detect_shifts", "overlap_plan", "OverlapPlan"]


def detect_shifts(ds: DataSpace, stmt: Assignment
                  ) -> dict[ArrayRef, tuple[int, ...]] | None:
    """If every RHS reference reads some array through a constant
    per-dimension shift of the LHS section (same rank, stride 1), return
    ``{ref: shift_vector}``; otherwise ``None``.

    The shift of a reference is defined positionally: iteration ``t``
    reads ``ref_triplet.lower + (t_d - 1)`` versus the LHS's
    ``lhs_triplet.lower + (t_d - 1)``, so the vector is the difference of
    the section lower bounds (classic stencil form).
    """
    lhs_sec = stmt.lhs.section(ds)
    if any(not isinstance(s, Triplet) or s.stride != 1
           for s in lhs_sec.subscripts):
        return None
    out: dict[ArrayRef, tuple[int, ...]] = {}
    for ref in stmt.rhs.refs():
        sec = ref.section(ds)
        if sec.rank != lhs_sec.rank:
            return None
        if any(not isinstance(s, Triplet) or s.stride != 1
               for s in sec.subscripts):
            return None
        shift = tuple(rt.lower - lt.lower
                      for rt, lt in zip(sec.triplets, lhs_sec.triplets))
        out[ref] = shift
    return out


@dataclass
class OverlapPlan:
    """Halo widths and bulk-message traffic for a shift stencil."""

    widths_low: tuple[int, ...]     #: halo width on the low side, per dim
    widths_high: tuple[int, ...]    #: halo width on the high side, per dim
    #: (P, P) ghost-exchange words matrix
    words: np.ndarray
    #: messages per processor pair (0/1 entries summed into the matrix)
    n_messages: int
    #: arrays whose elements fill the ghost regions (sorted) — a write
    #: to any of them invalidates the resident halos
    sources: tuple[str, ...] = ()

    @property
    def total_words(self) -> int:
        return int(self.words.sum())


def overlap_plan(ds: DataSpace, stmt: Assignment,
                 n_processors: int) -> OverlapPlan | None:
    """Compute the ghost-region exchange for a same-mapping shift stencil.

    Applicable when all RHS references name arrays whose distribution
    equals the LHS array's *block-partitioned* distribution (contiguous
    owned set per dimension); returns ``None`` when not applicable.

    Axis-aligned stencils take the per-dimension face walk below: each
    nonzero halo width is satisfied by the adjacent block, walking
    outward to next-nearest blocks when the halo is wider, and bailing
    to the general path when an in-domain ghost index has no
    grid-aligned owner.  A shift vector with two or more nonzero
    components (a *diagonal* stencil such as ``(1, 1)``) also needs
    corner ghost cells the face walk never ships; those statements take
    the exact dense path of :func:`_corner_ghost_plan` instead —
    per-block ghost sets read off the dense owner map, so 9-point
    stencils get bulk halo exchanges (corners included) rather than
    falling back to general scatter.  Neither path ever under-prices.
    """
    shifts = detect_shifts(ds, stmt)
    if shifts is None:
        return None
    lhs_dist = ds.distribution_of(stmt.lhs.name)
    if not isinstance(lhs_dist, FormatDistribution) or \
            lhs_dist.is_replicated:
        return None
    for ref in shifts:
        rd = ds.distribution_of(ref.name)
        if not distributions_equal_shapes(rd, lhs_dist):
            return None
    rank = lhs_dist.domain.rank
    lo = [0] * rank
    hi = [0] * rank
    kept = stmt.lhs.section(ds).kept_dims
    #: full-rank shift vectors (section-rank shifts expanded over the
    #: kept dims; dropped dims shift by 0)
    full_shifts: set[tuple[int, ...]] = set()
    for shift in shifts.values():
        vec = [0] * rank
        for d, s in zip(kept, shift):
            vec[d] = s
            if s < 0:
                lo[d] = max(lo[d], -s)
            elif s > 0:
                hi[d] = max(hi[d], s)
        full_shifts.add(tuple(vec))
    # ghost exchange: for every owning unit, for every dim with nonzero
    # width, the neighbouring block supplies width * (local extent of the
    # other dims) words.
    words = np.zeros((n_processors, n_processors), dtype=np.int64)
    n_messages = 0
    units = lhs_dist.processors()
    # owned contiguous ranges per unit per dim
    owned: dict[int, list[Triplet]] = {}
    for u in units:
        trip = lhs_dist.owned_triplets(u)
        per_dim = []
        ok = True
        for dsets in trip:
            if len(dsets) != 1 or dsets[0].stride != 1:
                ok = False
                break
            per_dim.append(dsets[0])
        if not ok:
            return None   # non-contiguous (cyclic) ownership: no halo form
        owned[u] = per_dim
    sources = tuple(sorted({r.name for r in shifts}))
    if any(sum(1 for s in vec if s != 0) > 1 for vec in full_shifts):
        # diagonal stencil: corner ghost cells — take the exact dense
        # path (the face walk below would under-price the corners)
        return _corner_ghost_plan(lhs_dist, owned, units, full_shifts,
                                  lo, hi, n_processors, sources)
    dims = lhs_dist.domain.dims
    for u in units:
        mine = owned[u]
        for d in range(rank):
            other = 1
            for k in range(rank):
                if k != d:
                    other *= len(mine[k])
            for width, side in ((lo[d], -1), (hi[d], +1)):
                if width == 0:
                    continue
                # walk outward from the block boundary: a halo wider than
                # the adjacent block keeps going to the next-nearest
                # block(s) until every ghost index is supplied or the
                # array domain ends
                remaining = width
                edge = mine[d].lower - 1 if side < 0 else mine[d].last + 1
                while remaining > 0:
                    if edge not in dims[d]:
                        break   # halo runs off the array: nothing there
                    neighbour = None
                    for v in units:
                        if v == u:
                            continue
                        if edge in owned[v][d] and all(
                                owned[v][k].lower == mine[k].lower
                                for k in range(rank) if k != d):
                            neighbour = v
                            break
                    if neighbour is None:
                        # an in-domain ghost index with no grid-aligned
                        # owner: the face exchange cannot price it, bail
                        # to the general per-reference path
                        return None
                    block = owned[neighbour][d]
                    run = (edge - block.lower + 1 if side < 0
                           else block.last - edge + 1)
                    take = min(remaining, run)
                    words[neighbour, u] += take * other
                    n_messages += 1
                    remaining -= take
                    edge = block.lower - 1 if side < 0 else block.last + 1
    return OverlapPlan(tuple(lo), tuple(hi), words, n_messages,
                       sources=sources)


def _corner_ghost_plan(lhs_dist, owned, units, full_shifts, lo, hi,
                       n_processors: int, sources) -> OverlapPlan:
    """The exact ghost exchange of a diagonal (multi-axis) stencil.

    Each unit's ghost set is the union, over the statement's full-rank
    shift vectors, of its owned block shifted by the vector — clipped to
    the array domain, minus the block itself.  Every ghost cell is
    charged to its owner read off the dense primary owner map, so
    corner cells land on the diagonal neighbour that owns them, uneven
    blocks and halos wider than a neighbour block resolve naturally,
    and the words matrix is exactly the set of remote cells the block's
    execution can read (it never under-prices; like the face walk it
    prices whole block faces, not section-restricted ones).  One
    message per (owner, reader) pair with traffic.
    """
    dims = lhs_dist.domain.dims
    rank = lhs_dist.domain.rank
    amap = lhs_dist.primary_owner_map()
    extent = amap.shape
    words = np.zeros((n_processors, n_processors), dtype=np.int64)
    n_messages = 0
    for u in units:
        mine = owned[u]
        # block and halo bounds in 0-based map coordinates
        blo = [mine[d].lower - dims[d].lower for d in range(rank)]
        bhi = [mine[d].last - dims[d].lower for d in range(rank)]
        elo = [max(0, blo[d] - lo[d]) for d in range(rank)]
        ehi = [min(extent[d] - 1, bhi[d] + hi[d]) for d in range(rank)]
        shape = tuple(ehi[d] - elo[d] + 1 for d in range(rank))
        mask = np.zeros(shape, dtype=bool)
        for vec in full_shifts:
            if not any(vec):
                continue
            slo = [max(elo[d], blo[d] + vec[d]) for d in range(rank)]
            shi = [min(ehi[d], bhi[d] + vec[d]) for d in range(rank)]
            if any(a > b for a, b in zip(slo, shi)):
                continue   # the shifted block left the domain entirely
            mask[tuple(slice(a - e, b - e + 1)
                       for a, b, e in zip(slo, shi, elo))] = True
        # the block's own cells are local, never ghosts
        mask[tuple(slice(a - e, b - e + 1)
                   for a, b, e in zip(blo, bhi, elo))] = False
        if not mask.any():
            continue
        sub = amap[tuple(slice(a, b + 1) for a, b in zip(elo, ehi))]
        counts = np.bincount(sub[mask], minlength=n_processors)
        counts[u] = 0
        words[:, u] += counts
        n_messages += int(np.count_nonzero(counts))
    return OverlapPlan(tuple(lo), tuple(hi), words, n_messages, sources)


def distributions_equal_shapes(a, b) -> bool:
    """Same-mapping check tolerant of same-rank domains with different
    bounds (U(0:N) vs P(1:N) in the staggered grid).

    True iff, aligned by *global index*, (1) the primary owner maps agree
    elementwise over the common index region of the two domains, and
    (2) wherever one domain extends beyond the other along a dimension,
    the extending map is constant there — every out-of-range slab equals
    the adjacent face of the common region.  Condition (2) makes halo
    pricing derived from either mapping sound for the other: a boundary
    read outside the partner's domain (U's row 0 against P(1:N)) is owned
    by the same unit as the nearest common index, so it is local to the
    reader and the face exchange never under-prices it.
    """
    da, db = a.domain, b.domain
    if da.rank != db.rank:
        return False
    am = a.primary_owner_map()
    bm = b.primary_owner_map()
    lows = []
    highs = []
    for ta, tb in zip(da.dims, db.dims):
        lo = max(ta.lower, tb.lower)
        hi = min(ta.last, tb.last)
        if lo > hi:
            return False   # disjoint domains: no common region
        lows.append(lo)
        highs.append(hi)

    def common_slice(dims):
        return tuple(slice(lo - t.lower, hi - t.lower + 1)
                     for t, lo, hi in zip(dims, lows, highs))

    if not np.array_equal(am[common_slice(da.dims)],
                          bm[common_slice(db.dims)]):
        return False
    for m, dims in ((am, da.dims), (bm, db.dims)):
        for d, (t, lo, hi) in enumerate(zip(dims, lows, highs)):
            pre = lo - t.lower        # indices below the common region
            post = t.last - hi        # indices above it
            if pre:
                slab = np.take(m, range(pre), axis=d)
                face = np.take(m, [pre], axis=d)
                if not np.array_equal(slab, np.broadcast_to(
                        face, slab.shape)):
                    return False
            if post:
                extent = m.shape[d]
                slab = np.take(m, range(extent - post, extent), axis=d)
                face = np.take(m, [extent - post - 1], axis=d)
                if not np.array_equal(slab, np.broadcast_to(
                        face, slab.shape)):
                    return False
    return True
