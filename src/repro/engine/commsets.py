"""Communication-set computation: vectorized oracle + analytic sets.

Under owner-computes, processor ``p`` executes the iterations whose LHS
element it owns; for every RHS reference, the iterations whose operand
lives on ``q != p`` require a message ``q -> p``.  Two independent
implementations compute this traffic:

* :func:`comm_matrix` — the **oracle**: slice both owner maps by the
  respective sections, compare elementwise (one fused NumPy pass), and
  bincount the (src, dst) pairs.  Always applicable; exact.
* :func:`analytic_comm_sets` — the **compile-time technique** of SUPERB /
  the Vienna Fortran Compilation System [13]: ownership of every format
  distribution is a per-dimension union of subscript triplets, sections
  are per-dimension triplets, and the set of iterations p needs from q is
  the per-dimension intersection of their pre-images — a *regular
  section*, computed in closed form with the triplet algebra (CRT
  intersections), independent of array size.  Property tests prove it
  equals the oracle.

The iteration space of a statement is the LHS section's standard domain;
both section ranks must agree (Fortran conformance), and iteration
position ``t`` touches LHS element ``L_d.value_at(t_d - 1)`` and RHS
element ``R_d.value_at(t_d - 1)`` per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.distributions.distribution import Distribution, FormatDistribution
from repro.engine.owner_computes import section_owner_map
from repro.errors import MachineError
from repro.fortran.section import ArraySection
from repro.fortran.triplet import EMPTY_TRIPLET, Triplet

__all__ = ["comm_matrix", "analytic_comm_sets", "CommPiece",
           "AnalyticUnsupported", "words_matrix_from_pieces",
           "build_routing"]

#: size above which the exact replicated-ownership path refuses to run
_REPLICATED_ORACLE_LIMIT = 1_000_000


class AnalyticUnsupported(MachineError):
    """The analytic path cannot handle this mapping; use the oracle."""


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------
def comm_matrix(lhs_dist: Distribution, lhs_section: ArraySection,
                ref_dist: Distribution, ref_section: ArraySection,
                n_processors: int) -> tuple[np.ndarray, int, int]:
    """Exact (P, P) words matrix for one RHS reference.

    Returns ``(matrix, local_refs, off_refs)`` with ``matrix[q, p]`` the
    number of elements moving ``q -> p``.
    """
    if lhs_section.shape != ref_section.shape:
        raise MachineError(
            f"non-conformable sections {lhs_section.shape} vs "
            f"{ref_section.shape}")
    p = n_processors
    if not ref_dist.is_replicated:
        dst = np.asfortranarray(
            section_owner_map(lhs_dist, lhs_section)).reshape(-1, order="F")
        src = np.asfortranarray(
            section_owner_map(ref_dist, ref_section)).reshape(-1, order="F")
        mask = src != dst
        off = int(mask.sum())
        local = int(mask.size - off)
        pairs = src[mask] * p + dst[mask]
        matrix = np.bincount(pairs, minlength=p * p).reshape(p, p)
        return matrix, local, off
    # Replicated operand: an iteration is local whenever the executing
    # processor is *one of* the owners; otherwise fetch from the smallest
    # owner.  Exact elementwise walk (sizes guarded).
    size = lhs_section.size
    if size > _REPLICATED_ORACLE_LIMIT:
        raise MachineError(
            f"replicated-ownership oracle refused for {size} elements")
    matrix = np.zeros((p, p), dtype=np.int64)
    local = off = 0
    it_dom = lhs_section.domain()
    for t in it_dom:
        dst_u = lhs_dist.primary_owner(lhs_section.to_parent(t))
        owners = ref_dist.owners(ref_section.to_parent(t))
        if dst_u in owners:
            local += 1
        else:
            off += 1
            matrix[min(owners), dst_u] += 1
    return matrix, local, off


def build_routing(src: np.ndarray, dst: np.ndarray, n_processors: int
                  ) -> tuple[np.ndarray, tuple[tuple[int, int, np.ndarray],
                                               ...]]:
    """Compile the message routing of one reference from its flattened
    owner maps: the boolean local mask plus one ``(src, dst, positions)``
    chunk per (sender, receiver) pair, in sender-major order.

    One stable argsort groups every off-processor iteration by its
    (src, dst) pair; the chunks are contiguous slices of the sorted
    position vector, so materializing a schedule's messages is pure array
    slicing.  Consumed by the schedule compiler
    (:mod:`repro.engine.schedule`) and, through it, by the payload-routing
    executor.
    """
    local_mask = src == dst
    remote = np.nonzero(~local_mask)[0]
    chunks: list[tuple[int, int, np.ndarray]] = []
    if remote.size:
        pairs = src[remote] * n_processors + dst[remote]
        order = np.argsort(pairs, kind="stable")
        sorted_pos = remote[order]
        sorted_pairs = pairs[order]
        boundaries = np.nonzero(np.diff(sorted_pairs))[0] + 1
        for chunk in np.split(sorted_pos, boundaries):
            chunks.append((int(src[chunk[0]]), int(dst[chunk[0]]), chunk))
    return local_mask, tuple(chunks)


# ----------------------------------------------------------------------
# Analytic regular sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommPiece:
    """One q -> p transfer described as a regular section of the
    iteration space: per dimension, a union of subscript triplets (the
    transferred set is the cartesian product of the per-dim unions)."""

    src: int
    dst: int
    dim_sets: tuple[tuple[Triplet, ...], ...]

    @property
    def words(self) -> int:
        n = 1
        for dim in self.dim_sets:
            n *= sum(len(t) for t in dim)
        return n

    def __str__(self) -> str:
        dims = " x ".join(
            "{" + ",".join(str(t) for t in ds) + "}" for ds in self.dim_sets)
        return f"P{self.src}->P{self.dst}: {dims} ({self.words} words)"


def _preimage(global_piece: Triplet, sec_triplet: Triplet) -> Triplet:
    """Iteration positions (1-based) whose section element lies in
    ``global_piece``; exact triplet arithmetic."""
    c = global_piece.intersect(sec_triplet)
    if c.is_empty:
        return EMPTY_TRIPLET
    s = sec_triplet.stride
    lo = sec_triplet.lower
    p_lo = (c.lower - lo) // s + 1
    p_hi = (c.last - lo) // s + 1
    stride = c.stride // s if len(c) > 1 else 1
    if stride == 0:
        stride = 1
    return Triplet(p_lo, p_hi, stride).as_ascending_set()


def _side_iteration_sets(dist: FormatDistribution, section: ArraySection,
                         piece_limit: int
                         ) -> dict[int, list[tuple[Triplet, ...]]]:
    """For every owning unit: per iteration dimension, the union of
    iteration triplets whose element the unit owns."""
    if not isinstance(dist, FormatDistribution):
        raise AnalyticUnsupported(
            f"analytic sets need a format distribution, got "
            f"{type(dist).__name__}")
    if dist.is_replicated:
        raise AnalyticUnsupported(
            "analytic sets do not cover replicated operands")
    kept = section.kept_dims
    out: dict[int, list[tuple[Triplet, ...]]] = {}
    for unit in dist.processors():
        coords = dist.dim_coords_of_unit(unit)
        coord_of_dim: list[int] = []
        ci = iter(coords)
        for tdim in dist.target_dim_of:
            coord_of_dim.append(next(ci) if tdim is not None else 0)
        # scalar-subscripted dims: the unit participates only if its
        # coordinate owns the fixed element
        participates = True
        for j, sub in enumerate(section.subscripts):
            if not isinstance(sub, Triplet):
                dd = dist.dims[j]
                if coord_of_dim[j] not in dd.owner_coords(int(sub)):
                    participates = False
                    break
        if not participates:
            continue
        per_dim: list[tuple[Triplet, ...]] = []
        empty = False
        for d, j in enumerate(kept):
            dd = dist.dims[j]
            sec_t = section.subscripts[j]
            pieces = []
            owned = dd.owned(coord_of_dim[j])
            if len(owned) > piece_limit:
                raise AnalyticUnsupported(
                    f"{len(owned)} owned pieces exceed the analytic "
                    f"piece limit {piece_limit}")
            for og in owned:
                pre = _preimage(og, sec_t)
                if not pre.is_empty:
                    pieces.append(pre)
            if not pieces:
                empty = True
                break
            per_dim.append(tuple(pieces))
        if not empty:
            out[unit] = per_dim
    return out


def analytic_comm_sets(lhs_dist: Distribution, lhs_section: ArraySection,
                       ref_dist: Distribution, ref_section: ArraySection,
                       *, piece_limit: int = 512) -> list[CommPiece]:
    """Closed-form communication sets for one RHS reference.

    Raises :class:`AnalyticUnsupported` for mappings outside the regular-
    section family (replication, constructed distributions, more owned
    pieces than ``piece_limit``); callers fall back to the oracle.
    """
    if lhs_section.shape != ref_section.shape:
        raise MachineError(
            f"non-conformable sections {lhs_section.shape} vs "
            f"{ref_section.shape}")
    lhs_sets = _side_iteration_sets(lhs_dist, lhs_section, piece_limit)
    ref_sets = _side_iteration_sets(ref_dist, ref_section, piece_limit)
    out: list[CommPiece] = []
    for q, q_dims in ref_sets.items():
        for p, p_dims in lhs_sets.items():
            if p == q:
                continue
            dim_sets: list[tuple[Triplet, ...]] = []
            empty = False
            for qa, pa in zip(q_dims, p_dims):
                inter = []
                for a in qa:
                    for b in pa:
                        c = a.intersect(b)
                        if not c.is_empty:
                            inter.append(c)
                if not inter:
                    empty = True
                    break
                dim_sets.append(tuple(inter))
            if not empty:
                out.append(CommPiece(q, p, tuple(dim_sets)))
    return out


def words_matrix_from_pieces(pieces: Iterable[CommPiece],
                             n_processors: int) -> np.ndarray:
    """Aggregate analytic pieces into the (P, P) words matrix."""
    matrix = np.zeros((n_processors, n_processors), dtype=np.int64)
    for piece in pieces:
        matrix[piece.src, piece.dst] += piece.words
    return matrix
