"""Array assignment statements (LHS section = RHS expression)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataspace import DataSpace
from repro.engine.expr import ArrayRef, Expr
from repro.errors import ConformanceError

__all__ = ["Assignment"]


@dataclass(frozen=True)
class Assignment:
    """``lhs = rhs`` with Fortran array-assignment conformance.

    The iteration space of the statement is the LHS section's standard
    index domain; under owner-computes, processor ``p`` executes the
    iterations whose LHS element it owns.
    """

    lhs: ArrayRef
    rhs: Expr

    def validate(self, ds: DataSpace) -> tuple[int, ...]:
        """Check conformance; returns the iteration-space shape."""
        lshape = self.lhs.shape(ds)
        rshape = self.rhs.shape(ds)
        if rshape is not None and rshape != lshape:
            raise ConformanceError(
                f"{self}: LHS shape {lshape} does not conform to RHS "
                f"shape {rshape}")
        return lshape

    def iteration_size(self, ds: DataSpace) -> int:
        shape = self.validate(ds)
        n = 1
        for e in shape:
            n *= e
        return n

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"
