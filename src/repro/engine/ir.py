"""Program-level IR: the statement graph the optimizer reasons over.

Per-statement compilation (:mod:`repro.engine.schedule`) answers "what
does *this* assignment move under the current layout"; the passes of
:mod:`repro.engine.passes` need the larger question — what does a whole
program *region* move, which exchanges are redundant across statements,
and which dynamic remaps are loop-invariant.  This module is the typed
representation they ask it of:

* :class:`StatementNode` — one array assignment, with its def-use sets
  (``writes`` = the LHS array, ``reads`` = the RHS leaves);
* :class:`RedistributeNode` / :class:`RealignNode` — dynamic remapping
  directives; ``layout_of`` names the arrays whose mapping they change;
* :class:`AllocateNode` / :class:`DeallocateNode` — storage events;
* :class:`LoopNode` — a repeated region (the Jacobi/multigrid iteration
  structure the directive language itself cannot express);
* :class:`ProgramGraph` — the ordered node sequence, a builder API, a
  flattening walk, def-use queries and the static *layout epoch*
  numbering: epoch boundaries fall after every node that mutates a
  mapping, and communication CSE is only sound between statements of one
  epoch.

The IR is purely structural — building a graph executes nothing; the
:class:`~repro.engine.passes.ProgramRunner` interprets it against a
:class:`~repro.core.dataspace.DataSpace` and machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from repro.align.spec import AlignSpec
from repro.engine.assignment import Assignment
from repro.errors import DirectiveError

__all__ = [
    "AllocateNode", "DeallocateNode", "LoopNode", "Node", "ProgramGraph",
    "RealignNode", "RedistributeNode", "StatementNode",
]


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StatementNode:
    """One array assignment."""

    stmt: Assignment

    def reads(self) -> frozenset[str]:
        return frozenset(r.name for r in self.stmt.rhs.refs())

    def writes(self) -> frozenset[str]:
        return frozenset({self.stmt.lhs.name})

    def layout_of(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.stmt)


@dataclass(frozen=True)
class RedistributeNode:
    """Execution-part REDISTRIBUTE of a DYNAMIC array."""

    array: str
    formats: tuple
    to: object = None

    def reads(self) -> frozenset[str]:
        return frozenset()

    def writes(self) -> frozenset[str]:
        return frozenset()

    def layout_of(self) -> frozenset[str]:
        return frozenset({self.array})

    def __str__(self) -> str:
        return f"REDISTRIBUTE {self.array}"


@dataclass(frozen=True)
class RealignNode:
    """Execution-part REALIGN of a DYNAMIC array."""

    spec: AlignSpec

    def reads(self) -> frozenset[str]:
        return frozenset()

    def writes(self) -> frozenset[str]:
        return frozenset()

    def layout_of(self) -> frozenset[str]:
        # the alignee's mapping changes; the base's does not, but the
        # invariance proof must still see the dependence on it
        return frozenset({self.spec.alignee, self.spec.base})

    def __str__(self) -> str:
        return f"REALIGN {self.spec.alignee} WITH {self.spec.base}"


@dataclass(frozen=True)
class AllocateNode:
    """ALLOCATE an instance of an allocatable array."""

    array: str
    bounds: tuple

    def reads(self) -> frozenset[str]:
        return frozenset()

    def writes(self) -> frozenset[str]:
        # fresh storage: any resident ghost copies of the old instance
        # are meaningless, so an allocation counts as a write
        return frozenset({self.array})

    def layout_of(self) -> frozenset[str]:
        return frozenset({self.array})

    def __str__(self) -> str:
        return f"ALLOCATE {self.array}"


@dataclass(frozen=True)
class DeallocateNode:
    """DEALLOCATE an allocatable array."""

    array: str

    def reads(self) -> frozenset[str]:
        return frozenset()

    def writes(self) -> frozenset[str]:
        return frozenset({self.array})

    def layout_of(self) -> frozenset[str]:
        return frozenset({self.array})

    def __str__(self) -> str:
        return f"DEALLOCATE {self.array}"


@dataclass(frozen=True)
class LoopNode:
    """A counted repetition of a body region."""

    count: int
    body: tuple["Node", ...]

    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for n in self.body:
            out |= n.reads()
        return out

    def writes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for n in self.body:
            out |= n.writes()
        return out

    def layout_of(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for n in self.body:
            out |= n.layout_of()
        return out

    def is_trip_invariant(self) -> bool:
        """The trip-invariance certificate: every trip of this loop sees
        the same layouts, storage instances and compiled schedules.

        True iff no node anywhere in the body (nested loops included)
        mutates a mapping or flips an allocation — exactly the condition
        under which the layout-epoch numbering stays constant across the
        whole loop and every per-statement schedule compiled on trip 0
        is valid verbatim on trips 1..N-1.  This is the same legality
        :func:`~repro.engine.passes.plan_hoists` reasons from (an empty
        ``layout_of`` means there is nothing to hoist *and* nothing that
        could invalidate a schedule), and it is what licenses the SPMD
        backend to replay the body worker-resident.
        """
        return self.count > 0 and not self.layout_of()

    def flat_body(self) -> tuple["StatementNode", ...] | None:
        """The statement instances of ONE trip, in execution order, with
        nested pure loops unrolled — or ``None`` when the body holds any
        non-statement node (a remap or storage event cannot replay)."""
        out: list[StatementNode] = []
        for n in self.body:
            if isinstance(n, StatementNode):
                out.append(n)
            elif isinstance(n, LoopNode):
                inner = n.flat_body()
                if inner is None:
                    return None
                out.extend(inner * n.count)
            else:
                return None
        return tuple(out)

    def __str__(self) -> str:
        return f"LOOP x{self.count} [{len(self.body)} nodes]"


Node = Union[StatementNode, RedistributeNode, RealignNode, AllocateNode,
             DeallocateNode, LoopNode]

NodeLike = Union[Node, Assignment]


def _coerce(node: NodeLike) -> Node:
    if isinstance(node, Assignment):
        return StatementNode(node)
    if isinstance(node, (StatementNode, RedistributeNode, RealignNode,
                         AllocateNode, DeallocateNode, LoopNode)):
        return node
    raise DirectiveError(f"cannot put {node!r} in a program graph")


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
@dataclass
class ProgramGraph:
    """An ordered program region over distributed arrays.

    Built either from node objects or through the fluent helpers::

        g = ProgramGraph()
        g.assign(stencil)
        g.loop(10, [stencil, copy_back])
        g.redistribute("X", [Cyclic()], to="PR")

    The graph is data; :class:`~repro.engine.passes.ProgramRunner`
    executes it.
    """

    nodes: list[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.nodes = [_coerce(n) for n in self.nodes]

    # -- builders ------------------------------------------------------
    def add(self, node: NodeLike) -> Node:
        coerced = _coerce(node)
        self.nodes.append(coerced)
        return coerced

    def assign(self, stmt: Assignment) -> StatementNode:
        node = StatementNode(stmt)
        self.nodes.append(node)
        return node

    def loop(self, count: int, body: Sequence[NodeLike]) -> LoopNode:
        if count < 0:
            raise DirectiveError(f"loop count must be >= 0, got {count}",
                                 code="RPR101")
        node = LoopNode(int(count), tuple(_coerce(n) for n in body))
        self.nodes.append(node)
        return node

    def redistribute(self, array: str, formats, to=None) -> RedistributeNode:
        node = RedistributeNode(array, tuple(formats), to)
        self.nodes.append(node)
        return node

    def realign(self, spec: AlignSpec) -> RealignNode:
        node = RealignNode(spec)
        self.nodes.append(node)
        return node

    def allocate(self, array: str, *bounds) -> AllocateNode:
        node = AllocateNode(array, tuple(bounds))
        self.nodes.append(node)
        return node

    def deallocate(self, array: str) -> DeallocateNode:
        node = DeallocateNode(array)
        self.nodes.append(node)
        return node

    # -- def-use / traversal -------------------------------------------
    def walk(self) -> Iterator[tuple[Node, int, LoopNode | None]]:
        """Flattened execution order: yields ``(node, trip, loop)`` for
        every dynamic instance of every non-loop node — ``trip`` is the
        iteration index of the *innermost* enclosing loop (0 outside
        loops), which is what remap hoisting keys on."""
        def visit(nodes, trip, loop):
            for node in nodes:
                if isinstance(node, LoopNode):
                    for k in range(node.count):
                        yield from visit(node.body, k, node)
                else:
                    yield node, trip, loop
        yield from visit(self.nodes, 0, None)

    def statements(self) -> list[Assignment]:
        """Every statement instance, in execution order."""
        return [node.stmt for node, _, _ in self.walk()
                if isinstance(node, StatementNode)]

    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for n in self.nodes:
            out |= n.reads()
        return out

    def writes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for n in self.nodes:
            out |= n.writes()
        return out

    def arrays(self) -> frozenset[str]:
        out = self.reads() | self.writes()
        for n in self.nodes:
            out |= n.layout_of()
        return out

    def layout_epochs(self) -> list[int]:
        """Static epoch number of every dynamic node instance, aligned
        with :meth:`walk`: the counter advances after each node that
        mutates a mapping.  Statements sharing an epoch see identical
        layouts, which is the soundness condition for communication CSE
        across them."""
        epochs: list[int] = []
        current = 0
        for node, _, _ in self.walk():
            epochs.append(current)
            if node.layout_of():
                current += 1
        return epochs

    def def_use(self) -> list[tuple[str, frozenset[str], frozenset[str]]]:
        """``(label, reads, writes)`` per dynamic node instance — the
        chain the passes (and the tests) inspect."""
        return [(str(node), node.reads(), node.writes())
                for node, _, _ in self.walk()]

    def __len__(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        lines = [f"ProgramGraph[{len(self.nodes)} nodes]"]
        for node in self.nodes:
            lines.append(f"  {node}")
            if isinstance(node, LoopNode):
                for inner in node.body:
                    lines.append(f"    {inner}")
        return "\n".join(lines)
