"""Execution engine (substrate S9): owner-computes over distributed arrays.

Array assignments over sections are executed under the owner-computes rule
against the mappings a :class:`~repro.core.dataspace.DataSpace` maintains:
each processor computes the left-hand-side elements it owns, fetching
off-processor right-hand-side operands by messages.  Numeric results are
produced by a sequential reference evaluation (and validated against it in
tests); communication is *exactly counted* two independent ways:

* a **vectorized oracle** (:func:`~repro.engine.commsets.comm_matrix`)
  comparing dense owner maps elementwise — always applicable;
* **analytic communication sets**
  (:func:`~repro.engine.commsets.analytic_comm_sets`) built from
  per-dimension triplet intersections — the SUPERB / Vienna Fortran
  Compilation System technique [13] the paper's GENERAL_BLOCK efficiency
  claim refers to; property tests prove it agrees with the oracle.

Overlap (ghost-region) analysis for shift stencils and data-movement
pricing for REDISTRIBUTE/REALIGN/procedure remaps complete the cost
model, and the SPMD backend (:mod:`repro.engine.spmd`) executes the same
compiled schedules on real parallel workers with accounting bit-identical
to the simulator.  Above the per-statement layer sits the program-level
IR (:mod:`repro.engine.ir`) and its optimizing pass pipeline
(:mod:`repro.engine.passes`): cross-statement halo validity, comm CSE,
message coalescing and remap hoisting over whole program regions.
"""

from repro.engine.expr import ArrayRef, BinExpr, ScalarLit, Expr
from repro.engine.assignment import Assignment
from repro.engine.reference import execute_sequential
from repro.engine.owner_computes import (
    section_owner_map,
    local_iteration_counts,
)
from repro.engine.commsets import comm_matrix, analytic_comm_sets, CommPiece
from repro.engine.overlap import detect_shifts, overlap_plan, OverlapPlan
from repro.engine.executor import Accountant, SimulatedExecutor, \
    ExecutionReport, charge_schedule
from repro.engine.distexec import MessageAccurateExecutor
from repro.engine.spmd import SpmdExecutor
from repro.engine.redistribute import price_remap, charge_remap
from repro.engine.ir import ProgramGraph
from repro.engine.passes import (
    OptimizingAccountant,
    ProgramRunner,
    ProgramSchedule,
)

__all__ = [
    "ArrayRef", "BinExpr", "ScalarLit", "Expr",
    "Assignment",
    "execute_sequential",
    "section_owner_map", "local_iteration_counts",
    "comm_matrix", "analytic_comm_sets", "CommPiece",
    "detect_shifts", "overlap_plan", "OverlapPlan",
    "Accountant", "SimulatedExecutor", "ExecutionReport",
    "charge_schedule",
    "MessageAccurateExecutor", "SpmdExecutor",
    "price_remap", "charge_remap",
    "ProgramGraph", "ProgramRunner", "ProgramSchedule",
    "OptimizingAccountant",
]
