"""Array expressions over sections (the executable statement language).

The engine's statement form mirrors the paper's running examples, e.g. the
staggered-grid update of §8.1.1::

    P = U(0:N-1, :) + U(1:N, :) + V(:, 0:N-1) + V(:, 1:N)

An expression tree is built from :class:`ArrayRef` leaves (array name plus
optional section), scalar literals and elementwise binary operators; all
leaves of one assignment must be shape-conformable (Fortran array
assignment conformance).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.dataspace import DataSpace
from repro.errors import ConformanceError
from repro.fortran.section import ArraySection, full_section
from repro.fortran.triplet import Triplet

__all__ = ["Expr", "ArrayRef", "ScalarLit", "BinExpr", "section_slicer"]


def section_slicer(section: ArraySection) -> tuple:
    """NumPy basic-slicing tuple extracting a section from parent data."""
    slicer = []
    for s, dim in zip(section.subscripts, section.parent.dims):
        if isinstance(s, Triplet):
            start = dim.position(s.first)
            stop = dim.position(s.last) + (1 if s.stride > 0 else -1)
            stop = None if stop < 0 else stop
            slicer.append(slice(start, stop, s.stride))
        else:
            slicer.append(dim.position(s))
    return tuple(slicer)


class Expr(abc.ABC):
    """Elementwise expression over conformable array sections."""

    @abc.abstractmethod
    def shape(self, ds: DataSpace) -> tuple[int, ...] | None:
        """Result shape; ``None`` for scalars (broadcastable)."""

    @abc.abstractmethod
    def eval_global(self, ds: DataSpace) -> Union[np.ndarray, float]:
        """Sequential-semantics evaluation over global storage."""

    @abc.abstractmethod
    def refs(self) -> tuple["ArrayRef", ...]:
        """All array references in the expression, left to right."""

    # sugar
    def __add__(self, other):  return BinExpr("+", self, _coerce(other))
    def __radd__(self, other): return BinExpr("+", _coerce(other), self)
    def __sub__(self, other):  return BinExpr("-", self, _coerce(other))
    def __rsub__(self, other): return BinExpr("-", _coerce(other), self)
    def __mul__(self, other):  return BinExpr("*", self, _coerce(other))
    def __rmul__(self, other): return BinExpr("*", _coerce(other), self)
    def __truediv__(self, other):  return BinExpr("/", self, _coerce(other))
    def __rtruediv__(self, other): return BinExpr("/", _coerce(other), self)


def _coerce(x) -> "Expr":
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, float, np.integer, np.floating)):
        return ScalarLit(float(x))
    raise TypeError(f"cannot use {x!r} in an array expression")


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A reference to an array or a section of it.

    ``subscripts`` is ``None`` for a whole-array reference; otherwise one
    entry per array dimension (ints or triplets, as in
    :class:`~repro.fortran.section.ArraySection`).
    """

    name: str
    subscripts: tuple | None = None

    def section(self, ds: DataSpace) -> ArraySection:
        arr = ds.arrays[self.name]
        if self.subscripts is None:
            return full_section(arr.domain)
        return ArraySection(arr.domain, self.subscripts)

    def shape(self, ds: DataSpace) -> tuple[int, ...]:
        return self.section(ds).shape

    def eval_global(self, ds: DataSpace) -> np.ndarray:
        arr = ds.arrays[self.name]
        return arr.data[section_slicer(self.section(ds))]

    def refs(self) -> tuple["ArrayRef", ...]:
        return (self,)

    def __str__(self) -> str:
        if self.subscripts is None:
            return self.name
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ScalarLit(Expr):
    value: float

    def shape(self, ds: DataSpace) -> None:
        return None

    def eval_global(self, ds: DataSpace) -> float:
        return self.value

    def refs(self) -> tuple[ArrayRef, ...]:
        return ()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ConformanceError(f"unsupported operator {self.op!r}")

    def shape(self, ds: DataSpace) -> tuple[int, ...] | None:
        ls = self.left.shape(ds)
        rs = self.right.shape(ds)
        if ls is None:
            return rs
        if rs is None:
            return ls
        if ls != rs:
            raise ConformanceError(
                f"non-conformable operands in {self}: {ls} vs {rs}")
        return ls

    def eval_global(self, ds: DataSpace):
        a = self.left.eval_global(ds)
        b = self.right.eval_global(ds)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        return a / b

    def refs(self) -> tuple[ArrayRef, ...]:
        return self.left.refs() + self.right.refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"
