"""Per-processor local memory bookkeeping.

Each processor's local memory records, per array, which global elements it
owns and the local storage footprint.  The execution engine computes with
vectorized global arrays (the numerics are validated against a sequential
reference), so local memories carry *ownership bookkeeping*, not duplicate
numeric payloads — the quantities the paper's arguments need (who owns
what, local extents, memory high-water marks) are all here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributions.distribution import Distribution
from repro.errors import MachineError

__all__ = ["LocalMemory"]


@dataclass
class LocalMemory:
    """Ownership bookkeeping for one processor."""

    unit: int
    #: array name -> number of owned elements
    extents: dict[str, int] = field(default_factory=dict)
    #: array name -> flat local index -> owned (linearized) global position
    owned_positions: dict[str, np.ndarray] = field(default_factory=dict)

    def host(self, name: str, dist: Distribution) -> None:
        """Register (or refresh) the locally owned piece of ``name``."""
        if dist.is_replicated:
            # every owner stores a full copy of its owned subset; compute
            # exactly via the owner sets
            owned = [k for k, idx in enumerate(dist.domain)
                     if self.unit in dist.owners(idx)]
            positions = np.asarray(owned, dtype=np.int64)
        else:
            pmap = dist.primary_owner_map().reshape(-1, order="F")
            positions = np.nonzero(pmap == self.unit)[0].astype(np.int64)
        self.owned_positions[name] = positions
        self.extents[name] = int(positions.size)

    def drop(self, name: str) -> None:
        self.extents.pop(name, None)
        self.owned_positions.pop(name, None)

    def owns_position(self, name: str, linear_position: int) -> bool:
        positions = self.owned_positions.get(name)
        if positions is None:
            raise MachineError(
                f"processor {self.unit} does not host array {name!r}")
        i = np.searchsorted(positions, linear_position)
        return bool(i < positions.size and positions[i] == linear_position)

    @property
    def footprint(self) -> int:
        """Total locally stored elements across arrays."""
        return sum(self.extents.values())
