"""Message records for the traffic ledger."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """One point-to-point transfer of ``words`` array elements.

    ``tag`` identifies the operation that caused the traffic (an
    assignment's reference, a REDISTRIBUTE, a procedure-boundary remap),
    so experiments can attribute volume to causes.
    """

    src: int
    dst: int
    words: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError(f"negative message size {self.words}")

    def __str__(self) -> str:
        t = f" [{self.tag}]" if self.tag else ""
        return f"P{self.src} -> P{self.dst}: {self.words} words{t}"
