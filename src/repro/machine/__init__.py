"""Simulated distributed-memory machine (substrate S8).

The paper's performance arguments are *locality* arguments: operations on
collocated data are fast, off-processor references cost messages, and
remapping costs data movement.  This package provides the deterministic
substrate those arguments are measured on:

* :class:`~repro.machine.config.MachineConfig` — processor count and the
  linear (alpha-beta) cost model with optional topology hop scaling;
* :class:`~repro.machine.message.Message` and the traffic ledger;
* :class:`~repro.machine.metrics.CommStats` — message/word/op counters
  per processor with bulk-synchronous time estimation and locality and
  load-imbalance metrics;
* :mod:`~repro.machine.collectives` — cost formulas for the collective
  patterns redistribution uses (broadcast, gather, all-to-all);
* :class:`~repro.machine.simulator.DistributedMachine` — the ledgered
  machine the execution engine (S9) charges its communication to;
* :class:`~repro.machine.memory.LocalMemory` — per-processor bookkeeping
  of owned array pieces.
"""

from repro.machine.config import MachineConfig
from repro.machine.message import Message
from repro.machine.metrics import CommStats
from repro.machine.simulator import DistributedMachine
from repro.machine.memory import LocalMemory
from repro.machine.backend import (
    BACKENDS,
    Backend,
    BackendConfig,
    make_executor,
    resolve_backend,
)
from repro.machine import collectives

__all__ = [
    "MachineConfig",
    "Message",
    "CommStats",
    "DistributedMachine",
    "LocalMemory",
    "BACKENDS",
    "Backend",
    "BackendConfig",
    "make_executor",
    "resolve_backend",
    "collectives",
]
