"""Machine configuration: the alpha-beta(-hop) cost model.

A point-to-point message of ``w`` words between processors ``p`` and ``q``
costs::

    alpha + beta * w                      (hop_factor == 0)
    (alpha + beta * w) * (1 + hop_factor * (hops(p, q) - 1))

Local elementwise work costs ``flop`` per element.  The defaults are era-
appropriate ratios (message startup ~two orders of magnitude above per-word
cost, per-word cost an order above a flop) — absolute values are arbitrary
since all experiments report *ratios* and *shapes*, never wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.processors.topology import FullyConnected, Topology

__all__ = ["MachineConfig"]


@dataclass
class MachineConfig:
    """Parameters of the simulated machine."""

    n_processors: int = 4
    #: message startup cost (per message)
    alpha: float = 100.0
    #: per-word transfer cost
    beta: float = 1.0
    #: per-element local compute cost
    flop: float = 0.1
    #: extra cost per additional hop (0 = distance-insensitive)
    hop_factor: float = 0.0
    topology: Topology = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_processors <= 0:
            raise ValueError("machine needs at least one processor")
        if self.topology is None:
            self.topology = FullyConnected(self.n_processors)
        elif self.topology.n != self.n_processors:
            raise ValueError(
                f"topology size {self.topology.n} != n_processors "
                f"{self.n_processors}")

    def message_cost(self, src: int, dst: int, words: int) -> float:
        """Cost of one point-to-point message."""
        if src == dst or words <= 0:
            return 0.0
        base = self.alpha + self.beta * words
        if self.hop_factor:
            hops = self.topology.hops(src, dst)
            return base * (1.0 + self.hop_factor * max(hops - 1, 0))
        return base

    def compute_cost(self, elements: int) -> float:
        return self.flop * max(elements, 0)
