"""The ledgered distributed machine.

:class:`DistributedMachine` is what the execution engine charges traffic
to: every point-to-point transfer becomes a :class:`Message` in the
ledger and is accumulated into a :class:`CommStats`.  Bulk charging APIs
accept dense (P x P) word matrices so vectorized comm-set computations can
be deposited in one call; two time models sit on top of one deposit path:

* :meth:`exchange` — the raw point-to-point model: ``alpha`` per message
  plus ``beta`` per word, serialized;
* :meth:`charge_collective` — pattern-lowered accounting: the ledger and
  counters are bit-identical to :meth:`exchange`, but elapsed time is the
  *cheaper* of the point-to-point model and the collective-tree formula
  of the recognized pattern (:mod:`repro.engine.lowering` /
  :mod:`repro.machine.collectives`), and the traffic is attributed to
  the pattern in :class:`CommStats`.

The machine also hosts per-processor :class:`LocalMemory` bookkeeping so
experiments can report footprints and per-processor extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.distributions.distribution import Distribution
from repro.errors import MachineError
from repro.machine import collectives
from repro.machine.config import MachineConfig
from repro.machine.memory import LocalMemory
from repro.machine.message import Message
from repro.machine.metrics import CommStats

if TYPE_CHECKING:  # layering: the machine never imports the engine at runtime
    from repro.engine.lowering import Lowering

__all__ = ["DistributedMachine"]


@dataclass
class DistributedMachine:
    """A deterministic machine with a message ledger."""

    config: MachineConfig
    ledger: list[Message] = field(default_factory=list)
    stats: CommStats = field(init=False)
    memories: list[LocalMemory] = field(init=False)
    #: accumulated bulk-synchronous time estimate
    elapsed: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        p = self.config.n_processors
        self.stats = CommStats(p)
        self.memories = [LocalMemory(u) for u in range(p)]

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, words: int, tag: str = "") -> None:
        p = self.config.n_processors
        if not (0 <= src < p and 0 <= dst < p):
            raise MachineError(
                f"message {src}->{dst} outside machine of {p} processors")
        if src == dst or words <= 0:
            return
        msg = Message(src, dst, int(words), tag)
        self.ledger.append(msg)
        self.stats.record_message(msg, self.config)
        self.elapsed += self.config.message_cost(src, dst, int(words))

    def _deposit(self, words_matrix: np.ndarray, tag: str
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Record a dense (P x P) transfer matrix (entry [q, p] = words
        moving q -> p) in the ledger and counters; the diagonal is
        ignored.  One message per nonzero pair, materialized from the
        nonzero index arrays (no per-element sends), statistics updated
        with bincounts.  Returns the ``(src, dst, words)`` index arrays
        for the caller's time accounting.
        """
        w = np.asarray(words_matrix)
        p = self.config.n_processors
        if w.shape != (p, p):
            raise MachineError(
                f"exchange matrix shape {w.shape} != ({p}, {p})")
        off_diag = w.copy()
        np.fill_diagonal(off_diag, 0)
        src_idx, dst_idx = np.nonzero(off_diag)
        words = off_diag[src_idx, dst_idx].astype(np.int64)
        if src_idx.size:
            self.ledger.extend(
                Message(s, d, int(n), tag)
                for s, d, n in zip(src_idx.tolist(), dst_idx.tolist(),
                                   words.tolist()))
            self.stats.record_messages_bulk(src_idx, dst_idx, words,
                                            self.config)
        return src_idx, dst_idx, words

    def _p2p_time(self, src_idx: np.ndarray, dst_idx: np.ndarray,
                  words: np.ndarray) -> float:
        """Point-to-point model time of a deposited message set."""
        return collectives.pointwise(self.config, src_idx, dst_idx, words)

    def exchange(self, words_matrix: np.ndarray, tag: str = "") -> None:
        """Charge a dense (P x P) transfer matrix under the raw
        point-to-point time model (one ``alpha + beta*w`` per message,
        serialized)."""
        src_idx, dst_idx, words = self._deposit(words_matrix, tag)
        self.elapsed += self._p2p_time(src_idx, dst_idx, words)

    def charge_collective(self, words_matrix: np.ndarray,
                          lowering: "Lowering", tag: str = "") -> float:
        """Charge a dense transfer matrix under pattern-lowered
        accounting.

        The ledger records and the per-processor counters are
        bit-identical to :meth:`exchange` — lowering never changes *what*
        moves.  Elapsed time is the cheaper of the point-to-point model
        and the classified pattern's collective formula (transport
        selection), and the deposit is attributed to the pattern in
        ``stats.pattern_msgs`` / ``pattern_words`` / ``pattern_time``.
        Returns the charged time.
        """
        src_idx, dst_idx, words = self._deposit(words_matrix, tag)
        if src_idx.size == 0:
            # nothing moved: no charge, no pattern attribution (keeps
            # both executors' pattern stats identical for local refs)
            return 0.0
        p2p = self._p2p_time(src_idx, dst_idx, words)
        collective = lowering.time(self.config)
        charged = p2p if collective is None else min(collective, p2p)
        self.elapsed += charged
        self.stats.record_pattern(lowering.pattern.value,
                                  int(src_idx.size), int(words.sum()),
                                  charged)
        return charged

    def note_savings(self, opt: str, words: int, msgs: int) -> None:
        """Record traffic the program-level optimizer elided (the machine
        was *not* charged it); rides :class:`CommStats` so savings merge
        and snapshot with the rest of the counters."""
        self.stats.record_optimization(opt, words, msgs)

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def compute(self, per_proc_elements: np.ndarray) -> None:
        """Charge local elementwise work (length-P vector)."""
        v = np.asarray(per_proc_elements, dtype=np.int64)
        p = self.config.n_processors
        if v.shape != (p,):
            raise MachineError(
                f"work vector shape {v.shape} != ({p},)")
        self.stats.local_ops += v
        self.elapsed += self.config.flop * float(v.max(initial=0))

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    def host_array(self, name: str, dist: Distribution) -> None:
        """Record ownership of an array on every processor's memory."""
        for mem in self.memories:
            mem.host(name, dist)

    def drop_array(self, name: str) -> None:
        for mem in self.memories:
            mem.drop(name)

    def footprints(self) -> np.ndarray:
        return np.array([m.footprint for m in self.memories],
                        dtype=np.int64)

    # ------------------------------------------------------------------
    # Ledger attribution
    # ------------------------------------------------------------------
    def words_by_tag(self) -> dict[str, int]:
        """Total words moved per message tag (experiments attribute
        traffic to the operations that caused it)."""
        out: dict[str, int] = {}
        for msg in self.ledger:
            out[msg.tag] = out.get(msg.tag, 0) + msg.words
        return out

    def messages_between(self, src: int, dst: int) -> list[Message]:
        return [m for m in self.ledger if m.src == src and m.dst == dst]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear ledger and statistics (memories kept)."""
        self.ledger.clear()
        self.stats = CommStats(self.config.n_processors)
        self.elapsed = 0.0

    def snapshot(self) -> CommStats:
        return self.stats.copy()
