"""The ledgered distributed machine.

:class:`DistributedMachine` is what the execution engine charges traffic
to: every point-to-point transfer becomes a :class:`Message` in the
ledger and is accumulated into a :class:`CommStats`.  Bulk charging APIs
accept dense (P x P) word matrices so vectorized comm-set computations can
be deposited in one call.

The machine also hosts per-processor :class:`LocalMemory` bookkeeping so
experiments can report footprints and per-processor extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributions.distribution import Distribution
from repro.errors import MachineError
from repro.machine.config import MachineConfig
from repro.machine.memory import LocalMemory
from repro.machine.message import Message
from repro.machine.metrics import CommStats

__all__ = ["DistributedMachine"]


@dataclass
class DistributedMachine:
    """A deterministic machine with a message ledger."""

    config: MachineConfig
    ledger: list[Message] = field(default_factory=list)
    stats: CommStats = field(default=None)   # type: ignore[assignment]
    memories: list[LocalMemory] = field(default=None)  # type: ignore

    def __post_init__(self) -> None:
        p = self.config.n_processors
        if self.stats is None:
            self.stats = CommStats(p)
        if self.memories is None:
            self.memories = [LocalMemory(u) for u in range(p)]
        #: accumulated bulk-synchronous time estimate
        self.elapsed = 0.0

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, words: int, tag: str = "") -> None:
        p = self.config.n_processors
        if not (0 <= src < p and 0 <= dst < p):
            raise MachineError(
                f"message {src}->{dst} outside machine of {p} processors")
        if src == dst or words <= 0:
            return
        msg = Message(src, dst, int(words), tag)
        self.ledger.append(msg)
        self.stats.record_message(msg, self.config)
        self.elapsed += self.config.message_cost(src, dst, int(words))

    def exchange(self, words_matrix: np.ndarray, tag: str = "") -> None:
        """Charge a dense (P x P) transfer matrix (entry [q, p] = words
        moving q -> p); the diagonal is ignored.  One message per
        non-zero pair.

        Batched: the whole matrix is deposited in one vectorized pass —
        the ledger records are materialized from the nonzero index arrays
        (array slicing, no per-element sends), the statistics counters are
        updated with bincounts, and the time estimate is accumulated in
        closed form for distance-insensitive machines.
        """
        w = np.asarray(words_matrix)
        p = self.config.n_processors
        if w.shape != (p, p):
            raise MachineError(
                f"exchange matrix shape {w.shape} != ({p}, {p})")
        off_diag = w.copy()
        np.fill_diagonal(off_diag, 0)
        src_idx, dst_idx = np.nonzero(off_diag)
        if src_idx.size == 0:
            return
        words = off_diag[src_idx, dst_idx].astype(np.int64)
        self.ledger.extend(
            Message(s, d, int(n), tag)
            for s, d, n in zip(src_idx.tolist(), dst_idx.tolist(),
                               words.tolist()))
        self.stats.record_messages_bulk(src_idx, dst_idx, words,
                                        self.config)
        if self.config.hop_factor:
            self.elapsed += sum(
                self.config.message_cost(int(s), int(d), int(n))
                for s, d, n in zip(src_idx, dst_idx, words))
        else:
            self.elapsed += (self.config.alpha * src_idx.size
                             + self.config.beta * float(words.sum()))

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def compute(self, per_proc_elements: np.ndarray) -> None:
        """Charge local elementwise work (length-P vector)."""
        v = np.asarray(per_proc_elements, dtype=np.int64)
        p = self.config.n_processors
        if v.shape != (p,):
            raise MachineError(
                f"work vector shape {v.shape} != ({p},)")
        self.stats.local_ops += v
        self.elapsed += self.config.flop * float(v.max(initial=0))

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    def host_array(self, name: str, dist: Distribution) -> None:
        """Record ownership of an array on every processor's memory."""
        for mem in self.memories:
            mem.host(name, dist)

    def drop_array(self, name: str) -> None:
        for mem in self.memories:
            mem.drop(name)

    def footprints(self) -> np.ndarray:
        return np.array([m.footprint for m in self.memories],
                        dtype=np.int64)

    # ------------------------------------------------------------------
    # Ledger attribution
    # ------------------------------------------------------------------
    def words_by_tag(self) -> dict[str, int]:
        """Total words moved per message tag (experiments attribute
        traffic to the operations that caused it)."""
        out: dict[str, int] = {}
        for msg in self.ledger:
            out[msg.tag] = out.get(msg.tag, 0) + msg.words
        return out

    def messages_between(self, src: int, dst: int) -> list[Message]:
        return [m for m in self.ledger if m.src == src and m.dst == dst]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear ledger and statistics (memories kept)."""
        self.ledger.clear()
        self.stats = CommStats(self.config.n_processors)
        self.elapsed = 0.0

    def snapshot(self) -> CommStats:
        return self.stats.copy()
