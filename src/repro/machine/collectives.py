"""Cost formulas for collective communication patterns.

Redistribution and replication generate structured traffic; pricing them
as tree-based collectives (the standard implementations of the paper's
era and since) keeps the cost model honest for patterns like the ``*``
base-subscript replication of §5.1:

* ``broadcast``:   ceil(log2 P) rounds, each ``alpha + beta*w``;
* ``gather`` / ``scatter``: tree with volume doubling toward the root;
* ``allgather``:   recursive doubling, total volume ``(P-1) * w`` per proc;
* ``alltoall``:    P-1 pairwise exchanges (the dense remap lower bound);
* ``shift``:       banded stencil exchange — one concurrent permutation
  round per distinct offset.

Each function returns ``(time_estimate, total_words_moved)``.  These
formulas are what the schedule-lowering pass
(:mod:`repro.engine.lowering`) charges for recognized patterns in place
of serialized point-to-point accounting.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.machine.config import MachineConfig

__all__ = ["broadcast", "gather", "scatter", "allgather", "alltoall",
           "shift", "pointwise"]


def _rounds(p: int) -> int:
    return max(math.ceil(math.log2(p)), 0) if p > 1 else 0


def broadcast(config: MachineConfig, words: int,
              participants: int | None = None) -> tuple[float, int]:
    """One processor sends ``words`` to all others (binomial tree)."""
    p = participants if participants is not None else config.n_processors
    r = _rounds(p)
    time = r * (config.alpha + config.beta * words)
    return time, words * max(p - 1, 0)


def gather(config: MachineConfig, words_per_proc: int,
           participants: int | None = None) -> tuple[float, int]:
    """All processors send ``words_per_proc`` to a root (binomial tree;
    volume doubles toward the root)."""
    p = participants if participants is not None else config.n_processors
    r = _rounds(p)
    time = 0.0
    w = words_per_proc
    for _ in range(r):
        time += config.alpha + config.beta * w
        w *= 2
    return time, words_per_proc * max(p - 1, 0)


def scatter(config: MachineConfig, words_per_proc: int,
            participants: int | None = None) -> tuple[float, int]:
    """Inverse of gather; identical cost structure."""
    return gather(config, words_per_proc, participants)


def allgather(config: MachineConfig, words_per_proc: int,
              participants: int | None = None) -> tuple[float, int]:
    """Recursive doubling: every processor ends with all P pieces."""
    p = participants if participants is not None else config.n_processors
    r = _rounds(p)
    time = 0.0
    w = words_per_proc
    for _ in range(r):
        time += config.alpha + config.beta * w
        w *= 2
    return time, words_per_proc * max(p - 1, 0) * p


def alltoall(config: MachineConfig, words_per_pair: int,
             participants: int | None = None) -> tuple[float, int]:
    """Pairwise exchange: every processor sends ``words_per_pair`` to
    every other."""
    p = participants if participants is not None else config.n_processors
    time = max(p - 1, 0) * (config.alpha + config.beta * words_per_pair)
    return time, words_per_pair * p * max(p - 1, 0)


def pointwise(config: MachineConfig, src: np.ndarray, dst: np.ndarray,
              words: np.ndarray) -> float:
    """Serialized point-to-point time of a message set (parallel
    ``(src, dst, words)`` arrays, self/empty messages already filtered) —
    the baseline every lowered pattern is selected against.  Closed form
    for distance-insensitive machines; the single implementation both
    the machine ledger and the bench reports use."""
    n = len(src)
    if n == 0:
        return 0.0
    if config.hop_factor:
        return float(sum(config.message_cost(int(s), int(d), int(w))
                         for s, d, w in zip(src, dst, words)))
    return float(config.alpha * n + config.beta * np.sum(words))


def shift(config: MachineConfig,
          round_words: Sequence[int]) -> tuple[float, int]:
    """Banded (stencil) exchange: each entry of ``round_words`` is the
    largest message of one shift offset, whose (src, dst) pairs form a
    partial permutation and therefore transfer concurrently in a single
    ``alpha + beta * w`` round.  The returned volume is the per-round
    critical-path volume, not the matrix total — exact totals live in
    the words matrix the caller already holds."""
    time = sum(config.alpha + config.beta * w for w in round_words)
    return time, int(sum(round_words))
