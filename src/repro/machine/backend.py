"""Execution-backend selection: one switch between modeling and running.

The engine has two ways to execute a program against a machine:

* ``simulate`` — :class:`~repro.engine.executor.SimulatedExecutor`:
  sequential numerics plus the exact communication cost model (the
  paper's measurement substrate);
* ``spmd``     — :class:`~repro.engine.spmd.SpmdExecutor`: the same
  compiled schedules executed by real parallel workers over shared
  memory, with accounting bit-identical to the simulator.

:class:`Backend` is the one public spec for choosing between them::

    Session(16, backend=Backend.simulate())
    Session(16, backend=Backend.spmd(workers=4, mode="fork", fused=True))

Both constructors return a frozen :class:`BackendConfig`; every front
door (``Session``, ``run_program``, the CLI, the bench harness)
resolves its spec through :func:`resolve_backend`.  The historical
stringly surface — ``backend="spmd"`` plus loose ``n_workers=``/
``mode=`` kwargs — still works but emits a :class:`DeprecationWarning`
(the same shim policy as the ``repro`` top-level re-exports).

This module lives in the machine layer but instantiates engine classes
lazily inside :func:`make_executor`, keeping the machine package
import-free of the engine at module load (the layering rule the
simulator already follows).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.errors import MachineError

__all__ = ["BACKENDS", "Backend", "BackendConfig", "resolve_backend",
           "make_executor"]

#: recognized backend kinds, in CLI/choices order
BACKENDS = ("simulate", "spmd")

#: accepted SPMD pool modes ('fork' is an alias for 'process')
_MODES = ("auto", "process", "thread", "fork")


@dataclass(frozen=True)
class BackendConfig:
    """How statements should be executed against the machine (build one
    with :meth:`Backend.simulate` / :meth:`Backend.spmd`)."""

    kind: str = "simulate"          #: 'simulate' | 'spmd'
    #: SPMD worker count (default: one worker per abstract processor)
    n_workers: int | None = None
    #: SPMD worker substrate: 'process' ('fork') | 'thread' | 'auto'
    mode: str = "auto"
    #: comm-set strategy forwarded to the executor
    strategy: str = "auto"
    #: charge shift stencils as ghost-region exchanges
    use_overlap: bool = False
    #: SPMD: execute fused per-peer transfer plans with one phase
    #: barrier per fusion window (False: the per-statement two-barrier
    #: comparison baseline)
    fused: bool = True
    #: SPMD: compile proven trip-invariant loops into worker-resident
    #: replay programs (False: every trip is dispatched per window —
    #: the escape hatch when replay must be ruled out while debugging)
    replay: bool = True

    @property
    def pool_key(self) -> tuple:
        """Execution-substrate identity: two specs with equal pool keys
        can share a warm worker pool, so the serving stack batches their
        requests onto one dispatcher.  Compilation-only fields
        (``strategy``, ``use_overlap``) are deliberately excluded —
        they change what is compiled, not how workers are pooled.
        ``replay`` is included: a replaying executor advances its
        sense-barrier generations, so it must not share a pool with a
        non-replaying dispatcher."""
        return (self.kind, self.n_workers, self.mode, self.fused,
                self.replay)

    def __post_init__(self) -> None:
        if self.kind not in BACKENDS:
            raise MachineError(
                f"unknown backend {self.kind!r}; choose from "
                f"{', '.join(BACKENDS)}")
        if self.mode not in _MODES:
            raise MachineError(
                f"unknown SPMD mode {self.mode!r}; use "
                "'process' ('fork'), 'thread' or 'auto'")
        if self.mode == "fork":
            object.__setattr__(self, "mode", "process")


class Backend:
    """Typed constructors for backend specs — the one backend surface.

    ``Backend.simulate()`` and ``Backend.spmd(...)`` return the frozen
    :class:`BackendConfig` every front door accepts; there is nothing
    to subclass or instantiate.
    """

    def __new__(cls, *args, **kwargs):   # pragma: no cover - guard
        raise TypeError("Backend is a namespace; use Backend.simulate() "
                        "or Backend.spmd(...)")

    @staticmethod
    def simulate(*, strategy: str = "auto",
                 use_overlap: bool = False) -> BackendConfig:
        """The sequential cost-model executor (the paper's substrate)."""
        return BackendConfig(kind="simulate", strategy=strategy,
                             use_overlap=use_overlap)

    @staticmethod
    def spmd(workers: int | None = None, *, mode: str = "auto",
             fused: bool = True, replay: bool = True,
             strategy: str = "auto",
             use_overlap: bool = False) -> BackendConfig:
        """Real parallel workers over shared memory.  ``mode`` picks the
        pool substrate (``'fork'``/``'process'``, ``'thread'``, or
        ``'auto'``); ``fused=False`` selects the per-statement
        two-barrier baseline instead of the fused per-peer plans;
        ``replay=False`` disables worker-resident loop replay (every
        trip dispatches per window even for trip-invariant loops)."""
        return BackendConfig(kind="spmd", n_workers=workers, mode=mode,
                             strategy=strategy, use_overlap=use_overlap,
                             fused=fused, replay=replay)


def resolve_backend(spec) -> BackendConfig:
    """Coerce a backend spec to a :class:`BackendConfig`.

    ``None`` means :meth:`Backend.simulate`; configs pass through; a
    bare kind string still resolves but is deprecated in favor of the
    :class:`Backend` constructors."""
    if spec is None:
        return BackendConfig()
    if isinstance(spec, BackendConfig):
        return spec
    if isinstance(spec, str):
        warnings.warn(
            f"string backend specs are deprecated; use "
            f"Backend.{spec}() (from repro import Backend) instead of "
            f"backend={spec!r}", DeprecationWarning, stacklevel=3)
        return BackendConfig(kind=spec)
    raise MachineError(f"bad backend spec {spec!r}")


def make_executor(ds, machine, backend=None):
    """Build the executor a backend spec names, bound to ``ds`` and
    ``machine``.  SPMD executors should be :meth:`closed
    <repro.engine.spmd.SpmdExecutor.close>` when done (they hold a
    worker pool); simulated executors need no teardown."""
    config = resolve_backend(backend)
    if config.kind == "simulate":
        from repro.engine.executor import SimulatedExecutor
        return SimulatedExecutor(ds, machine, strategy=config.strategy,
                                 use_overlap=config.use_overlap)
    from repro.engine.spmd import SpmdExecutor
    return SpmdExecutor(ds, machine, n_workers=config.n_workers,
                        mode=config.mode, strategy=config.strategy,
                        use_overlap=config.use_overlap,
                        fused=config.fused, replay=config.replay)
