"""Execution-backend selection: one switch between modeling and running.

The engine has two ways to execute a program against a machine:

* ``simulate`` — :class:`~repro.engine.executor.SimulatedExecutor`:
  sequential numerics plus the exact communication cost model (the
  paper's measurement substrate);
* ``spmd``     — :class:`~repro.engine.spmd.SpmdExecutor`: the same
  compiled schedules executed by real parallel workers over shared
  memory, with accounting bit-identical to the simulator.

This module is the configuration surface both the CLI (``--backend``)
and the directive front end (:func:`repro.directives.analyzer.run_program`)
use to pick one.  It lives in the machine layer but instantiates engine
classes lazily inside :func:`make_executor`, keeping the machine package
import-free of the engine at module load (the layering rule the
simulator already follows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError

__all__ = ["BACKENDS", "BackendConfig", "resolve_backend", "make_executor"]

#: recognized backend kinds, in CLI/choices order
BACKENDS = ("simulate", "spmd")


@dataclass(frozen=True)
class BackendConfig:
    """How statements should be executed against the machine."""

    kind: str = "simulate"          #: 'simulate' | 'spmd'
    #: SPMD worker count (default: one worker per abstract processor)
    n_workers: int | None = None
    #: SPMD worker substrate: 'process' | 'thread' | 'auto'
    mode: str = "auto"
    #: comm-set strategy forwarded to the executor
    strategy: str = "auto"
    #: charge shift stencils as ghost-region exchanges
    use_overlap: bool = False

    def __post_init__(self) -> None:
        if self.kind not in BACKENDS:
            raise MachineError(
                f"unknown backend {self.kind!r}; choose from "
                f"{', '.join(BACKENDS)}")


def resolve_backend(spec) -> BackendConfig:
    """Coerce a backend spec (name string, config, or ``None``) to a
    :class:`BackendConfig`."""
    if spec is None:
        return BackendConfig()
    if isinstance(spec, BackendConfig):
        return spec
    if isinstance(spec, str):
        return BackendConfig(kind=spec)
    raise MachineError(f"bad backend spec {spec!r}")


def make_executor(ds, machine, backend="simulate"):
    """Build the executor a backend spec names, bound to ``ds`` and
    ``machine``.  SPMD executors should be :meth:`closed
    <repro.engine.spmd.SpmdExecutor.close>` when done (they hold a
    worker pool); simulated executors need no teardown."""
    config = resolve_backend(backend)
    if config.kind == "simulate":
        from repro.engine.executor import SimulatedExecutor
        return SimulatedExecutor(ds, machine, strategy=config.strategy,
                                 use_overlap=config.use_overlap)
    from repro.engine.spmd import SpmdExecutor
    return SpmdExecutor(ds, machine, n_workers=config.n_workers,
                        mode=config.mode, strategy=config.strategy,
                        use_overlap=config.use_overlap)
