"""Communication and load statistics (the quantities the paper argues in).

:class:`CommStats` aggregates, per processor, the messages and words sent
and received and the local elementwise work, and derives the metrics the
experiments report:

* ``off_processor_refs`` / ``local_refs`` — the locality split the §8.1.1
  staggered-grid argument is about;
* ``load_imbalance`` — max/mean local work, the GENERAL_BLOCK experiment's
  (E3) figure of merit;
* ``estimated_time(config)`` — a bulk-synchronous step estimate:
  ``max_p [flop*ops(p) + alpha*msgs(p) + beta*words(p)]``;
* ``pattern_msgs`` / ``pattern_words`` / ``pattern_time`` — traffic and
  charged time attributed per recognized communication pattern
  (:mod:`repro.engine.lowering`), recorded by
  :meth:`~repro.machine.simulator.DistributedMachine.charge_collective`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.config import MachineConfig
from repro.machine.message import Message

__all__ = ["CommStats"]


@dataclass
class CommStats:
    """Per-processor traffic/work counters for one or more operations."""

    n_processors: int
    local_refs: int = 0
    off_processor_refs: int = 0
    hop_weighted_words: float = 0.0
    #: per-processor counters, sized to the machine in ``__post_init__``
    msgs_sent: np.ndarray = field(init=False)
    msgs_recv: np.ndarray = field(init=False)
    words_sent: np.ndarray = field(init=False)
    words_recv: np.ndarray = field(init=False)
    local_ops: np.ndarray = field(init=False)
    #: traffic attributed per communication pattern (lowered collectives)
    pattern_msgs: dict[str, int] = field(default_factory=dict)
    pattern_words: dict[str, int] = field(default_factory=dict)
    pattern_time: dict[str, float] = field(default_factory=dict)
    #: traffic the program-level optimizer elided, per pass
    #: ('halo' | 'cse' | 'coalesce' | 'hoist') — words and messages the
    #: machine was *not* charged relative to per-statement execution
    opt_words_saved: dict[str, int] = field(default_factory=dict)
    opt_msgs_saved: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        p = self.n_processors
        for name in ("msgs_sent", "msgs_recv", "words_sent", "words_recv",
                     "local_ops"):
            setattr(self, name, np.zeros(p, dtype=np.int64))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_message(self, msg: Message,
                       config: MachineConfig | None = None) -> None:
        if msg.src == msg.dst or msg.words == 0:
            return
        self.msgs_sent[msg.src] += 1
        self.msgs_recv[msg.dst] += 1
        self.words_sent[msg.src] += msg.words
        self.words_recv[msg.dst] += msg.words
        if config is not None and config.hop_factor:
            hops = config.topology.hops(msg.src, msg.dst)
            self.hop_weighted_words += msg.words * max(hops, 1)
        else:
            self.hop_weighted_words += msg.words

    def record_messages_bulk(self, src: np.ndarray, dst: np.ndarray,
                             words: np.ndarray,
                             config: MachineConfig | None = None) -> None:
        """Vectorized :meth:`record_message` over parallel (src, dst,
        words) arrays — one bincount per counter instead of a Python loop
        per message.  Self-messages and empty messages must already be
        filtered out by the caller."""
        p = self.n_processors
        if src.size == 0:
            return
        self.msgs_sent += np.bincount(src, minlength=p)
        self.msgs_recv += np.bincount(dst, minlength=p)
        self.words_sent += np.bincount(src, weights=words,
                                       minlength=p).astype(np.int64)
        self.words_recv += np.bincount(dst, weights=words,
                                       minlength=p).astype(np.int64)
        if config is not None and config.hop_factor:
            hops = np.fromiter(
                (config.topology.hops(int(s), int(d))
                 for s, d in zip(src, dst)),
                dtype=np.int64, count=src.size)
            self.hop_weighted_words += float(
                (words * np.maximum(hops, 1)).sum())
        else:
            self.hop_weighted_words += float(words.sum())

    def record_pattern(self, pattern: str, msgs: int, words: int,
                       time: float) -> None:
        """Attribute one lowered deposit to a communication pattern."""
        self.pattern_msgs[pattern] = \
            self.pattern_msgs.get(pattern, 0) + int(msgs)
        self.pattern_words[pattern] = \
            self.pattern_words.get(pattern, 0) + int(words)
        self.pattern_time[pattern] = \
            self.pattern_time.get(pattern, 0.0) + float(time)

    def record_optimization(self, opt: str, words: int,
                            msgs: int) -> None:
        """Attribute traffic elided by one optimizer pass (words/messages
        the machine would have been charged at ``-O0``)."""
        self.opt_words_saved[opt] = \
            self.opt_words_saved.get(opt, 0) + int(words)
        self.opt_msgs_saved[opt] = \
            self.opt_msgs_saved.get(opt, 0) + int(msgs)

    @property
    def total_words_saved(self) -> int:
        return sum(self.opt_words_saved.values())

    @property
    def total_msgs_saved(self) -> int:
        return sum(self.opt_msgs_saved.values())

    def record_work(self, proc: int, elements: int) -> None:
        self.local_ops[proc] += elements

    def record_refs(self, local: int, off: int) -> None:
        self.local_refs += int(local)
        self.off_processor_refs += int(off)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return int(self.msgs_sent.sum())

    @property
    def total_words(self) -> int:
        return int(self.words_sent.sum())

    @property
    def total_refs(self) -> int:
        return self.local_refs + self.off_processor_refs

    @property
    def locality(self) -> float:
        """Fraction of references satisfied on-processor (1.0 = perfect)."""
        total = self.total_refs
        return self.local_refs / total if total else 1.0

    @property
    def load_imbalance(self) -> float:
        """max/mean local work (1.0 = perfectly balanced)."""
        mean = self.local_ops.mean()
        if mean == 0:
            return 1.0
        return float(self.local_ops.max() / mean)

    def estimated_time(self, config: MachineConfig) -> float:
        """Bulk-synchronous step time: the slowest processor's cost."""
        per_proc = (config.flop * self.local_ops
                    + config.alpha * (self.msgs_sent + self.msgs_recv)
                    + config.beta * (self.words_sent + self.words_recv))
        return float(per_proc.max()) if len(per_proc) else 0.0

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merge(self, other: "CommStats") -> "CommStats":
        """Accumulate another stats object into this one (in place)."""
        if other.n_processors != self.n_processors:
            raise ValueError("cannot merge stats of different machines")
        self.msgs_sent += other.msgs_sent
        self.msgs_recv += other.msgs_recv
        self.words_sent += other.words_sent
        self.words_recv += other.words_recv
        self.local_ops += other.local_ops
        self.local_refs += other.local_refs
        self.off_processor_refs += other.off_processor_refs
        self.hop_weighted_words += other.hop_weighted_words
        for pattern, n in other.pattern_msgs.items():
            self.pattern_msgs[pattern] = \
                self.pattern_msgs.get(pattern, 0) + n
        for pattern, n in other.pattern_words.items():
            self.pattern_words[pattern] = \
                self.pattern_words.get(pattern, 0) + n
        for pattern, t in other.pattern_time.items():
            self.pattern_time[pattern] = \
                self.pattern_time.get(pattern, 0.0) + t
        for opt, n in other.opt_words_saved.items():
            self.opt_words_saved[opt] = \
                self.opt_words_saved.get(opt, 0) + n
        for opt, n in other.opt_msgs_saved.items():
            self.opt_msgs_saved[opt] = \
                self.opt_msgs_saved.get(opt, 0) + n
        return self

    def copy(self) -> "CommStats":
        out = CommStats(self.n_processors)
        out.merge(self)
        return out

    def summary(self) -> str:
        return (f"msgs={self.total_messages} words={self.total_words} "
                f"locality={self.locality:.3f} "
                f"imbalance={self.load_imbalance:.2f}")

    def __repr__(self) -> str:
        return f"<CommStats {self.summary()}>"
