"""GENERAL_BLOCK distributions (§4.1.2) — irregular contiguous blocks.

``GENERAL_BLOCK(G)`` partitions a dimension into ``NP`` contiguous blocks
whose (possibly differing) extents are controlled by the integer array
``G``: ``G(i)`` is the upper bound of block ``i``.  Block 1 is
``[L : G(1)]``, block ``i`` is ``[G(i-1)+1 : G(i)]`` and block ``NP`` is
``[G(NP-1)+1 : U]``.  The paper introduces this format ("not included in
HPF") because irregular block distributions "are important for the support
of load balancing, and can be implemented efficiently [13]" — experiment E3
reproduces that claim.

OCR note (DESIGN.md §4 item 4): the paper's text mixes ``M`` and ``NP`` in
the last-block rule; the canonical reading implemented here takes the first
``NP - 1`` entries of ``G`` as cumulative upper bounds (the paper requires
``M >= NP - 1``).  If a full ``NP``-length vector is given, its last entry
must equal the dimension's upper bound.

Blocks may be empty (``G(i) == G(i-1)``), which is essential for extreme
load-balancing cases.  A ``from_sizes`` constructor converts per-block
sizes to bounds, and ``balanced_for_costs`` computes the load-balancing
bounds used by E3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import DimDistribution, DistributionFormat
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet

__all__ = ["GeneralBlock", "GeneralBlockDim"]


@dataclass(frozen=True, eq=False)
class GeneralBlock(DistributionFormat):
    """The GENERAL_BLOCK(G) distribution format.

    Parameters
    ----------
    bounds:
        The integer array ``G``: non-decreasing cumulative upper bounds in
        *global* index space.  At least ``NP - 1`` entries must be present
        at bind time.
    """

    bounds: tuple[int, ...]

    def __init__(self, bounds: Sequence[int]) -> None:
        object.__setattr__(self, "bounds", tuple(int(b) for b in bounds))
        for a, b in zip(self.bounds, self.bounds[1:]):
            if b < a:
                raise DistributionError(
                    f"GENERAL_BLOCK bounds must be non-decreasing, got "
                    f"{self.bounds}")

    @staticmethod
    def from_sizes(sizes: Sequence[int], lower: int = 1) -> "GeneralBlock":
        """Build from per-block sizes (block ``i`` gets ``sizes[i]``
        elements); ``lower`` is the dimension's lower bound."""
        bounds = []
        acc = lower - 1
        for s in sizes:
            if s < 0:
                raise DistributionError(f"block size must be >= 0, got {s}")
            acc += s
            bounds.append(acc)
        return GeneralBlock(bounds)

    @staticmethod
    def balanced_for_costs(costs: Sequence[float], np_: int,
                           lower: int = 1) -> "GeneralBlock":
        """Bounds that balance per-index ``costs`` over ``np_`` contiguous
        blocks.

        Delegates to the single partitioner implementation
        (:func:`repro.autotune.partition.balanced_bounds`) shared with
        the autotune advisor and the irregular workloads.  The pieces
        are necessarily *contiguous* — that is the constraint
        GENERAL_BLOCK imposes and the price of its cheap bounds-vector
        representation; the non-contiguous LPT partition
        (:func:`repro.autotune.partition.lpt_partition`) can be at most
        as imbalanced but needs an INDIRECT mapping to express.
        """
        from repro.autotune.partition import balanced_bounds
        return GeneralBlock(balanced_bounds(costs, np_, lower=lower))

    def bind(self, dim: Triplet, np_: int) -> "GeneralBlockDim":
        return GeneralBlockDim(self, dim, np_)

    def __str__(self) -> str:
        inner = ",".join(str(b) for b in self.bounds)
        return f"GENERAL_BLOCK(({inner}))"


class GeneralBlockDim(DimDistribution):
    """Bound GENERAL_BLOCK: NP contiguous (possibly empty) blocks."""

    def __init__(self, fmt: GeneralBlock, dim: Triplet, np_: int) -> None:
        super().__init__(fmt, dim, np_)
        g = fmt.bounds
        if len(g) < np_ - 1:
            raise DistributionError(
                f"GENERAL_BLOCK needs at least NP-1 = {np_ - 1} bounds, "
                f"got {len(g)} (paper: M >= NP - 1)")
        if len(g) >= np_ and np_ >= 1 and g[np_ - 1] != dim.last:
            raise DistributionError(
                f"GENERAL_BLOCK bound G({np_}) = {g[np_ - 1]} must equal "
                f"the dimension upper bound {dim.last}")
        used = g[:np_ - 1]
        for b in used:
            if not dim.lower - 1 <= b <= dim.last:
                raise DistributionError(
                    f"GENERAL_BLOCK bound {b} outside [{dim.lower - 1}, "
                    f"{dim.last}] for dimension {dim}")
        # uppers[p] = inclusive upper bound of block p (0-based p)
        self.uppers = np.array(list(used) + [dim.last], dtype=np.int64)
        starts = np.concatenate(([dim.lower], self.uppers[:-1] + 1))
        self.starts = starts
        self._start_offsets = np.concatenate(
            ([0], np.cumsum(np.maximum(self.uppers - starts + 1, 0))[:-1]))

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return int(np.searchsorted(self.uppers, i, side="left"))

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return np.searchsorted(self.uppers, values, side="left").astype(np.int64)

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return values - self.starts[self.owners_of(values)]

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        lo = int(self.starts[coord])
        hi = int(self.uppers[coord])
        if lo > hi:
            return ()
        return (Triplet(lo, hi, 1),)

    def block_sizes(self) -> np.ndarray:
        """Extent of each block, 0-based coordinate order."""
        return np.maximum(self.uppers - self.starts + 1, 0)

    def local_index(self, i: int) -> int:
        coord = self.owner_coord(i)
        return i - int(self.starts[coord])

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        size = int(self.uppers[coord] - self.starts[coord] + 1)
        if not 0 <= local < max(size, 0):
            raise DistributionError(
                f"local index {local} outside general block {coord} of "
                f"size {max(size, 0)}")
        return int(self.starts[coord]) + local
