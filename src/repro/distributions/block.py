"""BLOCK distributions (§4.1.1, plus the Vienna variant of the §8 footnote).

The paper's BLOCK (the HPF definition) divides the ``N`` elements of a
dimension into contiguous blocks of identical size ``q = ceil(N / NP)``,
except possibly a smaller last block::

    delta(i) = { ceil(i / q) }           (1-based processors, L = 1)
    local index of A(i) on R(j) = i - (j-1) * q     (1-based local index)

Note that this definition may leave *trailing processors empty* (e.g.
N=10, NP=4 gives blocks of 3,3,3,1) and that the block boundary positions
depend on N through the ceiling.  The §8 footnote exploits exactly this:
with the *Vienna Fortran* definition (block sizes differ by at most one,
larger blocks first) the staggered-grid arrays U(0:N,...), V, P stay
collocated under (BLOCK,BLOCK), whereas with the HPF definition collocation
"will cause a problem if and only if the number of processors divides N
exactly".  Both definitions are implemented and selectable via
:class:`BlockVariant`.

An explicit block size ``BLOCK(m)`` is also supported as a library
extension (``is_extension``), in the spirit of the paper's generalized
distribution-function concept.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import DimDistribution, DistributionFormat
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet

__all__ = ["Block", "BlockVariant", "BlockDim", "ViennaBlockDim"]


class BlockVariant(enum.Enum):
    """Which block-size rule a BLOCK format uses."""

    HPF = "hpf"          #: q = ceil(N/NP); last block short; trailing procs may be empty
    VIENNA = "vienna"    #: balanced: sizes differ by <= 1, larger blocks first


@dataclass(frozen=True, eq=False)
class Block(DistributionFormat):
    """The BLOCK distribution format.

    Parameters
    ----------
    size:
        Explicit block size (``BLOCK(m)``, an extension); ``None`` derives
        the size from the extent per the selected variant.
    variant:
        :attr:`BlockVariant.HPF` (the paper's §4.1.1 definition, default)
        or :attr:`BlockVariant.VIENNA` (balanced blocks, §8 footnote).
    """

    size: int | None = None
    variant: BlockVariant = BlockVariant.HPF

    def __post_init__(self) -> None:
        if self.size is not None:
            if self.size <= 0:
                raise DistributionError(
                    f"BLOCK size must be positive, got {self.size}")
            object.__setattr__(self, "is_extension", True)

    def bind(self, dim: Triplet, np_: int) -> DimDistribution:
        if self.variant is BlockVariant.VIENNA and self.size is None:
            return ViennaBlockDim(self, dim, np_)
        return BlockDim(self, dim, np_)

    def __str__(self) -> str:
        inner = "" if self.size is None else f"({self.size})"
        suffix = "" if self.variant is BlockVariant.HPF else " !vienna"
        return f"BLOCK{inner}{suffix}"


class BlockDim(DimDistribution):
    """Bound HPF BLOCK (or BLOCK(m)): fixed block size ``q``."""

    def __init__(self, fmt: Block, dim: Triplet, np_: int) -> None:
        super().__init__(fmt, dim, np_)
        n = len(dim)
        q = fmt.size if fmt.size is not None else -(-n // np_)  # ceil
        if q * np_ < n:
            raise DistributionError(
                f"BLOCK({q}) over {np_} processors covers only {q * np_} "
                f"of {n} elements in {dim}")
        self.block_size = q

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return (i - self.dim.lower) // self.block_size

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return (values - self.dim.lower) // self.block_size

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        lo = self.dim.lower + coord * self.block_size
        hi = min(lo + self.block_size - 1, self.dim.last)
        if lo > hi:
            return ()
        return (Triplet(lo, hi, 1),)

    def local_index(self, i: int) -> int:
        self._check_index(i)
        return (i - self.dim.lower) % self.block_size

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return (values - self.dim.lower) % self.block_size

    def paper_local_index(self, i: int) -> int:
        """The 1-based local index of §4.1.1: ``i - (j - 1) * q`` with the
        1-based owner ``j`` (stated for L = 1 domains)."""
        j = self.owner_coord(i) + 1
        return i - (j - 1) * self.block_size

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        if not 0 <= local < self.block_size:
            raise DistributionError(
                f"local index {local} outside block of size {self.block_size}")
        i = self.dim.lower + coord * self.block_size + local
        self._check_index(i)
        return i


class ViennaBlockDim(DimDistribution):
    """Bound Vienna BLOCK: block sizes differ by at most one.

    With ``n = q * np_ + r`` (``0 <= r < np_``), the first ``r`` coordinates
    own ``q + 1`` elements and the remaining ``np_ - r`` own ``q``.  Every
    coordinate owns at least one element whenever ``n >= np_``, and block
    boundaries shift by at most one when ``n`` changes by one — the
    property the §8 footnote's collocation argument relies on.
    """

    def __init__(self, fmt: Block, dim: Triplet, np_: int) -> None:
        super().__init__(fmt, dim, np_)
        n = len(dim)
        self.q, self.r = divmod(n, np_)

    def _start_offset(self, coord: int) -> int:
        """Offset (from dim.lower) of the first element of ``coord``."""
        if coord <= self.r:
            return coord * (self.q + 1)
        return self.r * (self.q + 1) + (coord - self.r) * self.q

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        off = i - self.dim.lower
        split = self.r * (self.q + 1)
        if off < split:
            return off // (self.q + 1)
        if self.q == 0:
            # fewer elements than processors: trailing coords own nothing
            raise DistributionError(
                f"internal: offset {off} beyond populated Vienna blocks")
        return self.r + (off - split) // self.q

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        off = values - self.dim.lower
        split = self.r * (self.q + 1)
        if self.q == 0:
            return off // (self.q + 1)
        return np.where(off < split,
                        off // (self.q + 1),
                        self.r + (off - split) // self.q)

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        off = values - self.dim.lower
        coords = self.owners_of(values)
        starts = np.where(coords <= self.r, coords * (self.q + 1),
                          self.r * (self.q + 1) + (coords - self.r) * self.q)
        return off - starts

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        size = self.q + 1 if coord < self.r else self.q
        if size == 0:
            return ()
        lo = self.dim.lower + self._start_offset(coord)
        return (Triplet(lo, lo + size - 1, 1),)

    def local_index(self, i: int) -> int:
        coord = self.owner_coord(i)
        return i - self.dim.lower - self._start_offset(coord)

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        size = self.q + 1 if coord < self.r else self.q
        if not 0 <= local < size:
            raise DistributionError(
                f"local index {local} outside Vienna block of size {size}")
        return self.dim.lower + self._start_offset(coord) + local
