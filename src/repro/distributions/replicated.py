"""Replication (§2.2 footnote, §3 scalar policy, and a format extension).

The paper's Definition 1 maps indices to *sets* of processors precisely so
that "replication can be modeled as a special case of distribution, since
every array element can be distributed to an arbitrary (positive) number of
processors".  Replication arises in three places:

* the ``*`` base subscript of ALIGN (§5.1) — handled by the alignment
  machinery and CONSTRUCT;
* scalar processor arrangements with the REPLICATED policy (§3) — handled
  by :class:`ReplicatedDistribution`, a whole-domain replication onto a
  fixed set of AP units;
* an explicit per-dimension ``REPLICATED`` format (a library extension in
  the spirit of the paper's generalized distribution-function concept),
  :class:`ReplicatedFormat`, under which every target coordinate of the
  matched dimension owns every element of the array dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import DimDistribution, DistributionFormat
from repro.distributions.distribution import Distribution
from repro.errors import DistributionError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet

__all__ = ["ReplicatedFormat", "ReplicatedDim", "ReplicatedDistribution"]


@dataclass(frozen=True, eq=False)
class ReplicatedFormat(DistributionFormat):
    """Per-dimension replication across the matched target dimension."""

    is_extension = True

    def bind(self, dim: Triplet, np_: int) -> "ReplicatedDim":
        return ReplicatedDim(self, dim, np_)

    def __str__(self) -> str:
        return "REPLICATED"


class ReplicatedDim(DimDistribution):
    """Bound replication: every coordinate owns the whole dimension."""

    @property
    def is_replicated(self) -> bool:
        return True

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return 0   # primary copy lives on coordinate 0

    def owner_coords(self, i: int) -> tuple[int, ...]:
        self._check_index(i)
        return tuple(range(self.np_))

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return np.zeros(values.shape, dtype=np.int64)

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        return (self.dim.normalized(),)

    def local_index(self, i: int) -> int:
        self._check_index(i)
        return i - self.dim.lower

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return values - self.dim.lower

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        i = self.dim.lower + local
        self._check_index(i)
        return i


class ReplicatedDistribution(Distribution):
    """Whole-domain replication onto a fixed set of AP units.

    Used for scalars / scalar arrangements with the REPLICATED policy, and
    as the degenerate distribution of data on a conceptually scalar
    arrangement (§3).
    """

    def __init__(self, domain: IndexDomain, units: Sequence[int]) -> None:
        units = tuple(sorted(set(int(u) for u in units)))
        if not units:
            raise DistributionError(
                "replication target must contain at least one processor")
        super().__init__(domain)
        self.units = units

    @property
    def is_replicated(self) -> bool:
        # a single-unit "replication" is just placement on one processor
        return len(self.units) > 1

    def owners(self, index: Sequence[int]) -> frozenset[int]:
        index = tuple(index)
        if index not in self.domain:
            raise DistributionError(
                f"index {index} outside domain {self.domain}")
        return frozenset(self.units)

    def primary_owner(self, index: Sequence[int]) -> int:
        return self.units[0]

    def _compute_owner_map(self) -> np.ndarray:
        return np.full(self.domain.shape, self.units[0], dtype=np.int64,
                       order="F")

    def owners_of(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return np.full(indices.shape[0], self.units[0], dtype=np.int64)

    def processors(self) -> tuple[int, ...]:
        return self.units

    def local_extent(self, unit: int) -> int:
        return self.domain.size if unit in self.units else 0

    def describe(self) -> str:
        return (f"REPLICATED over AP units {list(self.units)} "
                f"on {self.domain}")
