"""Distribution functions and distributions (substrate S3, §2.2 and §4).

A *distribution function* ``delta^A`` for an array ``A`` with respect to a
processor array ``R`` is a total index mapping from ``I^A`` into the
non-empty subsets of ``I^R`` (Definitions 1 and 2).  The paper's
DISTRIBUTE directive builds such functions dimension-by-dimension from a
*distribution format list* whose entries are::

    BLOCK | GENERAL_BLOCK(G) | CYCLIC[(k)] | :

matched left-to-right against the dimensions of the distribution target
(a processor arrangement or a section of one).  This subpackage implements:

* the per-dimension formats and their bound forms (owner lookup, owned
  index sets as regular sections, local<->global index translation),
* both the HPF ceiling-block definition of §4.1.1 *and* the Vienna Fortran
  balanced-block definition that the §8 footnote depends on,
* ``GENERAL_BLOCK`` irregular blocks (the paper's load-balancing
  generalization) and ``CYCLIC(k)`` block-cyclic mappings,
* multi-dimensional :class:`~repro.distributions.distribution.Distribution`
  objects over a distribution target, with vectorized owner maps,
* ``CONSTRUCT(alpha, delta^B)`` (Definition 4) deriving a secondary array's
  distribution from an alignment, and
* HPF-style inquiry intrinsics.
"""

from repro.distributions.base import (
    DistributionFormat,
    DimDistribution,
    Collapsed,
)
from repro.distributions.block import Block, BlockVariant
from repro.distributions.general_block import GeneralBlock
from repro.distributions.cyclic import Cyclic
from repro.distributions.indirect import Indirect, UserDefined
from repro.distributions.replicated import ReplicatedFormat, ReplicatedDistribution
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.distributions.construct import construct, ConstructedDistribution
from repro.distributions.inquiry import (
    distribution_rank,
    distribution_format,
    distribution_target_name,
    number_of_processors,
    owners_of,
    is_replicated,
)

__all__ = [
    "DistributionFormat",
    "DimDistribution",
    "Collapsed",
    "Block",
    "BlockVariant",
    "GeneralBlock",
    "Cyclic",
    "Indirect",
    "UserDefined",
    "ReplicatedFormat",
    "ReplicatedDistribution",
    "Distribution",
    "FormatDistribution",
    "construct",
    "ConstructedDistribution",
    "distribution_rank",
    "distribution_format",
    "distribution_target_name",
    "number_of_processors",
    "owners_of",
    "is_replicated",
]
