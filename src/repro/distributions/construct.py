"""CONSTRUCT — deriving a secondary array's distribution (Definition 4).

If ``A`` is aligned to ``B`` by alignment function ``alpha`` and ``B`` is
distributed by ``delta^B``, then the distribution of ``A`` is::

    delta^A = CONSTRUCT(alpha, delta^B)
    delta^A(i) = union of delta^B(j) for j in alpha(i)

so that "if i is an index of A which is mapped to an index j of B via the
alignment function alpha, then A(i) and B(j) are guaranteed to reside in
the same processor under any given distribution for B" (§2.3).  (The
displayed formula in the scanned paper is OCR-damaged; the verbal
description above pins it down — DESIGN.md §4 item 2.)

The alignment argument is duck-typed: anything exposing ``image(index)``
(returning the set of base indices) and the two domains works, which keeps
this package free of dependencies on :mod:`repro.align`.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.distributions.distribution import Distribution
from repro.errors import MappingError
from repro.fortran.domain import IndexDomain

__all__ = ["construct", "ConstructedDistribution", "IndexMapping"]


@runtime_checkable
class IndexMapping(Protocol):
    """Protocol for alignment functions (Definition 3): a total function
    from the alignee domain into non-empty sets of base indices."""

    alignee_domain: IndexDomain
    base_domain: IndexDomain

    def image(self, index: Sequence[int]) -> frozenset[tuple[int, ...]]:
        """alpha(index): the base indices the alignee element maps to."""
        ...


class ConstructedDistribution(Distribution):
    """``CONSTRUCT(alpha, delta^B)``: the induced secondary distribution.

    Owner queries are delegated through the alignment; results are memoized
    since alignment images are deterministic.  The base distribution and
    alignment are kept so that REDISTRIBUTE of the base can rebuild the
    secondary mapping cheaply (§4.2: "the relationship expressed by the
    alignment function ... is kept invariant").
    """

    def __init__(self, alignment: IndexMapping, base: Distribution) -> None:
        if alignment.base_domain != base.domain:
            raise MappingError(
                f"alignment maps into {alignment.base_domain} but the base "
                f"distribution is over {base.domain}")
        super().__init__(alignment.alignee_domain)
        self.alignment = alignment
        self.base = base
        self._cache: dict[tuple[int, ...], frozenset[int]] = {}

    def owners(self, index: Sequence[int]) -> frozenset[int]:
        index = tuple(index)
        hit = self._cache.get(index)
        if hit is not None:
            return hit
        image = self.alignment.image(index)
        if not image:
            raise MappingError(
                f"alignment image of {index} is empty; alignment functions "
                "must be total into non-empty sets (Definition 1)")
        units: set[int] = set()
        for j in image:
            units |= self.base.owners(j)
        result = frozenset(units)
        self._cache[index] = result
        return result

    #: exact replication detection is O(domain); above this size a
    #: conservative answer (image fan-out implies possible replication)
    #: is returned instead — safe because callers only use the flag to
    #: pick slower-but-general code paths.
    _EXACT_REPLICATION_LIMIT = 65536

    @property
    def is_replicated(self) -> bool:
        if self.base.is_replicated:
            return True
        fan_out = any(len(self.alignment.image(idx)) > 1
                      for idx in self.domain)
        if not fan_out:
            return False
        if self.domain.size <= self._EXACT_REPLICATION_LIMIT:
            # a fan-out alignment into collapsed base dimensions still
            # yields single owners; check the actual owner sets
            return any(len(self.owners(idx)) > 1 for idx in self.domain)
        return True

    def _compute_owner_map(self) -> np.ndarray:
        """Vectorized when the alignment offers the ``map_linear`` bulk
        composition kernel (or the older ``image_arrays``); falls back to
        enumeration otherwise."""
        map_linear = getattr(self.alignment, "map_linear", None)
        if map_linear is not None:
            try:
                lin = map_linear(np.arange(self.domain.size,
                                           dtype=np.int64))
            except NotImplementedError:
                lin = None
            if lin is not None:
                flat = self.base.primary_owner_map().reshape(-1, order="F")
                return flat[lin].reshape(self.domain.shape, order="F")
        image_arrays = getattr(self.alignment, "image_arrays", None)
        if image_arrays is None:
            return super()._compute_owner_map()
        try:
            base_positions = image_arrays()   # (m, base_rank) positions
        except NotImplementedError:
            return super()._compute_owner_map()
        base_map = self.base.primary_owner_map()
        flat = base_map.reshape(-1, order="F")
        lin = self.base.domain.linear_indices(base_positions)
        owners = flat[lin]
        return owners.reshape(self.domain.shape, order="F")

    def owners_of(self, indices: np.ndarray) -> np.ndarray:
        """Bulk primary owners through the alignment composition: map the
        alignee index tuples to representative base indices in one
        vectorized pass, then look the owners up in the base's bulk
        kernel."""
        map_indices = getattr(self.alignment, "map_indices", None)
        if map_indices is None:
            return super().owners_of(indices)
        base_positions = map_indices(np.asarray(indices, dtype=np.int64))
        return self.base.owners_of(base_positions)

    def describe(self) -> str:
        return (f"CONSTRUCT({self.alignment!r}, {self.base.describe()}) "
                f"on {self.domain}")


def construct(alignment: IndexMapping, base: Distribution
              ) -> ConstructedDistribution:
    """``delta^A = CONSTRUCT(alpha, delta^B)`` (Definition 4)."""
    return ConstructedDistribution(alignment, base)
