"""Multi-dimensional distributions over a distribution target (§4.1).

:class:`Distribution` is the element-based mapping induced by a
distribution function (§2.2): a total function from an array's index domain
to non-empty sets of abstract processors (AP units).  The concrete
:class:`FormatDistribution` realizes the DISTRIBUTE directive: a
distribution-format list matched left-to-right to the dimensions of a
distribution target (processor arrangement or section), with ``:`` entries
consuming no target dimension (§4.1's rank rule).

Owner maps are vectorized: the target's AP units are tabulated once
(Fortran order) and per-dimension owner-coordinate arrays index into that
table, so computing the owner of every element of an N-element array costs
O(N) NumPy work, not N Python-level calls — this is the hot path of the
benchmarks and follows the vectorize-the-inner-loop guidance of the domain
guides.
"""

from __future__ import annotations

import abc
import itertools
from typing import Sequence

import numpy as np

from repro.distributions.base import (
    Collapsed,
    DimDistribution,
    DistributionFormat,
)
from repro.errors import DistributionError
from repro.fortran.domain import IndexDomain
from repro.processors.abstract import AbstractProcessors
from repro.processors.section import ProcessorSection

__all__ = ["Distribution", "FormatDistribution"]


class Distribution(abc.ABC):
    """Element-based distribution: array index -> non-empty set of AP units."""

    def __init__(self, domain: IndexDomain) -> None:
        self.domain = domain
        self._owner_map_cache: np.ndarray | None = None

    # -- ownership ------------------------------------------------------
    @abc.abstractmethod
    def owners(self, index: Sequence[int]) -> frozenset[int]:
        """AP units owning the element at ``index`` (never empty, Def. 1)."""

    def primary_owner(self, index: Sequence[int]) -> int:
        """A canonical single owner (the smallest AP unit)."""
        return min(self.owners(index))

    def primary_owner_map(self) -> np.ndarray:
        """Dense Fortran-ordered array of primary owners, one per element.

        Distributions are immutable once built (dynamic directives create
        *new* distribution objects), so the dense map is computed once per
        instance and memoized; the cached array is returned read-only to
        protect every consumer sharing it.  Subclasses customize
        :meth:`_compute_owner_map`, not this method.
        """
        cached = self._owner_map_cache
        if cached is None:
            cached = self._compute_owner_map()
            cached.setflags(write=False)
            self._owner_map_cache = cached
        return cached

    def _compute_owner_map(self) -> np.ndarray:
        """Build the dense owner map.  Subclasses override with vectorized
        implementations; this generic fallback enumerates the domain (fine
        for small/constructed cases)."""
        out = np.empty(self.domain.shape, dtype=np.int64, order="F")
        for idx in self.domain:
            pos = tuple(d.position(v) for v, d in zip(idx, self.domain.dims))
            out[pos] = self.primary_owner(idx)
        return out

    def owners_of(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`primary_owner` over an ``(m, rank)`` array of
        index tuples; returns the ``(m,)`` owning AP units.  Subclasses
        override with closed-form kernels; this fallback loops."""
        indices = np.asarray(indices, dtype=np.int64)
        return np.fromiter((self.primary_owner(tuple(row))
                            for row in indices),
                           dtype=np.int64, count=indices.shape[0])

    @property
    def is_replicated(self) -> bool:
        """True iff some element has more than one owner."""
        return False

    # -- processor-side views -------------------------------------------
    def processors(self) -> tuple[int, ...]:
        """Sorted AP units owning at least one element."""
        units: set[int] = set()
        for idx in self.domain:
            units |= self.owners(idx)
        return tuple(sorted(units))

    def local_extent(self, unit: int) -> int:
        """Number of elements owned by AP ``unit``."""
        return sum(1 for idx in self.domain if unit in self.owners(idx))

    # -- comparison -------------------------------------------------------
    def same_mapping(self, other: "Distribution") -> bool:
        """Extensional equality: identical owner sets for every element.

        This is the notion of distribution equality used by the
        inheritance-matching rule of §7 and by the template-equivalence
        experiment E12.  Cost is O(domain size); intended for validation,
        not hot paths.
        """
        if self.domain != other.domain:
            return False
        return all(self.owners(idx) == other.owners(idx)
                   for idx in self.domain)

    def describe(self) -> str:
        return f"<{type(self).__name__} on {self.domain}>"

    def __repr__(self) -> str:
        return self.describe()


class FormatDistribution(Distribution):
    """A DISTRIBUTE-directive distribution: formats over a target (§4.1).

    Parameters
    ----------
    domain:
        The distributee's (standard) index domain ``I^A``.
    formats:
        One :class:`DistributionFormat` per array dimension; the number of
        non-``:`` entries must equal the target's rank.
    target:
        The distribution target ``R`` (arrangement or section).
    ap:
        The abstract processor arrangement the target lives on.
    """

    def __init__(self, domain: IndexDomain,
                 formats: Sequence[DistributionFormat],
                 target: ProcessorSection,
                 ap: AbstractProcessors) -> None:
        super().__init__(domain)
        formats = tuple(formats)
        if len(formats) != domain.rank:
            raise DistributionError(
                f"distribution format list has {len(formats)} entries for "
                f"rank-{domain.rank} distributee (§4.1 requires equality)")
        consuming = [k for k, f in enumerate(formats) if f.consumes_target_dim]
        if len(consuming) != target.rank:
            raise DistributionError(
                f"format list with {len(consuming)} non-colon entries "
                f"requires a rank-{len(consuming)} target; {target} has "
                f"rank {target.rank} (§4.1 rank rule)")
        self.formats = formats
        self.target = target
        self.ap = ap
        # Bind: non-colon entries matched left-to-right to target dims.
        self.dims: list[DimDistribution] = []
        #: target dim index for each array dim (None for collapsed dims)
        self.target_dim_of: list[int | None] = []
        t = 0
        tshape = target.shape
        for k, fmt in enumerate(formats):
            if fmt.consumes_target_dim:
                self.dims.append(fmt.bind(domain.dims[k], tshape[t]))
                self.target_dim_of.append(t)
                t += 1
            else:
                self.dims.append(Collapsed().bind(domain.dims[k], 1))
                self.target_dim_of.append(None)
        # Tabulate target index -> AP unit once (Fortran order).
        units = target.ap_units_all(ap)
        self._unit_table = np.array(units, dtype=np.int64).reshape(
            tshape, order="F") if target.rank else np.array(units[0])
        self._unit_to_target: dict[int, tuple[int, ...]] = {}
        for tidx, u in zip(target.domain(), units):
            self._unit_to_target.setdefault(int(u), tidx)

    # -- ownership ------------------------------------------------------
    def _target_coords(self, index: Sequence[int]) -> list[tuple[int, ...]]:
        """Per-array-dim owning coordinate tuples (singletons unless a dim
        is replicated); collapsed dims contribute nothing."""
        index = tuple(index)
        if len(index) != self.domain.rank:
            raise DistributionError(
                f"rank-{self.domain.rank} distribution indexed with {index}")
        coords = []
        for v, dd, tdim in zip(index, self.dims, self.target_dim_of):
            if tdim is None:
                dd._check_index(v)
                continue
            coords.append(dd.owner_coords(v))
        return coords

    def owners(self, index: Sequence[int]) -> frozenset[int]:
        coords = self._target_coords(index)
        units = set()
        for combo in itertools.product(*coords) if coords else [()]:
            units.add(int(self._unit_table[combo]) if combo
                      else int(self._unit_table))
        return frozenset(units)

    def primary_owner(self, index: Sequence[int]) -> int:
        index = tuple(index)
        combo = []
        for v, dd, tdim in zip(index, self.dims, self.target_dim_of):
            if tdim is None:
                dd._check_index(v)
                continue
            combo.append(dd.owner_coord(v))
        return (int(self._unit_table[tuple(combo)]) if combo
                else int(self._unit_table))

    def _compute_owner_map(self) -> np.ndarray:
        """Vectorized dense owner map (primary owners)."""
        if self.domain.rank == 0:
            return np.array(int(self._unit_table), dtype=np.int64)
        idx_arrays = []
        rank = self.domain.rank
        for k, (dd, tdim) in enumerate(zip(self.dims, self.target_dim_of)):
            if tdim is None:
                continue
            coords = dd.owners_of(self.domain.dims[k].values())
            shape = [1] * rank
            shape[k] = len(coords)
            idx_arrays.append(coords.reshape(shape))
        if not idx_arrays:
            base = np.array(int(self._unit_table), dtype=np.int64)
            return np.broadcast_to(base, self.domain.shape).copy(order="F")
        out = self._unit_table[tuple(idx_arrays)]
        return np.asfortranarray(np.broadcast_to(out, self.domain.shape))

    def owners_of(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized primary owners of an ``(m, rank)`` array of index
        tuples: per-dimension bulk owner kernels composed through the unit
        table (no Python-level per-element work)."""
        indices = np.asarray(indices, dtype=np.int64)
        combo = []
        for k, (dd, tdim) in enumerate(zip(self.dims, self.target_dim_of)):
            if tdim is None:
                continue
            combo.append(dd.owners_of(indices[:, k]))
        if not combo:
            return np.full(indices.shape[0], int(self._unit_table),
                           dtype=np.int64)
        return self._unit_table[tuple(combo)]

    def local_index_of(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized per-dimension local indices of an ``(m, rank)`` array
        of index tuples on their owning units: an ``(m, rank)`` array whose
        column ``k`` is the dimension-``k`` local index (collapsed
        dimensions use their whole-dimension local numbering)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty(indices.shape, dtype=np.int64)
        for k, dd in enumerate(self.dims):
            out[:, k] = dd.local_index_of(indices[:, k])
        return out

    @property
    def is_replicated(self) -> bool:
        return any(d.is_replicated for d in self.dims)

    # -- processor-side views -------------------------------------------
    def processors(self) -> tuple[int, ...]:
        per_dim = []
        for dd, tdim in zip(self.dims, self.target_dim_of):
            if tdim is None:
                continue
            per_dim.append([p for p in range(dd.np_)
                            if dd.local_extent(p) > 0])
        units = set()
        for combo in itertools.product(*per_dim) if per_dim else [()]:
            units.add(int(self._unit_table[combo]) if combo
                      else int(self._unit_table))
        return tuple(sorted(units))

    def target_index_of_unit(self, unit: int) -> tuple[int, ...]:
        """Target index (in ``I^R``) of an AP unit used by this target."""
        try:
            return self._unit_to_target[unit]
        except KeyError:
            raise DistributionError(
                f"AP unit {unit} is not part of target {self.target}") from None

    def dim_coords_of_unit(self, unit: int) -> tuple[int, ...]:
        """Per-consuming-dimension 0-based coordinates of ``unit``."""
        tidx = self.target_index_of_unit(unit)
        return tuple(v - 1 for v in tidx)   # I^R is standard (1-based)

    def local_extent(self, unit: int) -> int:
        if unit not in self._unit_to_target:
            return 0
        coords = self.dim_coords_of_unit(unit)
        extent = 1
        c = iter(coords)
        for dd, tdim in zip(self.dims, self.target_dim_of):
            extent *= dd.local_extent(next(c)) if tdim is not None \
                else dd.local_extent(0)
        return extent

    def local_shape(self, unit: int) -> tuple[int, ...]:
        """Per-array-dimension local extent on ``unit``."""
        coords = self.dim_coords_of_unit(unit)
        c = iter(coords)
        return tuple(dd.local_extent(next(c)) if tdim is not None
                     else dd.local_extent(0)
                     for dd, tdim in zip(self.dims, self.target_dim_of))

    def owned_triplets(self, unit: int) -> tuple[tuple, ...]:
        """Per-array-dimension owned index sets of ``unit`` (each a tuple
        of triplets) — the regular-section decomposition of the owned
        block, consumed by the analytic communication-set engine."""
        coords = self.dim_coords_of_unit(unit)
        c = iter(coords)
        return tuple(dd.owned(next(c)) if tdim is not None else dd.owned(0)
                     for dd, tdim in zip(self.dims, self.target_dim_of))

    def describe(self) -> str:
        fmts = ", ".join(str(f) for f in self.formats)
        return f"DISTRIBUTE ({fmts}) TO {self.target} on {self.domain}"
