"""Distribution inquiry intrinsics.

§8 argues that "inquiry functions must be used to determine the properties
of alignments and/or distributions passed into the subroutine" — when a
dummy argument inherits a mapping that cannot be named statically, the
program can still interrogate it.  These free functions are the library's
rendering of that inquiry interface (HPF later standardized a similar set
as ``HPF_DISTRIBUTION`` / ``HPF_ALIGNMENT``).
"""

from __future__ import annotations

from typing import Sequence

from repro.distributions.base import Collapsed
from repro.distributions.distribution import Distribution, FormatDistribution

__all__ = [
    "distribution_rank",
    "distribution_format",
    "distribution_target_name",
    "number_of_processors",
    "owners_of",
    "is_replicated",
]


def distribution_rank(dist: Distribution) -> int:
    """Rank of the distributed index domain."""
    return dist.domain.rank


def distribution_format(dist: Distribution, dim: int) -> str:
    """Printable distribution format of 0-based dimension ``dim``
    (``"BLOCK"``, ``"CYCLIC(3)"``, ``":"``, or ``"DERIVED"`` for
    constructed/replicated distributions without a per-dim format)."""
    if isinstance(dist, FormatDistribution):
        return str(dist.formats[dim])
    return "DERIVED"


def distribution_target_name(dist: Distribution) -> str | None:
    """Name of the distribution target, if the distribution has one."""
    if isinstance(dist, FormatDistribution):
        return dist.target.name
    return None


def number_of_processors(dist: Distribution) -> int:
    """Number of AP units owning at least one element."""
    return len(dist.processors())


def owners_of(dist: Distribution, index: Sequence[int]) -> tuple[int, ...]:
    """Sorted AP units owning the given element."""
    return tuple(sorted(dist.owners(index)))


def is_replicated(dist: Distribution) -> bool:
    """True iff some element of the array has more than one owner."""
    return dist.is_replicated


def is_distributed_dim(dist: Distribution, dim: int) -> bool:
    """True iff dimension ``dim`` is actually spread over processors."""
    if isinstance(dist, FormatDistribution):
        return not isinstance(dist.formats[dim], Collapsed)
    return True
