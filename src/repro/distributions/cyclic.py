"""CYCLIC(k) block-cyclic distributions (§4.1.3).

``CYCLIC(k)`` (``k >= 1``) defines contiguous segments of length ``k`` and
maps them cyclically to the processors; ``CYCLIC`` abbreviates
``CYCLIC(1)``.  In 0-based coordinates over a dimension ``[L:U]``::

    owner(i)  = ((i - L) // k) mod NP
    cycle(i)  = (i - L) // (k * NP)          (which round-robin pass)
    local(i)  = cycle(i) * k + (i - L) mod k  (packed local layout)

OCR note (DESIGN.md §4 item 1): the paper's formula prints as
``MODULO([i/k], NP + 1)``, a scan artifact; the formula above is the
standard HPF semantics it abbreviates (1-based form:
``((ceil(i/k) - 1) mod NP) + 1``), and the CYCLIC(1) column of tests
checks it against the paper's worked staggered-grid argument (every
neighbouring element lands on a different processor, §8.1.1).

The owned set of a coordinate is a union of ``k``-length segments with
period ``k * NP`` — still a regular section list, so analytic
communication sets remain available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import DimDistribution, DistributionFormat
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet

__all__ = ["Cyclic", "CyclicDim"]


@dataclass(frozen=True, eq=False)
class Cyclic(DistributionFormat):
    """The CYCLIC[(k)] distribution format (k defaults to 1)."""

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise DistributionError(
                f"CYCLIC block length must satisfy k >= 1, got {self.k}")

    def bind(self, dim: Triplet, np_: int) -> "CyclicDim":
        return CyclicDim(self, dim, np_)

    def __str__(self) -> str:
        return "CYCLIC" if self.k == 1 else f"CYCLIC({self.k})"


class CyclicDim(DimDistribution):
    """Bound CYCLIC(k): k-segments dealt round-robin to NP coordinates."""

    def __init__(self, fmt: Cyclic, dim: Triplet, np_: int) -> None:
        super().__init__(fmt, dim, np_)
        self.k = fmt.k
        self.period = self.k * np_

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return ((i - self.dim.lower) // self.k) % self.np_

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return ((values - self.dim.lower) // self.k) % self.np_

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        off = values - self.dim.lower
        return (off // self.period) * self.k + off % self.k

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        if self.k == 1:
            start = self.dim.lower + coord
            if start > self.dim.last:
                return ()
            return (Triplet(start, self.dim.last, self.np_),)
        out = []
        start = self.dim.lower + coord * self.k
        while start <= self.dim.last:
            out.append(Triplet(start,
                               min(start + self.k - 1, self.dim.last), 1))
            start += self.period
        return tuple(out)

    def local_index(self, i: int) -> int:
        self._check_index(i)
        off = i - self.dim.lower
        return (off // self.period) * self.k + off % self.k

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        if local < 0:
            raise DistributionError(f"negative local index {local}")
        cycle, within = divmod(local, self.k)
        i = self.dim.lower + cycle * self.period + coord * self.k + within
        self._check_index(i)
        return i

    def local_extent(self, coord: int) -> int:
        self._check_coord(coord)
        n = len(self.dim)
        full_periods, rem = divmod(n, self.period)
        extra = min(max(rem - coord * self.k, 0), self.k)
        return full_periods * self.k + extra
