"""INDIRECT (user-defined) distributions — the Vienna Fortran capability
the paper invokes in §8.1.2.

"The current HPF language specification has an unfortunate shortcoming:
HPF cannot (in contrast to, for example, Kali or Vienna Fortran, which
include the concept of user-defined distribution functions), describe
explicitly every distribution that it can actually generate."

This module supplies that missing expressiveness as a library extension
in the spirit of the paper's generalized distribution-function concept
(§1 item 3: "defined in a general way so that future language standards
may easily incorporate more general mappings"):

* :class:`Indirect` — ``INDIRECT(M)``: an explicit mapping array ``M``
  giving the 0-based owner coordinate of every index (Vienna Fortran's
  INDIRECT);
* :class:`UserDefined` — an arbitrary Python owner function, vectorized
  on demand.

Both bind to ordinary :class:`~repro.distributions.base.DimDistribution`
objects: owned sets are run-compressed into subscript triplets so the
analytic communication-set machinery keeps working whenever the mapping
is piecewise regular, and experiment EA2 shows the §8.1.2 "inexpressible
inherited distribution" becoming directly expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.distributions.base import DimDistribution, DistributionFormat
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet

__all__ = ["Indirect", "UserDefined", "IndirectDim",
           "compress_to_triplets"]


def compress_to_triplets(values: np.ndarray) -> tuple[Triplet, ...]:
    """Compress a sorted (strictly increasing) integer array into maximal
    constant-stride triplets — the regular-section decomposition of an
    arbitrary index set (greedy left-to-right)."""
    values = np.asarray(values, dtype=np.int64)
    n = len(values)
    out: list[Triplet] = []
    i = 0
    while i < n:
        if i + 1 == n:
            out.append(Triplet.single(int(values[i])))
            break
        stride = int(values[i + 1] - values[i])
        j = i + 1
        while j + 1 < n and int(values[j + 1] - values[j]) == stride:
            j += 1
        out.append(Triplet(int(values[i]), int(values[j]), stride))
        i = j + 1
    return tuple(out)


@dataclass(frozen=True, eq=False)
class Indirect(DistributionFormat):
    """``INDIRECT(M)``: explicit per-index owner coordinates.

    ``mapping[k]`` is the 0-based owner coordinate of the k-th element
    of the bound dimension (in dimension order).
    """

    mapping: tuple[int, ...]
    is_extension = True

    def __init__(self, mapping: Sequence[int]) -> None:
        object.__setattr__(self, "mapping",
                           tuple(int(v) for v in mapping))

    def bind(self, dim: Triplet, np_: int) -> "IndirectDim":
        arr = np.asarray(self.mapping, dtype=np.int64)
        if len(arr) != len(dim):
            raise DistributionError(
                f"INDIRECT mapping has {len(arr)} entries for dimension "
                f"{dim} of extent {len(dim)}")
        if arr.size and (arr.min() < 0 or arr.max() >= np_):
            raise DistributionError(
                f"INDIRECT owner coordinates must lie in 0..{np_ - 1}, "
                f"got range [{arr.min()}, {arr.max()}]")
        return IndirectDim(self, dim, np_, arr)

    def __str__(self) -> str:
        if len(self.mapping) <= 8:
            inner = ",".join(str(v) for v in self.mapping)
        else:
            inner = ",".join(str(v) for v in self.mapping[:6]) + ",..."
        return f"INDIRECT(({inner}))"


@dataclass(frozen=True, eq=False)
class UserDefined(DistributionFormat):
    """A user-defined distribution function: any callable
    ``owner(global_index) -> coordinate`` (the Kali/Vienna concept).

    The callable is sampled once per element at bind time, so all the
    invariants (totality, partition, local addressing) are enforced on
    the concrete mapping, and binding is deterministic thereafter.
    """

    fn: Callable[[int], int]
    name: str = "f"
    is_extension = True

    def bind(self, dim: Triplet, np_: int) -> "IndirectDim":
        arr = np.fromiter((int(self.fn(i)) for i in dim),
                          dtype=np.int64, count=len(dim))
        if arr.size and (arr.min() < 0 or arr.max() >= np_):
            raise DistributionError(
                f"user-defined distribution {self.name!r} produced "
                f"coordinates outside 0..{np_ - 1}")
        return IndirectDim(self, dim, np_, arr)

    def __str__(self) -> str:
        return f"USER({self.name})"


class IndirectDim(DimDistribution):
    """Bound explicit mapping: O(1) owner lookup via the mapping array,
    owned sets run-compressed into regular sections."""

    def __init__(self, fmt: DistributionFormat, dim: Triplet, np_: int,
                 mapping: np.ndarray) -> None:
        super().__init__(fmt, dim, np_)
        self.mapping = mapping
        # local index = rank of the element among the owner's elements
        order = np.argsort(mapping, kind="stable")
        self._local_of_offset = np.empty(len(mapping), dtype=np.int64)
        counts = np.bincount(mapping, minlength=np_)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self._local_of_offset[order] = \
            np.arange(len(mapping)) - np.repeat(starts, counts)
        self._counts = counts
        self._owned_cache: dict[int, tuple[Triplet, ...]] = {}

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return int(self.mapping[i - self.dim.lower])

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return self.mapping[values - self.dim.lower]

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return self._local_of_offset[values - self.dim.lower]

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        hit = self._owned_cache.get(coord)
        if hit is None:
            offsets = np.nonzero(self.mapping == coord)[0]
            hit = compress_to_triplets(offsets + self.dim.lower)
            self._owned_cache[coord] = hit
        return hit

    def local_extent(self, coord: int) -> int:
        self._check_coord(coord)
        return int(self._counts[coord])

    def local_index(self, i: int) -> int:
        self._check_index(i)
        return int(self._local_of_offset[i - self.dim.lower])

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        if not 0 <= local < self._counts[coord]:
            raise DistributionError(
                f"local index {local} outside indirect extent "
                f"{self._counts[coord]} of coordinate {coord}")
        offsets = np.nonzero(self.mapping == coord)[0]
        return int(offsets[local]) + self.dim.lower
