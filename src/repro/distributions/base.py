"""Distribution-format and bound-dimension abstractions (§4.1).

The DISTRIBUTE directive's format list is *declarative*; a format only
becomes a concrete index mapping once it is bound to a particular array
dimension (a stride-1 triplet ``[L:U]``) and a particular number of target
processors ``NP``.  The two-phase design mirrors that:

* :class:`DistributionFormat` — the parsed, unbound format (``BLOCK``,
  ``CYCLIC(3)``, ``GENERAL_BLOCK(G)``, ``:``);
* :class:`DimDistribution` — the format bound to one dimension, exposing
  owner lookup (scalar and vectorized), the owned index set of each target
  coordinate as a tuple of subscript triplets (always a *regular section*),
  and the local/global index translation the paper specifies.

Target coordinates are 0-based here (``0 .. NP-1``); the 1-based processor
indices of the paper's formulas appear only in docstrings and tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError
from repro.fortran.triplet import Triplet

__all__ = ["DistributionFormat", "DimDistribution", "Collapsed",
           "CollapsedDim", "check_bindable"]


def check_bindable(dim: Triplet, np_: int) -> None:
    """Validate the (dimension, NP) pair common to every format."""
    if dim.stride != 1:
        raise DistributionError(
            f"distributions bind to standard (stride-1) dimensions, got {dim}")
    if len(dim) == 0:
        raise DistributionError(f"cannot distribute empty dimension {dim}")
    if np_ <= 0:
        raise DistributionError(
            f"distribution target dimension must have at least one "
            f"processor, got {np_}")


class DistributionFormat(abc.ABC):
    """An unbound distribution-format-list entry.

    ``consumes_target_dim`` is False exactly for ``:`` (a colon entry says
    the corresponding array dimension is not distributed, and the rank of
    the target is the distributee rank reduced by the number of colons,
    §4.1).
    """

    #: whether this entry is matched against a target dimension
    consumes_target_dim: bool = True
    #: True for formats beyond the paper's §4 list (library extensions)
    is_extension: bool = False

    @abc.abstractmethod
    def bind(self, dim: Triplet, np_: int) -> "DimDistribution":
        """Bind the format to array dimension ``dim`` and ``np_`` target
        processors, yielding the concrete per-dimension mapping."""

    @abc.abstractmethod
    def __str__(self) -> str: ...

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))


class DimDistribution(abc.ABC):
    """A distribution format bound to one array dimension.

    Concrete subclasses guarantee:

    * totality — every index of the dimension has at least one owner
      (Definition 1: an index mapping is a *total* function into the
      powerset minus the empty set);
    * the owned set of each coordinate is a finite union of subscript
      triplets (regular sections), enabling analytic communication sets;
    * local/global translation is bijective on each coordinate's owned set.
    """

    def __init__(self, fmt: DistributionFormat, dim: Triplet, np_: int) -> None:
        check_bindable(dim, np_)
        self.format = fmt
        self.dim = dim
        self.np_ = np_

    # -- ownership ------------------------------------------------------
    @abc.abstractmethod
    def owner_coord(self, i: int) -> int:
        """0-based target coordinate owning global index ``i`` (the unique
        owner for non-replicated formats)."""

    def owner_coords(self, i: int) -> tuple[int, ...]:
        """All owning coordinates (singleton unless replicated)."""
        return (self.owner_coord(i),)

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_coord` over an array of global indices
        (int64 in, int64 out) — the bulk ownership kernel the schedule
        compiler consumes.  Subclasses override with closed-form NumPy
        expressions; this fallback loops.
        """
        values = np.asarray(values, dtype=np.int64)
        out = np.empty(values.shape, dtype=np.int64)
        flat = values.reshape(-1)
        oflat = out.reshape(-1)
        for k, v in enumerate(flat):
            oflat[k] = self.owner_coord(int(v))
        return out

    def owner_coord_array(self, values: np.ndarray) -> np.ndarray:
        """Backward-compatible alias of :meth:`owners_of`."""
        return self.owners_of(values)

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`local_index` over an array of global indices
        (int64 in, int64 out) — the bulk local-addressing kernel (public
        API for node-code generation; exercised by the test suite).
        Subclasses override with closed-form NumPy expressions; this
        fallback loops.
        """
        values = np.asarray(values, dtype=np.int64)
        out = np.empty(values.shape, dtype=np.int64)
        flat = values.reshape(-1)
        oflat = out.reshape(-1)
        for k, v in enumerate(flat):
            oflat[k] = self.local_index(int(v))
        return out

    @abc.abstractmethod
    def owned(self, coord: int) -> tuple[Triplet, ...]:
        """The global indices owned by target ``coord``, as an ordered
        tuple of disjoint ascending triplets (possibly empty)."""

    @property
    def is_replicated(self) -> bool:
        return False

    # -- local addressing -------------------------------------------------
    @abc.abstractmethod
    def local_index(self, i: int) -> int:
        """0-based position of ``i`` within its owner's local segment."""

    @abc.abstractmethod
    def global_index(self, coord: int, local: int) -> int:
        """Inverse of :meth:`local_index` for owner ``coord``."""

    def local_extent(self, coord: int) -> int:
        """Number of elements owned by ``coord``."""
        return sum(len(t) for t in self.owned(coord))

    # -- checks -----------------------------------------------------------
    def _check_index(self, i: int) -> None:
        if i not in self.dim:
            raise DistributionError(
                f"index {i} outside distributed dimension {self.dim}")

    def _check_coord(self, coord: int) -> None:
        if not 0 <= coord < self.np_:
            raise DistributionError(
                f"target coordinate {coord} outside 0..{self.np_ - 1}")

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.format} on {self.dim} "
                f"over {self.np_} procs>")


# ----------------------------------------------------------------------
# The ':' entry — dimension not distributed
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class Collapsed(DistributionFormat):
    """The ``:`` distribution format: the dimension is not distributed.

    A colon entry does not consume a target dimension; all elements along
    the dimension travel with the owner determined by the other dimensions.
    """

    consumes_target_dim = False

    def bind(self, dim: Triplet, np_: int = 1) -> "CollapsedDim":
        if np_ != 1:
            raise DistributionError(
                "':' does not consume a target dimension; bind with np_=1")
        return CollapsedDim(self, dim, 1)

    def __str__(self) -> str:
        return ":"


class CollapsedDim(DimDistribution):
    """Bound ``:`` — one virtual coordinate owning the whole dimension."""

    def owner_coord(self, i: int) -> int:
        self._check_index(i)
        return 0

    def owners_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return np.zeros(values.shape, dtype=np.int64)

    def owned(self, coord: int) -> tuple[Triplet, ...]:
        self._check_coord(coord)
        return (self.dim.normalized(),)

    def local_index(self, i: int) -> int:
        self._check_index(i)
        return i - self.dim.lower

    def local_index_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        return values - self.dim.lower

    def global_index(self, coord: int, local: int) -> int:
        self._check_coord(coord)
        i = self.dim.lower + local
        self._check_index(i)
        return i
