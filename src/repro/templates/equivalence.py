"""Template-free equivalents of template-based specifications (E12).

The paper's central claim is that the HPF distribution/alignment model can
be expressed "in a clear and concise manner without templates, while
retaining the intended functionality".  Two constructive strategies back
that claim, and this module implements both:

1. **Witness ("natural template") strategy** — replace the template by a
   real array with the same index domain, distribute it identically, and
   align the same arrays to it with the same directives.  This is the
   paper's observation that "natural templates" (the index domains of
   actual arrays) suffice.
2. **GENERAL_BLOCK strategy** (§8.1.1) — for BLOCK/GENERAL_BLOCK-
   distributed templates and affine, non-replicating alignments, the
   induced per-array mapping is itself a contiguous irregular-block
   mapping: compute the pre-image of each template block under the
   alignment and emit per-dimension ``GENERAL_BLOCK`` bounds (plus a
   processor *section* target when a template axis is pinned by a
   dummyless subscript).  No auxiliary array is needed — this is "the
   much more general solution" the paper offers via its generalized block
   distribution.

:func:`mappings_equivalent` checks extensional equality of the resulting
element-to-processor maps.
"""

from __future__ import annotations

from typing import Sequence


from repro.align.reduce import ExprAxis, ReplicatedAxis
from repro.align.spec import AlignSpec
from repro.core.dataspace import DataSpace
from repro.core.procedures import distributions_equal
from repro.distributions.base import Collapsed, DistributionFormat
from repro.distributions.block import BlockDim, ViennaBlockDim
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.distributions.general_block import GeneralBlock, GeneralBlockDim
from repro.errors import MappingError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.processors.section import ProcessorSection
from repro.templates.model import TemplateDataSpace

__all__ = ["derive_witness_model", "derive_general_block_formats",
           "mappings_equivalent"]


def mappings_equivalent(a: Distribution, b: Distribution) -> bool:
    """Extensional equality of element-to-processor maps."""
    return distributions_equal(a, b)


def derive_witness_model(tds: TemplateDataSpace, template_name: str,
                         specs: Sequence[AlignSpec],
                         witness_name: str | None = None) -> DataSpace:
    """Build a template-free :class:`DataSpace` replacing ``template_name``
    by a real witness array, re-issuing the same alignment directives.

    ``specs`` are the original ALIGN directives whose base is the
    template.  Returns the new data space; array names are preserved, the
    witness is ``witness_name`` (default ``_W_<template>``).
    """
    t = tds.templates[template_name]
    witness = witness_name or f"_W_{template_name}"
    ds = DataSpace(ap=tds.ap)
    ds.env.update(tds.env)
    bounds = [(d.lower, d.last) for d in t.domain.dims]
    ds.declare(witness, *bounds)
    tdist = tds._dist.get(template_name)
    if tdist is None:
        raise MappingError(
            f"template {template_name!r} has no distribution to mirror")
    ds.distribute(witness, tdist.formats, to=tdist.target)
    for spec in specs:
        if spec.base != template_name:
            raise MappingError(
                f"spec {spec} does not align to template "
                f"{template_name!r}")
        arr = tds.arrays[spec.alignee]
        bounds = [(d.lower, d.last) for d in arr.domain.dims]
        ds.declare(spec.alignee, *bounds)
        ds.align(AlignSpec(spec.alignee, spec.axes, witness,
                           spec.subscripts))
    return ds


def derive_general_block_formats(
        template_dist: FormatDistribution,
        alignment, array_domain: IndexDomain
) -> tuple[tuple[DistributionFormat, ...], ProcessorSection]:
    """§8.1.1's template-free derivation for block-partitioned templates.

    Parameters
    ----------
    template_dist:
        The template's distribution; every consuming dimension must be a
        contiguous block partition (BLOCK or GENERAL_BLOCK).
    alignment:
        The array's :class:`~repro.align.function.AlignmentFunction` into
        the template (affine, non-replicating).
    array_domain:
        The array's index domain.

    Returns
    -------
    (formats, target):
        Per-array-dimension formats (``GENERAL_BLOCK`` or ``:``) and the
        processor-section target (dummyless template subscripts pin the
        corresponding target coordinate — the paper's processor-section
        generalization).
    """
    reduced = alignment.reduced
    tdom = alignment.base_domain
    if tdom != template_dist.domain:
        raise MappingError("alignment base does not match template domain")
    # array dim -> (template axis, a, b) for dummy-using affine axes
    used_by_array_dim: dict[int, tuple[int, int, int]] = {}
    pinned: dict[int, int] = {}    # template axis -> fixed value
    for j, ax in enumerate(reduced.base_axes):
        if isinstance(ax, ReplicatedAxis):
            raise MappingError(
                "GENERAL_BLOCK derivation does not handle replicated "
                "template axes; use the witness strategy")
        assert isinstance(ax, ExprAxis)
        if ax.affine is None:
            raise MappingError(
                f"template axis {j + 1} is not affine in a dummy; use "
                "the witness strategy")
        a, b = ax.affine
        if ax.dummy is None or a == 0:
            pinned[j] = b
            continue
        k = reduced.axis_of_dummy(ax.dummy)
        if k in used_by_array_dim:
            raise MappingError("skew alignment cannot occur here")
        if a < 0:
            raise MappingError(
                "GENERAL_BLOCK derivation requires increasing alignments "
                "(a > 0); use the witness strategy")
        used_by_array_dim[k] = (j, a, b)

    formats: list[DistributionFormat] = []
    target_subscripts: list = []
    # walk template consuming dims in order to build the section target
    consumed_axis_of_tdim: dict[int, int] = {}
    for j, tdim_idx in enumerate(template_dist.target_dim_of):
        if tdim_idx is not None:
            consumed_axis_of_tdim[j] = tdim_idx

    # For each template axis in order, decide the target subscript.
    tshape = template_dist.target.shape
    keep_tdims: dict[int, int] = {}   # template axis -> target dim
    for j, tdim_idx in consumed_axis_of_tdim.items():
        if j in pinned:
            dd = template_dist.dims[j]
            coord = dd.owner_coord(pinned[j])
            target_subscripts.append(coord + 1)   # I^R is 1-based
        else:
            target_subscripts.append(
                Triplet(1, tshape[tdim_idx], 1))
            keep_tdims[j] = tdim_idx

    for k in range(array_domain.rank):
        info = used_by_array_dim.get(k)
        adim = array_domain.dims[k]
        if info is None:
            formats.append(Collapsed())
            continue
        j, a, b = info
        if j not in consumed_axis_of_tdim:
            # aligned to a collapsed template axis: array dim collapses too
            formats.append(Collapsed())
            continue
        dd = template_dist.dims[j]
        if not isinstance(dd, (BlockDim, ViennaBlockDim, GeneralBlockDim)):
            raise MappingError(
                f"template axis {j + 1} is {dd.format}; GENERAL_BLOCK "
                "derivation needs a contiguous block partition — use the "
                "witness strategy")
        np_ = dd.np_
        bounds = []
        for p in range(np_ - 1):
            owned = dd.owned(p)
            hi = owned[-1].last if owned else (
                bounds[-1] if bounds else adim.lower - 1)
            # pre-image of template position <= hi under i -> a*i + b:
            # a*i + b <= hi  =>  i <= (hi - b) / a
            pre = (hi - b) // a
            pre = min(max(pre, adim.lower - 1), adim.last)
            if bounds and pre < bounds[-1]:
                pre = bounds[-1]
            bounds.append(pre)
        formats.append(GeneralBlock(bounds))

    target = ProcessorSection(template_dist.target.arrangement,
                              _compose_target_subscripts(
                                  template_dist.target, target_subscripts))
    return tuple(formats), target


def _compose_target_subscripts(outer: ProcessorSection,
                                subs: list) -> tuple:
    """Push section subscripts (over the target's standard domain I^R)
    back to subscripts over the underlying arrangement."""
    out = []
    it = iter(subs)
    for s in outer.section.subscripts:
        if isinstance(s, Triplet):
            inner = next(it)
            if isinstance(inner, Triplet):
                out.append(s.compose(inner, base=1))
            else:
                out.append(s.value_at(int(inner) - 1))
        else:
            out.append(s)
    return tuple(out)


def verify_equivalence(tds: TemplateDataSpace, template_name: str,
                       specs: Sequence[AlignSpec]) -> dict[str, bool]:
    """Run the witness strategy and compare ownership maps array by array.

    Returns ``{array_name: equivalent}`` — experiment E12's check.
    """
    ds = derive_witness_model(tds, template_name, specs)
    out: dict[str, bool] = {}
    for spec in specs:
        a = tds.distribution_of(spec.alignee)
        b = ds.distribution_of(spec.alignee)
        out[spec.alignee] = mappings_equivalent(a, b)
    return out
