"""The INHERIT directive workaround (§8.1.2, §8.2 problem 2).

Because templates cannot be passed to procedures, draft HPF introduced
INHERIT for dummy arguments: the dummy conceptually carries the *ultimate
alignment target of the actual argument* into the procedure, so that a
subsequent ``DISTRIBUTE X * (CYCLIC(3))`` talks about "the distribution of
the array associated with the actual argument", **not** the distribution
of the section the dummy actually received — "an element of maximum
surprise for the user".

:func:`inherit_mapping` computes exactly that object for a (possibly
sectioned) actual: the ultimate base's domain, the composed alignment from
the dummy's index domain into it, and the base's distribution.  The
§8.1.2 example — CALL SUB(A(2:996:2)) with A CYCLIC(3)-distributed — is
exercised in tests and experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.align.function import AlignmentFunction, identity_alignment
from repro.align.ast import Const, Dummy, affine_coefficients, fold_constants
from repro.align.reduce import ExprAxis, ReducedAlignment
from repro.distributions.construct import ConstructedDistribution
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.errors import ConformanceError, TemplateError
from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection
from repro.fortran.triplet import Triplet
from repro.templates.model import ChainedAlignment, TemplateDataSpace

__all__ = ["InheritedTemplateMapping", "inherit_mapping",
           "section_alignment"]


def section_alignment(section: ArraySection) -> AlignmentFunction:
    """The affine alignment from a section's standard domain into its
    parent domain (dummy index ``k`` of a triplet ``l:u:s`` maps to parent
    index ``l + (k-1)*s``; scalar subscripts become dummyless constants)."""
    sdom = section.domain()
    names = tuple(f"_S{k + 1}" for k in range(sdom.rank))
    axes = []
    kept = 0
    for s in section.subscripts:
        if isinstance(s, Triplet):
            d = names[kept]
            expr = fold_constants(
                (Dummy(d) - 1) * s.stride + s.lower, {})
            axes.append(ExprAxis(expr, d, affine_coefficients(expr, d)))
            kept += 1
        else:
            axes.append(ExprAxis(Const(int(s)), None, (0, int(s))))
    reduced = ReducedAlignment(
        alignee_domain=sdom, base_domain=section.parent,
        dummy_names=names, base_axes=tuple(axes))
    return AlignmentFunction(reduced)


@dataclass
class InheritedTemplateMapping:
    """What an INHERIT dummy carries across the call (§8.2 problem 2)."""

    dummy_domain: IndexDomain
    ultimate_base: str
    base_domain: IndexDomain
    alignment: ChainedAlignment
    base_distribution: FormatDistribution

    def distribution(self) -> Distribution:
        """The dummy's actual (inherited) distribution."""
        return ConstructedDistribution(self.alignment,
                                       self.base_distribution)

    def check_star_distribution(
            self, formats: Sequence, target=None) -> None:
        """Semantics of ``DISTRIBUTE X * (d)`` under INHERIT: the asserted
        distribution describes the *ultimate base* (template), not the
        dummy.  Raises :class:`ConformanceError` on mismatch."""
        declared = tuple(str(f) for f in formats)
        actual = tuple(str(f) for f in self.base_distribution.formats)
        if declared != actual:
            raise ConformanceError(
                f"INHERIT: DISTRIBUTE * asserts {declared} but the "
                f"ultimate base {self.ultimate_base!r} is distributed "
                f"{actual}")

    def owners(self, index: Sequence[int]) -> frozenset[int]:
        return self.distribution().owners(index)

    def owner_map(self) -> np.ndarray:
        return self.distribution().primary_owner_map()


def inherit_mapping(tds: TemplateDataSpace, actual: str,
                    section: ArraySection | None = None
                    ) -> InheritedTemplateMapping:
    """Build the INHERIT mapping for a (sectioned) actual argument.

    Raises :class:`TemplateError` if the ultimate base has no
    distribution — the case where the template itself would have had to
    cross the boundary.
    """
    arr = tds.arrays.get(actual)
    if arr is None:
        raise TemplateError(f"unknown actual array {actual!r}")
    if section is not None and section.parent != arr.domain:
        raise TemplateError(
            f"section {section} is not over {actual}'s domain")
    base_name, chain = tds.ultimate_base(actual)
    base_dist = tds._dist.get(base_name)
    if base_dist is None:
        raise TemplateError(
            f"INHERIT for {actual!r}: ultimate base {base_name!r} has no "
            "distribution; the template would have to be passed across "
            "the procedure boundary, which HPF cannot do (§8.2 problem 2)")
    links: list[AlignmentFunction] = []
    if section is not None:
        links.append(section_alignment(section))
        dummy_domain = section.domain()
    else:
        links.append(identity_alignment(arr.domain))
        dummy_domain = arr.domain
    if chain is not None:
        links.extend(chain.links)
    return InheritedTemplateMapping(
        dummy_domain=dummy_domain,
        ultimate_base=base_name,
        base_domain=tds._domain_of(base_name),
        alignment=ChainedAlignment(links),
        base_distribution=base_dist,
    )
