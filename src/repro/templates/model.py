"""The draft-HPF template data space: alignment chains + templates (§8).

This is the baseline model the paper argues against.  Its differences from
:class:`repro.core.dataspace.DataSpace` are exactly the ones §1 lists:

* templates exist, and only here;
* alignment *chains* are allowed — an alignment base may itself be aligned
  (HPF's "ultimate alignment"), so alignment trees have unbounded height;
  ownership resolution composes the chain (cost measured by E11);
* the §8.2 restrictions hold: a template's shape is fixed at unit entry
  (aligning a run-time-shaped allocatable to one is an error) and
  templates cannot cross procedure boundaries.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.align.function import AlignmentFunction, ClampMode
from repro.align.reduce import reduce_alignment
from repro.align.spec import AlignSpec
from repro.core.array import HpfArray
from repro.distributions.base import DistributionFormat
from repro.distributions.construct import ConstructedDistribution
from repro.distributions.distribution import Distribution, FormatDistribution
from repro.errors import MappingError, TemplateError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement
from repro.processors.section import ProcessorSection
from repro.templates.template import Template

__all__ = ["TemplateDataSpace", "ChainedAlignment"]

Mappee = Union[Template, HpfArray]


class ChainedAlignment:
    """Composition of alignment functions along a chain A -> ... -> base.

    Implements the :class:`repro.distributions.construct.IndexMapping`
    protocol so CONSTRUCT works transparently; images compose as
    ``f2 o f1 (i) = union over j in f1(i) of f2(j)``.
    """

    def __init__(self, links: Sequence[AlignmentFunction]) -> None:
        if not links:
            raise MappingError("empty alignment chain")
        for f, g in zip(links, links[1:]):
            if f.base_domain != g.alignee_domain:
                raise MappingError(
                    f"alignment chain mismatch: {f.base_domain} vs "
                    f"{g.alignee_domain}")
        self.links = tuple(links)
        self.alignee_domain = links[0].alignee_domain
        self.base_domain = links[-1].base_domain

    @property
    def depth(self) -> int:
        return len(self.links)

    def image(self, index: Sequence[int]) -> frozenset[tuple[int, ...]]:
        current: set[tuple[int, ...]] = {tuple(int(v) for v in index)}
        for link in self.links:
            nxt: set[tuple[int, ...]] = set()
            for j in current:
                nxt |= link.image(j)
            current = nxt
        return frozenset(current)

    def map_indices(self, indices: np.ndarray) -> np.ndarray:
        out = np.asarray(indices, dtype=np.int64)
        for link in self.links:
            out = link.map_indices(out)
        return out

    def image_arrays(self) -> np.ndarray:
        first = self.links[0].image_arrays()
        out = first
        for link in self.links[1:]:
            out = link.map_indices(out)
        return out

    def __repr__(self) -> str:
        return f"<ChainedAlignment depth={self.depth}>"


class TemplateDataSpace:
    """A scope under the draft-HPF template model."""

    def __init__(self, n_processors: int = 4, *,
                 ap: AbstractProcessors | None = None,
                 clamp: ClampMode = ClampMode.CLAMP) -> None:
        self.ap = ap if ap is not None else AbstractProcessors(n_processors)
        self.clamp = clamp
        self.env: dict[str, int] = {}
        self.templates: dict[str, Template] = {}
        self.arrays: dict[str, HpfArray] = {}
        #: child name -> (base name, alignment function)
        self._aligned_to: dict[str, tuple[str, AlignmentFunction]] = {}
        self._dist: dict[str, FormatDistribution] = {}
        #: arrays whose shape only became known at run time (ALLOCATE)
        self._runtime_shaped: set[str] = set()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def constant(self, name: str, value: int) -> None:
        self.env[name] = int(value)

    def processors(self, name: str, *bounds,
                   origin: int = 0) -> ProcessorArrangement:
        dims = []
        for b in bounds:
            if isinstance(b, tuple):
                dims.append(Triplet(b[0], b[1], 1))
            else:
                dims.append(Triplet.of_extent(int(b)))
        arr = ProcessorArrangement(name, IndexDomain(dims))
        self.ap.declare(arr, origin=origin)
        return arr

    def template(self, name: str, *bounds) -> Template:
        """TEMPLATE directive (specification part only)."""
        if name in self.templates or name in self.arrays:
            raise TemplateError(f"name {name!r} already declared")
        dims = []
        for b in bounds:
            if isinstance(b, tuple):
                dims.append(Triplet(b[0], b[1], 1))
            else:
                dims.append(Triplet.of_extent(int(b)))
        t = Template(name, IndexDomain(dims))
        self.templates[name] = t
        return t

    def declare(self, name: str, *bounds, dtype=np.float64,
                runtime_shape: bool = False) -> HpfArray:
        """Declare (and create) a data array.

        ``runtime_shape=True`` marks an allocatable instance whose extents
        were only known at ALLOCATE time — the case templates cannot
        serve (§8.2 problem 1).
        """
        if name in self.templates or name in self.arrays:
            raise TemplateError(f"name {name!r} already declared")
        dims = []
        for b in bounds:
            if isinstance(b, tuple):
                dims.append(Triplet(b[0], b[1], 1))
            else:
                dims.append(Triplet.of_extent(int(b)))
        arr = HpfArray(name, IndexDomain(dims), dtype=dtype)
        self.arrays[name] = arr
        if runtime_shape:
            self._runtime_shaped.add(name)
        return arr

    def _mappee(self, name: str) -> Mappee:
        if name in self.templates:
            return self.templates[name]
        if name in self.arrays:
            return self.arrays[name]
        raise MappingError(f"unknown array or template {name!r}")

    def _domain_of(self, name: str) -> IndexDomain:
        return self._mappee(name).domain

    # ------------------------------------------------------------------
    # ALIGN (chains allowed; templates allowed as bases)
    # ------------------------------------------------------------------
    def align(self, spec: AlignSpec) -> None:
        alignee = self._mappee(spec.alignee)
        base = self._mappee(spec.base)
        if isinstance(alignee, Template):
            raise TemplateError(
                f"ALIGN {spec.alignee}: a template cannot be an alignee")
        if spec.alignee in self._aligned_to:
            raise MappingError(
                f"{spec.alignee!r} is already aligned")
        if spec.alignee in self._dist:
            raise MappingError(
                f"{spec.alignee!r} already has an explicit distribution")
        if isinstance(base, Template) and \
                spec.alignee in self._runtime_shaped:
            raise TemplateError(
                f"ALIGN {spec.alignee} WITH template {spec.base}: the "
                "alignee's shape is a run-time value, but the shape of a "
                "template is fixed at entry to the program unit — HPF "
                "cannot establish a direct relationship between them "
                "(§8.2 problem 1)")
        fn = AlignmentFunction(
            reduce_alignment(spec, alignee.domain, base.domain, self.env),
            clamp=self.clamp)
        # cycle check along the prospective chain
        cursor = spec.base
        while cursor in self._aligned_to:
            if cursor == spec.alignee:
                raise MappingError(
                    f"ALIGN {spec.alignee} WITH {spec.base} creates an "
                    "alignment cycle")
            cursor = self._aligned_to[cursor][0]
        if cursor == spec.alignee:
            raise MappingError(
                f"ALIGN {spec.alignee} WITH {spec.base} creates an "
                "alignment cycle")
        self._aligned_to[spec.alignee] = (spec.base, fn)

    # ------------------------------------------------------------------
    # DISTRIBUTE (arrays or templates)
    # ------------------------------------------------------------------
    def distribute(self, name: str,
                   formats: Sequence[DistributionFormat],
                   to=None) -> None:
        obj = self._mappee(name)
        if name in self._aligned_to:
            raise MappingError(
                f"{name!r} is aligned; it cannot also be distributed")
        if isinstance(to, ProcessorSection):
            target = to
        elif isinstance(to, ProcessorArrangement):
            target = ProcessorSection(to)
        elif isinstance(to, str):
            target = ProcessorSection(self.ap.arrangement(to))
        elif to is None:
            n = sum(f.consumes_target_dim for f in formats)
            shape = _near_square(self.ap.size, max(n, 1))
            aname = f"_TAP{max(n, 1)}"
            try:
                arr = self.ap.arrangement(aname)
            except MappingError:
                arr = self.ap.declare(ProcessorArrangement(
                    aname, IndexDomain.standard(*shape)))
            target = ProcessorSection(arr)
        else:
            raise MappingError(f"bad distribution target {to!r}")
        self._dist[name] = FormatDistribution(
            obj.domain, tuple(formats), target, self.ap)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def ultimate_base(self, name: str) -> tuple[str, ChainedAlignment | None]:
        """Resolve the alignment chain of ``name``; returns the ultimate
        base name and the composed alignment (None if not aligned)."""
        links: list[AlignmentFunction] = []
        cursor = name
        guard = 0
        while cursor in self._aligned_to:
            base, fn = self._aligned_to[cursor]
            links.append(fn)
            cursor = base
            guard += 1
            if guard > len(self._aligned_to) + 1:
                raise MappingError("alignment cycle detected at resolution")
        return cursor, (ChainedAlignment(links) if links else None)

    def resolution_depth(self, name: str) -> int:
        """Chain length from ``name`` to its ultimate base (E11)."""
        _, chain = self.ultimate_base(name)
        return chain.depth if chain else 0

    def distribution_of(self, name: str) -> Distribution:
        base, chain = self.ultimate_base(name)
        base_dist = self._dist.get(base)
        if base_dist is None:
            raise MappingError(
                f"{name!r}: ultimate alignment base {base!r} has no "
                "distribution (templates must be distributed explicitly)")
        if chain is None:
            return base_dist
        return ConstructedDistribution(chain, base_dist)

    def owners(self, name: str, index: Sequence[int]) -> frozenset[int]:
        return self.distribution_of(name).owners(index)

    def owner_map(self, name: str) -> np.ndarray:
        return self.distribution_of(name).primary_owner_map()

    # ------------------------------------------------------------------
    # Procedure boundary (§8.2 problem 2)
    # ------------------------------------------------------------------
    def pass_template(self, name: str) -> None:
        """Attempt to pass a template as a procedure argument — always an
        error; the INHERIT workaround lives in
        :mod:`repro.templates.inherit`."""
        t = self.templates.get(name)
        if t is None:
            raise MappingError(f"{name!r} is not a template")
        t.pass_to_procedure()

    def describe(self) -> str:
        lines = [f"TemplateDataSpace over AP({self.ap.size})"]
        for name, t in self.templates.items():
            dist = self._dist.get(name)
            suffix = f" {dist.describe()}" if dist else " (undistributed)"
            lines.append(f"  {t!r}{suffix}")
        for name in self.arrays:
            base, chain = self.ultimate_base(name)
            if chain:
                lines.append(
                    f"  {name}: aligned, depth {chain.depth}, ultimate "
                    f"base {base}")
            elif name in self._dist:
                lines.append(f"  {name}: {self._dist[name].describe()}")
            else:
                lines.append(f"  {name}: unmapped")
        return "\n".join(lines)


def _near_square(n: int, ndims: int) -> tuple[int, ...]:
    dims = [1] * ndims
    remaining = n
    for k in range(ndims):
        slots = ndims - k
        root = round(remaining ** (1.0 / slots))
        best = 1
        for f in range(max(root, 1), 0, -1):
            if remaining % f == 0:
                best = f
                break
        dims[k] = best
        remaining //= best
    dims[0] *= remaining
    dims.sort(reverse=True)
    return tuple(dims)
