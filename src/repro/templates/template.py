"""TEMPLATE objects — tagged abstract index spaces (§8).

"Although the language definition states that 'templates are just abstract
index spaces', it postulates in other places that distinct definitions of
templates in the same or different scopes are to be considered as
different, independent of their associated index domain.  As a
consequence, each template created in a program execution must be
interpreted as a tagged index domain."

Hence :class:`Template` equality is *identity*: two templates with the same
name and domain are still different templates.  Templates occupy no
storage, may only appear in directives, are not first-class (cannot be
ALLOCATABLE, cannot be passed to procedures), and their shape is fixed at
unit entry — the restrictions §8.2 builds its argument on, enforced here.
"""

from __future__ import annotations

import itertools

from repro.errors import TemplateError
from repro.fortran.domain import IndexDomain

__all__ = ["Template"]

_tag_counter = itertools.count(1)


class Template:
    """A tagged abstract index space.

    Parameters
    ----------
    name:
        Directive-level name of the template.
    domain:
        The index domain; must be a specification-time (static) shape.
    """

    __slots__ = ("name", "domain", "tag")

    def __init__(self, name: str, domain: IndexDomain) -> None:
        if domain.rank == 0 or domain.is_empty:
            raise TemplateError(
                f"TEMPLATE {name} must have a non-empty index domain")
        if not domain.is_standard:
            raise TemplateError(
                f"TEMPLATE {name} must have a standard (stride-1) index "
                f"domain, got {domain}")
        self.name = name
        self.domain = domain
        #: distinguishes same-shaped templates (tagged index domains)
        self.tag = next(_tag_counter)

    # Identity semantics: no __eq__/__hash__ overrides (object identity).

    @property
    def rank(self) -> int:
        return self.domain.rank

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    # The §8.2 impossibilities, as loud failures -----------------------
    def allocate(self, *_args, **_kwargs) -> None:
        raise TemplateError(
            f"TEMPLATE {self.name} cannot be ALLOCATABLE: the shape of a "
            "template is determined at entry to a program unit and cannot "
            "be changed afterwards (§8.2 problem 1)")

    def pass_to_procedure(self) -> None:
        raise TemplateError(
            f"TEMPLATE {self.name} cannot be passed across a procedure "
            "boundary: templates are not first-class objects and cannot "
            "be used as arguments (§8.2 problem 2)")

    def __repr__(self) -> str:
        return f"<TEMPLATE {self.name}{self.domain} tag={self.tag}>"
