"""The draft-HPF template baseline (substrate S6, §8).

The paper argues *against* the TEMPLATE directive; reproducing that
argument requires the thing being argued against.  This subpackage
implements the draft-HPF model the paper describes:

* :class:`~repro.templates.template.Template` — "an array whose elements
  have no content and therefore occupy no storage ... merely an abstract
  index space that can be distributed and with which arrays may be
  aligned".  Distinct definitions are distinct even with equal index
  domains (templates are *tagged* index domains).
* :class:`~repro.templates.model.TemplateDataSpace` — a scope in which
  arrays align to templates or to other arrays (alignment *chains* of
  unbounded depth, resolved via ultimate alignment — unlike the paper's
  height-1 forest), and templates/arrays are distributed.
* The two §8.2 impossibilities, enforced as :class:`~repro.errors.TemplateError`:
  templates have fixed shape from unit entry (no allocatable templates,
  no alignment of run-time-shaped allocatables), and templates cannot be
  passed across procedure boundaries (the INHERIT workaround in
  :mod:`~repro.templates.inherit`).
* :mod:`~repro.templates.equivalence` — machinery for experiment E12:
  deriving a template-free specification with identical element-to-
  processor mapping, via the "natural template" witness-array strategy or
  the GENERAL_BLOCK strategy of §8.1.1.
"""

from repro.templates.template import Template
from repro.templates.model import TemplateDataSpace, ChainedAlignment
from repro.templates.inherit import (
    InheritedTemplateMapping,
    inherit_mapping,
    section_alignment,
)
from repro.templates.equivalence import (
    derive_witness_model,
    derive_general_block_formats,
    mappings_equivalent,
    verify_equivalence,
)

__all__ = [
    "Template",
    "TemplateDataSpace",
    "ChainedAlignment",
    "InheritedTemplateMapping",
    "inherit_mapping",
    "section_alignment",
    "derive_witness_model",
    "derive_general_block_formats",
    "mappings_equivalent",
    "verify_equivalence",
]
