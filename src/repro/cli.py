"""Command-line entry point: ``python -m repro``.

Runs the paper experiments and prints their tables::

    python -m repro --list
    python -m repro --experiment E8
    python -m repro --all

and the core-ops micro benchmark (the CI perf artifact)::

    python -m repro bench --quick
    python -m repro bench --size 1000000 -o BENCH_core.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]

#: sizes used by ``bench --quick`` (CI smoke) and plain ``bench``
QUICK_SIZES = (50_000,)
FULL_SIZES = (1_000_000,)


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        format_table,
        run_quick_bench,
        write_bench_json,
    )

    sizes = tuple(args.size) if args.size else \
        (QUICK_SIZES if args.quick else FULL_SIZES)
    rows = run_quick_bench(sizes=sizes, n_processors=args.processors,
                           repeats=args.repeats)
    print(format_table(rows))
    # honour -o wherever it was given (before or after the subcommand)
    out = args.bench_output or args.output or "BENCH_core.json"
    write_bench_json(rows, out)
    print(f"wrote {out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Experiments reproducing 'High Performance Fortran "
                     "Without Templates' (Chapman, Mehrotra, Zima; "
                     "PPoPP 1993)"))
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and titles")
    parser.add_argument("--experiment", "-e", metavar="ID",
                        help="run one experiment (e.g. E8)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--output", "-o", metavar="FILE",
                        help="also write the rendered results to FILE")
    sub = parser.add_subparsers(dest="command")
    bench = sub.add_parser(
        "bench", help="time the core engine operations (including the "
                      "pattern-lowered collective cost probes) and "
                      "write BENCH_core.json")
    bench.add_argument("--quick", action="store_true",
                       help=f"small sizes {list(QUICK_SIZES)} for CI "
                            "smoke runs")
    bench.add_argument("--size", type=int, action="append", metavar="N",
                       help="explicit array size (repeatable)")
    bench.add_argument("--processors", "-p", type=int, default=16,
                       help="simulated machine width (default 16)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats per probe (default 3)")
    bench.add_argument("--output", "-o", dest="bench_output",
                       metavar="FILE", default=None,
                       help="JSON output path (default BENCH_core.json)")
    args = parser.parse_args(argv)

    if args.command == "bench":
        return _run_bench(args)

    if args.list:
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:4s} {title}")
        return 0

    ids: list[str]
    if args.all:
        ids = list(EXPERIMENTS)
    elif args.experiment:
        ids = [args.experiment]
    else:
        parser.print_help()
        return 2

    failures = 0
    rendered: list[str] = []
    for exp_id in ids:
        result = run_experiment(exp_id)
        text = result.render()
        print(text)
        print()
        rendered.append(text)
        if not result.all_checks_pass:
            failures += 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(rendered) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
