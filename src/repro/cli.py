"""Command-line entry point: ``python -m repro``.

Runs the paper experiments and prints their tables::

    python -m repro --list
    python -m repro --experiment E8
    python -m repro --all

executes a directive program (including ``DO``/``END DO`` loops, which
lower into the optimizer's IR) under a chosen backend and opt level::

    python -m repro run program.f --backend spmd -p 4 -D N=64
    python -m repro run examples/jacobi_do.hpf --opt 2 -p 4 -D N=48

statically verifies programs without running them (stable ``RPR``
diagnostic codes; exit 1 on any error-severity finding)::

    python -m repro lint examples/jacobi_do.hpf -D N=48
    python -m repro lint examples/*.py --opt 2 --format json

and the core-ops micro benchmark (the CI perf artifact), plus the
regression gate CI applies to it::

    python -m repro bench --quick
    python -m repro bench --size 1000000 -o BENCH_core.json
    python -m repro bench-diff BENCH_baseline.json BENCH_core.json

and the long-running session service plus its submission client::

    python -m repro serve --socket /tmp/repro.sock
    python -m repro submit jacobi.hpf --socket /tmp/repro.sock \
        --backend spmd --pool-mode thread --opt 2
    python -m repro submit --socket /tmp/repro.sock --stats
    python -m repro submit --socket /tmp/repro.sock --shutdown
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]

#: sizes used by ``bench --quick`` (CI smoke) and plain ``bench``
QUICK_SIZES = (50_000,)
FULL_SIZES = (1_000_000,)


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        format_table,
        run_quick_bench,
        write_bench_json,
    )

    sizes = tuple(args.size) if args.size else \
        (QUICK_SIZES if args.quick else FULL_SIZES)
    backends = ("simulate", "spmd") if args.backend == "both" \
        else (args.backend,)
    try:
        opt_levels = tuple(sorted({int(x) for x in
                                   args.opt.split(",") if x != ""}))
    except ValueError:
        raise SystemExit(
            f"bad --opt {args.opt!r}; use a comma list like 0,2") from None
    if not set(opt_levels) <= {0, 1, 2}:
        raise SystemExit(
            f"bad --opt {args.opt!r}; levels must be from 0,1,2")
    rows = run_quick_bench(sizes=sizes, n_processors=args.processors,
                           repeats=args.repeats, backends=backends,
                           opt_levels=opt_levels)
    print(format_table(rows))
    # honour -o wherever it was given (before or after the subcommand)
    out = args.bench_output or args.output or "BENCH_core.json"
    write_bench_json(rows, out)
    print(f"wrote {out}", file=sys.stderr)
    return 0


def _run_bench_diff(args: argparse.Namespace) -> int:
    from repro.bench.diff import (
        diff_autotune_makespans,
        diff_cache_hit_rates,
        diff_opt_reductions,
        diff_speedups,
        load_rows,
        render_diff,
    )

    baseline = load_rows(args.baseline)
    candidate = load_rows(args.candidate)
    problems = diff_cache_hit_rates(baseline, candidate,
                                    tolerance=args.tolerance)
    problems += diff_opt_reductions(baseline, candidate,
                                    tolerance=args.tolerance)
    problems += diff_speedups(baseline, candidate,
                              target=args.speedup_target)
    problems += diff_autotune_makespans(baseline, candidate)
    print(render_diff(baseline, candidate, problems))
    return 1 if problems else 0


def _run_program_file(args: argparse.Namespace) -> int:
    from repro.directives.analyzer import run_program

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            source = fh.read()
    inputs = {}
    for item in args.define or ():
        name, sep, value = item.partition("=")
        try:
            if not sep:
                raise ValueError
            inputs[name] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad -D {item!r}; use NAME=VALUE with an integer value"
            ) from None
    from repro.machine.backend import Backend

    if args.backend == "spmd":
        backend = Backend.spmd(workers=args.workers, mode=args.pool_mode,
                               fused=not args.unfused,
                               replay=not args.no_replay)
    else:
        backend = Backend.simulate()
    opt = args.opt if args.opt == "auto" else int(args.opt)
    result = run_program(source, n_processors=args.processors,
                         inputs=inputs, machine=True,
                         backend=backend, opt_level=opt)
    opt_label = "auto" if args.opt == "auto" else f"-O{args.opt}"
    print(f"backend={args.backend} processors={args.processors} "
          f"opt={opt_label}")
    for report in result.reports:
        print(report.summary())
    adaptations = getattr(result, "adaptations", ()) or ()
    for adaptation in adaptations:
        print(adaptation.describe())
    if result.machine is not None:
        stats = result.machine.stats
        print(stats.summary())
        # NB: args.opt is a string; "0" must not truthy-print savings
        if args.opt != "0" and (stats.total_words_saved
                                or stats.total_msgs_saved):
            per_pass = ", ".join(
                f"{k}: {w} words / {stats.opt_msgs_saved.get(k, 0)} msgs"
                for k, w in sorted(stats.opt_words_saved.items()))
            print(f"optimizer savings: {per_pass}")
        print(f"modeled elapsed: {result.machine.elapsed:.1f}")
    return 0


def _parse_defines(items) -> dict:
    defines = {}
    for item in items or ():
        name, sep, value = item.partition("=")
        try:
            if not sep:
                raise ValueError
            defines[name] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad -D {item!r}; use NAME=VALUE with an integer value"
            ) from None
    return defines


def _lint_directive_file(path: str, args: argparse.Namespace):
    from repro.directives.analyzer import lint_program

    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    diagnostics, _ = lint_program(
        source, n_processors=args.processors,
        inputs=_parse_defines(args.define), opt_level=args.opt)
    return diagnostics


def _lint_python_file(path: str, args: argparse.Namespace):
    """Drive a Python example under ``REPRO_LINT=1``: every
    ``Session.run()`` lints its graph before executing and logs the
    findings; an error-severity finding aborts the script."""
    import os
    import runpy

    from repro.engine.diagnostics import LINT_LOG, DiagnosticError

    del LINT_LOG[:]
    saved_argv = sys.argv
    saved_env = {k: os.environ.get(k)
                 for k in ("REPRO_LINT", "REPRO_LINT_OPT")}
    os.environ["REPRO_LINT"] = "1"
    os.environ["REPRO_LINT_OPT"] = str(args.opt)
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    except DiagnosticError as exc:
        extra = [d for d in exc.diagnostics if d not in LINT_LOG]
        LINT_LOG.extend(extra)
    except SystemExit:
        pass
    finally:
        sys.argv = saved_argv
        for k, v in saved_env.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    diagnostics = list(LINT_LOG)
    del LINT_LOG[:]
    return diagnostics


def _run_lint(args: argparse.Namespace) -> int:
    import contextlib
    import io

    from repro.engine.diagnostics import (
        has_errors, render_json, render_text,
    )

    failed = False
    for path in args.files:
        if path.endswith(".py"):
            # example scripts print their own output; swallow it so the
            # lint report stays machine-readable
            with contextlib.redirect_stdout(io.StringIO()):
                diagnostics = _lint_python_file(path, args)
        else:
            diagnostics = _lint_directive_file(path, args)
        if args.format == "json":
            print(render_json(diagnostics, file=path))
        else:
            print(f"== {path} (-O{args.opt})")
            print(render_text(diagnostics, prefix="  "))
        failed = failed or has_errors(diagnostics)
    return 1 if failed else 0


def _tune_directive_file(path: str, args: argparse.Namespace):
    """Report-only autotune of a directive program: lower it without
    executing (the lint collect path), then run the advisor."""
    from repro.autotune import tune_graph
    from repro.directives.analyzer import lint_program

    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    _, result = lint_program(
        source, n_processors=args.processors,
        inputs=_parse_defines(args.define), perf=False)
    if result is None or result.graph is None:
        return []
    return [tune_graph(result.ds, result.graph)]


def _tune_python_file(path: str, args: argparse.Namespace):
    """Drive a Python example under ``REPRO_TUNE=1``: every
    ``Session.run()`` consults the advisor and logs its report instead
    of executing (the script's own output is swallowed)."""
    import contextlib
    import io
    import os
    import runpy

    from repro.autotune import TUNE_LOG

    del TUNE_LOG[:]
    saved_argv = sys.argv
    saved_env = os.environ.get("REPRO_TUNE")
    os.environ["REPRO_TUNE"] = "1"
    sys.argv = [path]
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            runpy.run_path(path, run_name="__main__")
    except SystemExit:
        pass
    finally:
        sys.argv = saved_argv
        if saved_env is None:
            os.environ.pop("REPRO_TUNE", None)
        else:
            os.environ["REPRO_TUNE"] = saved_env
    reports = list(TUNE_LOG)
    del TUNE_LOG[:]
    return reports


def _run_tune(args: argparse.Namespace) -> int:
    for path in args.files:
        if path.endswith(".py"):
            reports = _tune_python_file(path, args)
        else:
            reports = _tune_directive_file(path, args)
        print(f"== {path}")
        if not reports:
            print("  (no recorded program reached the advisor)")
        for report in reports:
            for line in report.render().splitlines():
                print(f"  {line}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.serve import SessionService, serve_forever

    service = SessionService(default_timeout=args.timeout)
    print(f"repro serve: listening on {args.socket}", file=sys.stderr)
    try:
        serve_forever(args.socket, authkey=args.authkey.encode(),
                      service=service)
    finally:
        service.close()
    print("repro serve: shut down", file=sys.stderr)
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient

    client = ServiceClient(args.socket, authkey=args.authkey.encode())
    if args.shutdown:
        client.shutdown()
        print("service shut down")
        return 0
    if args.stats:
        stats = client.stats()
        store = stats.get("plan_store", {})
        print(f"sessions={stats.get('sessions')} "
              f"timeouts={stats.get('timeouts')} "
              f"restarts={stats.get('restarts')}")
        print(f"plan store: entries={store.get('entries')} "
              f"hits={store.get('hits')} misses={store.get('misses')} "
              f"hit_rate={store.get('hit_rate', 0.0):.3f}")
        return 0
    if not args.file:
        raise SystemExit("submit: need a program file "
                         "(or --stats / --shutdown)")
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            source = fh.read()
    defines = {}
    for item in args.define or ():
        name, sep, value = item.partition("=")
        try:
            if not sep:
                raise ValueError
            defines[name] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad -D {item!r}; use NAME=VALUE with an integer value"
            ) from None
    reply = client.run_source(
        source, processors=args.processors, backend=args.backend,
        workers=args.workers, mode=args.pool_mode,
        fused=not args.unfused, opt=args.opt, defines=defines,
        timeout=args.timeout)
    print(f"backend={args.backend} processors={args.processors} "
          f"opt=-O{args.opt}")
    for line in reply["reports"]:
        print(line)
    if "total_words" in reply:
        print(f"total words: {reply['total_words']}  "
              f"modeled elapsed: {reply['elapsed']:.1f}")
    store = reply["plan_store"]
    print(f"plan store: +{reply['request_hits']} hits / "
          f"+{reply['request_misses']} misses this request "
          f"(cumulative hit_rate={store['hit_rate']:.3f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Experiments reproducing 'High Performance Fortran "
                     "Without Templates' (Chapman, Mehrotra, Zima; "
                     "PPoPP 1993)"))
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and titles")
    parser.add_argument("--experiment", "-e", metavar="ID",
                        help="run one experiment (e.g. E8)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--output", "-o", metavar="FILE",
                        help="also write the rendered results to FILE")
    sub = parser.add_subparsers(dest="command")
    bench = sub.add_parser(
        "bench", help="time the core engine operations (including the "
                      "pattern-lowered collective cost probes) and "
                      "write BENCH_core.json")
    bench.add_argument("--quick", action="store_true",
                       help=f"small sizes {list(QUICK_SIZES)} for CI "
                            "smoke runs")
    bench.add_argument("--size", type=int, action="append", metavar="N",
                       help="explicit array size (repeatable)")
    bench.add_argument("--processors", "-p", type=int, default=16,
                       help="simulated machine width (default 16)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats per probe (default 3)")
    bench.add_argument("--output", "-o", dest="bench_output",
                       metavar="FILE", default=None,
                       help="JSON output path (default BENCH_core.json)")
    bench.add_argument("--backend", choices=["simulate", "spmd", "both"],
                       default="both",
                       help="which execution backends the Jacobi "
                            "wall-clock rows cover (default both)")
    bench.add_argument("--opt", metavar="LEVELS", default="0,2",
                       help="comma list of opt levels for the optimizer "
                            "pipeline rows (default 0,2; '' disables)")
    diff = sub.add_parser(
        "bench-diff", help="compare two BENCH_core.json snapshots and "
                           "fail on schedule-cache hit-rate, optimizer-"
                           "reduction, SPMD-speedup or autotune-"
                           "makespan regressions")
    diff.add_argument("baseline", help="baseline BENCH json (committed)")
    diff.add_argument("candidate", help="candidate BENCH json (fresh run)")
    diff.add_argument("--tolerance", type=float, default=0.02,
                      help="allowed absolute hit-rate drop (default 0.02)")
    diff.add_argument("--speedup-target", type=float, default=2.0,
                      help="required fused-SPMD speedup over simulate on "
                           "multicore runners (default 2.0)")
    runp = sub.add_parser(
        "run", help="execute a directive program file under a chosen "
                    "execution backend")
    runp.add_argument("file", help="program file, or '-' for stdin")
    runp.add_argument("--backend", choices=["simulate", "spmd"],
                      default="simulate",
                      help="execution backend (default simulate)")
    runp.add_argument("--workers", type=int, default=None, metavar="W",
                      help="SPMD worker count (default: one per "
                           "processor)")
    runp.add_argument("--pool-mode", choices=["auto", "fork", "process",
                                              "thread"],
                      default="auto",
                      help="SPMD worker substrate (default auto)")
    runp.add_argument("--unfused", action="store_true",
                      help="SPMD: use the per-statement two-barrier "
                           "baseline instead of fused per-peer plans")
    runp.add_argument("--no-replay", action="store_true",
                      help="SPMD: dispatch every loop trip from the "
                           "coordinator instead of compiling trip-"
                           "invariant loops into worker-resident replay "
                           "programs")
    runp.add_argument("--opt", type=str,
                      choices=["0", "1", "2", "auto"], default="0",
                      help="communication optimizer level (default 0; "
                           "1 = halo validity + CSE, 2 = + coalescing, "
                           "auto = cost-driven pass selection + "
                           "feedback-driven redistribution)")
    runp.add_argument("--processors", "-p", type=int, default=4,
                      help="machine width (default 4)")
    runp.add_argument("--define", "-D", action="append", metavar="N=V",
                      help="integer program input (repeatable)")
    lint = sub.add_parser(
        "lint", help="statically verify programs without executing them: "
                     "bounds, storage lifecycle, dead remaps, window "
                     "races, and modeled-cost perf lints")
    lint.add_argument("files", nargs="+", metavar="FILE",
                      help="directive program files (or '-' for stdin); "
                           ".py files run under lint-before-run mode")
    lint.add_argument("--opt", type=int, choices=[0, 1, 2], default=0,
                      help="analyze assuming this optimizer level "
                           "(default 0; -O2 suppresses hoistable-remap "
                           "perf lints)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text", help="report format (default text)")
    lint.add_argument("--processors", "-p", type=int, default=4,
                      help="declared machine width (default 4)")
    lint.add_argument("--define", "-D", action="append", metavar="N=V",
                      help="integer program input (repeatable)")
    tune = sub.add_parser(
        "tune", help="report-only autotuning: print the layout "
                     "proposals and pass selection an opt='auto' run "
                     "would act on, without executing anything")
    tune.add_argument("files", nargs="+", metavar="FILE",
                      help="directive program files (or '-' for stdin); "
                           ".py files run under tune-instead-of-run "
                           "mode")
    tune.add_argument("--processors", "-p", type=int, default=4,
                      help="declared machine width (default 4)")
    tune.add_argument("--define", "-D", action="append", metavar="N=V",
                      help="integer program input (repeatable)")
    serve = sub.add_parser(
        "serve", help="start the long-running session service on a unix "
                      "socket; submitted programs share one "
                      "content-addressed plan store")
    serve.add_argument("--socket", default=".repro-serve.sock",
                       metavar="PATH",
                       help="unix socket path (default .repro-serve.sock)")
    serve.add_argument("--authkey", default="repro-serve",
                       help="connection auth key")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECS",
                       help="default per-request timeout (default: none)")
    submit = sub.add_parser(
        "submit", help="submit a directive program to a running "
                       "`repro serve` service (or query/stop it)")
    submit.add_argument("file", nargs="?",
                        help="program file, or '-' for stdin")
    submit.add_argument("--socket", default=".repro-serve.sock",
                        metavar="PATH", help="service socket path")
    submit.add_argument("--authkey", default="repro-serve",
                        help="connection auth key")
    submit.add_argument("--backend", choices=["simulate", "spmd"],
                        default="simulate",
                        help="execution backend (default simulate)")
    submit.add_argument("--workers", type=int, default=None, metavar="W",
                        help="SPMD worker count")
    submit.add_argument("--pool-mode", choices=["auto", "fork", "process",
                                                "thread"],
                        default="auto", help="SPMD worker substrate")
    submit.add_argument("--unfused", action="store_true",
                        help="SPMD: per-statement two-barrier baseline")
    submit.add_argument("--opt", type=int, choices=[0, 1, 2], default=0,
                        help="communication optimizer level (default 0)")
    submit.add_argument("--processors", "-p", type=int, default=4,
                        help="machine width (default 4)")
    submit.add_argument("--define", "-D", action="append", metavar="N=V",
                        help="integer program input (repeatable)")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECS", help="per-request timeout")
    submit.add_argument("--stats", action="store_true",
                        help="print service and plan-store counters")
    submit.add_argument("--shutdown", action="store_true",
                        help="stop the service")
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "bench-diff":
        return _run_bench_diff(args)
    if args.command == "run":
        return _run_program_file(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "tune":
        return _run_tune(args)

    if args.list:
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:4s} {title}")
        return 0

    ids: list[str]
    if args.all:
        ids = list(EXPERIMENTS)
    elif args.experiment:
        ids = [args.experiment]
    else:
        parser.print_help()
        return 2

    failures = 0
    rendered: list[str] = []
    for exp_id in ids:
        result = run_experiment(exp_id)
        text = result.render()
        print(text)
        print()
        rendered.append(text)
        if not result.all_checks_pass:
            failures += 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(rendered) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
