"""Command-line entry point: ``python -m repro``.

Runs the paper experiments and prints their tables::

    python -m repro --list
    python -m repro --experiment E8
    python -m repro --all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Experiments reproducing 'High Performance Fortran "
                     "Without Templates' (Chapman, Mehrotra, Zima; "
                     "PPoPP 1993)"))
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and titles")
    parser.add_argument("--experiment", "-e", metavar="ID",
                        help="run one experiment (e.g. E8)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--output", "-o", metavar="FILE",
                        help="also write the rendered results to FILE")
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:4s} {title}")
        return 0

    ids: list[str]
    if args.all:
        ids = list(EXPERIMENTS)
    elif args.experiment:
        ids = [args.experiment]
    else:
        parser.print_help()
        return 2

    failures = 0
    rendered: list[str] = []
    for exp_id in ids:
        result = run_experiment(exp_id)
        text = result.render()
        print(text)
        print()
        rendered.append(text)
        if not result.all_checks_pass:
            failures += 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(rendered) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
