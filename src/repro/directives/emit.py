"""Emitting directive source from a live data space (mapping snapshots).

``emit_program(ds)`` reconstructs a specification-part program —
declarations, PROCESSORS, DISTRIBUTE and ALIGN directives — that, when
run through :func:`repro.directives.analyzer.run_program`, reproduces the
data space's current element-to-processor mapping exactly.  The round
trip is property-tested.

Uses:

* checkpointing a dynamically evolved mapping state (§4.2/§5.2 surgery
  flattens into plain spec-part directives — a practical corollary of the
  paper's claim that the model needs no execution history to describe);
* golden-file style debugging of mapping bugs;
* interchange with the template baseline (the witness strategy of E12
  emits through the same path).

Integer-array arguments (GENERAL_BLOCK, INDIRECT) cannot be written
inline in the directive grammar; they are returned in the ``inputs``
mapping under synthesized names, exactly as a host program would supply
them.
"""

from __future__ import annotations

from typing import Any

from repro.align.function import AlignmentFunction
from repro.align.reduce import ExprAxis, ReplicatedAxis
from repro.core.dataspace import DataSpace
from repro.distributions.base import Collapsed
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.distribution import FormatDistribution
from repro.distributions.general_block import GeneralBlock
from repro.distributions.indirect import Indirect
from repro.errors import DirectiveError
from repro.processors.arrangement import ProcessorArrangement

__all__ = ["emit_program", "EmittedProgram"]


class EmittedProgram:
    """Source text plus the host inputs it needs."""

    def __init__(self, source: str, inputs: dict[str, Any]) -> None:
        self.source = source
        self.inputs = inputs

    def __str__(self) -> str:
        return self.source


def emit_program(ds: DataSpace) -> EmittedProgram:
    """Snapshot ``ds``'s current mappings as directive source."""
    lines: list[str] = []
    inputs: dict[str, Any] = {}
    int_decls: list[str] = []

    # declarations for created arrays (rank > 0)
    for name in ds.created_arrays():
        arr = ds.arrays[name]
        if arr.domain.rank == 0:
            continue
        dims = ", ".join(f"{d.lower}:{d.last}" for d in arr.domain.dims)
        lines.append(f"      REAL {name}({dims})")

    # processor arrangements (skip the implicit _AP* ones: the analyzer
    # regenerates them deterministically for TO-less directives)
    for arr in ds.ap.arrangements:
        if arr.name.startswith("_"):
            continue
        if isinstance(arr, ProcessorArrangement):
            dims = ", ".join(f"{d.lower}:{d.last}"
                             for d in arr.domain.dims)
            lines.append(f"!HPF$ PROCESSORS {arr.name}({dims})")
        else:
            lines.append(f"!HPF$ PROCESSORS {arr.name}")

    # distributions of primaries, alignments of secondaries
    counter = [0]
    for name in ds.created_arrays():
        arr = ds.arrays[name]
        if arr.domain.rank == 0:
            continue
        if name in ds.forest and ds.forest.is_secondary(name):
            lines.append(_emit_align(name, ds))
        else:
            dist = ds.distribution_of(name)
            lines.append(_emit_distribute(name, dist, inputs,
                                          int_decls, counter))
    src = "\n".join(int_decls + lines) + "\n"
    return EmittedProgram(src, inputs)


def _emit_distribute(name: str, dist, inputs: dict,
                     int_decls: list[str], counter: list[int]) -> str:
    if not isinstance(dist, FormatDistribution):
        raise DirectiveError(
            f"cannot emit a directive for {name!r}: distribution "
            f"{dist.describe()} has no format-list form")
    fmts = []
    for fmt in dist.formats:
        if isinstance(fmt, Collapsed):
            fmts.append(":")
        elif isinstance(fmt, Block):
            if fmt.variant is not BlockVariant.HPF or fmt.size:
                raise DirectiveError(
                    f"cannot emit non-standard BLOCK variant for {name!r}")
            fmts.append("BLOCK")
        elif isinstance(fmt, Cyclic):
            fmts.append("CYCLIC" if fmt.k == 1 else f"CYCLIC({fmt.k})")
        elif isinstance(fmt, (GeneralBlock, Indirect)):
            counter[0] += 1
            aux = f"MAP{counter[0]}"
            if isinstance(fmt, GeneralBlock):
                values = list(fmt.bounds)
                kw = "GENERAL_BLOCK"
            else:
                values = [v + 1 for v in fmt.mapping]   # 1-based outside
                kw = "INDIRECT"
            inputs[aux] = values
            int_decls.append(f"      INTEGER {aux}(1:{len(values)})")
            fmts.append(f"{kw}({aux})")
        else:
            raise DirectiveError(
                f"cannot emit format {fmt} for {name!r}")
    target = dist.target
    to = ""
    if not target.arrangement.name.startswith("_"):
        subs = ", ".join(str(s) for s in target.section.subscripts)
        to = f" TO {target.arrangement.name}({subs})"
    inner = ", ".join(fmts)
    return f"!HPF$ DISTRIBUTE {name}({inner}){to}"


def _emit_align(name: str, ds: DataSpace) -> str:
    base = ds.forest.parent_of(name)
    fn = ds.forest.alignment_of(name)
    assert isinstance(fn, AlignmentFunction)
    red = fn.reduced
    axes = ", ".join(red.dummy_names)
    subs = []
    for ax in red.base_axes:
        if isinstance(ax, ReplicatedAxis):
            subs.append("*")
        else:
            assert isinstance(ax, ExprAxis)
            subs.append(str(ax.expr))
    inner = ", ".join(subs)
    return f"!HPF$ ALIGN {name}({axes}) WITH {base}({inner})"
