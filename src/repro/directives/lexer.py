"""Line-oriented lexer for the directive sublanguage.

The source form is a small, case-insensitive Fortran-like language:

* lines beginning with ``!HPF$`` are HPF directives;
* other lines beginning with ``!`` (or empty) are comments/blank;
* remaining lines are declarations or executable statements.

The lexer tokenizes one logical line at a time (``&`` continuation is
honoured both at line end and line start, as in free form) into a small
token vocabulary: identifiers, integer literals, and the punctuation the
grammar needs (including ``::`` and the subscript ``:``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import DirectiveError

__all__ = ["TokenKind", "Token", "Lexer", "LogicalLine"]


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    COLON = ":"
    DCOLON = "::"
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    EQUALS = "="
    EOL = "eol"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind.name}({self.text!r})"


@dataclass(frozen=True)
class LogicalLine:
    """One logical source line after continuation joining."""

    number: int          #: first physical line number (1-based)
    is_directive: bool   #: True for !HPF$ lines
    text: str            #: payload with the sentinel stripped
    tokens: tuple[Token, ...]


_TOKEN_RE = re.compile(r"""
      (?P<ws>\s+)
    | (?P<float>\d+\.\d*|\.\d+)
    | (?P<int>\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
    | (?P<dcolon>::)
    | (?P<punct>[(),:*+\-/=])
""", re.VERBOSE)

_PUNCT = {
    "(": TokenKind.LPAREN, ")": TokenKind.RPAREN, ",": TokenKind.COMMA,
    ":": TokenKind.COLON, "*": TokenKind.STAR, "+": TokenKind.PLUS,
    "-": TokenKind.MINUS, "/": TokenKind.SLASH, "=": TokenKind.EQUALS,
}

_SENTINEL = re.compile(r"^\s*!HPF\$", re.IGNORECASE)
_COMMENT = re.compile(r"^\s*(!|$)")


class Lexer:
    """Tokenizes program text into logical lines."""

    def __init__(self, source: str) -> None:
        self.source = source

    def logical_lines(self) -> list[LogicalLine]:
        out: list[LogicalLine] = []
        pending: str | None = None
        pending_no = 0
        pending_dir = False
        for no, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.rstrip()
            if pending is None:
                if _SENTINEL.match(line):
                    payload = _SENTINEL.sub("", line)
                    is_dir = True
                elif _COMMENT.match(line):
                    continue
                else:
                    payload = line
                    is_dir = False
                pending_no = no
                pending_dir = is_dir
            else:
                cont = _SENTINEL.sub("", line)
                payload = pending + " " + cont.lstrip().lstrip("&")
                is_dir = pending_dir
                pending = None
            if payload.rstrip().endswith("&"):
                pending = payload.rstrip()[:-1]
                continue
            tokens = self._tokenize(payload, pending_no)
            if tokens:
                out.append(LogicalLine(pending_no, pending_dir,
                                       payload.strip(),
                                       tuple(tokens)
                                       + (Token(TokenKind.EOL, "",
                                                pending_no,
                                                len(payload)),)))
        if pending is not None:
            raise DirectiveError("dangling continuation '&' at end of "
                                 "source", line=pending_no)
        return out

    @staticmethod
    def _tokenize(text: str, line_no: int) -> list[Token]:
        tokens: list[Token] = []
        pos = 0
        # strip trailing '!' comments (not inside this tiny language's
        # strings — there are no strings)
        bang = text.find("!")
        if bang >= 0:
            text = text[:bang]
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise DirectiveError(
                    f"unexpected character {text[pos]!r}",
                    line=line_no, column=pos + 1, text=text)
            if m.lastgroup == "ws":
                pos = m.end()
                continue
            if m.lastgroup == "int":
                tokens.append(Token(TokenKind.INT, m.group(), line_no,
                                    pos + 1))
            elif m.lastgroup == "float":
                tokens.append(Token(TokenKind.FLOAT, m.group(), line_no,
                                    pos + 1))
            elif m.lastgroup == "ident":
                tokens.append(Token(TokenKind.IDENT, m.group().upper(),
                                    line_no, pos + 1))
            elif m.lastgroup == "dcolon":
                tokens.append(Token(TokenKind.DCOLON, "::", line_no,
                                    pos + 1))
            else:
                tokens.append(Token(_PUNCT[m.group()], m.group(), line_no,
                                    pos + 1))
            pos = m.end()
        return tokens
