"""Recursive-descent parser for the directive sublanguage.

One logical line = one statement.  Directive lines dispatch on their first
keyword (PROCESSORS, TEMPLATE, DISTRIBUTE, REDISTRIBUTE, ALIGN, REALIGN,
DYNAMIC); other lines are declarations (REAL/INTEGER/LOGICAL, PARAMETER),
ALLOCATE/DEALLOCATE, READ, or array assignments.

Index expressions are parsed into :mod:`repro.align.ast` nodes, with all
identifiers as :class:`~repro.align.ast.Name`; the analyzer later rewrites
names bound by alignee axes into align-dummies.
"""

from __future__ import annotations

from repro.align.ast import BinOp, Call, Const, Expr, Name
from repro.directives import nodes as N
from repro.directives.lexer import Lexer, LogicalLine, Token, TokenKind as K
from repro.errors import DirectiveError

__all__ = ["Parser", "parse_program"]

_TYPE_KEYWORDS = {"REAL", "INTEGER", "LOGICAL", "DOUBLE", "COMPLEX"}
_INTRINSICS = {"MAX", "MIN", "LBOUND", "UBOUND", "SIZE"}


class _Stream:
    """Token cursor with pushback (for splitting '::' into ':' ':')."""

    def __init__(self, tokens: tuple[Token, ...], line: int,
                 text: str) -> None:
        self.tokens = list(tokens)
        self.pos = 0
        self.line = line
        self.text = text

    def peek(self, k: int = 0) -> Token:
        i = min(self.pos + k, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not K.EOL:
            self.pos += 1
        return tok

    def accept(self, kind: K) -> Token | None:
        if self.peek().kind is kind:
            return self.next()
        return None

    def expect(self, kind: K, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            wanted = what or kind.value
            raise DirectiveError(
                f"expected {wanted}, found {tok.text or '<end of line>'!r}",
                line=self.line, column=tok.column, text=self.text,
                code="RPR100")
        return self.next()

    def accept_ident(self, word: str) -> bool:
        tok = self.peek()
        if tok.kind is K.IDENT and tok.text == word:
            self.next()
            return True
        return False

    def split_dcolon(self) -> bool:
        """If the next token is '::', replace it by two ':' tokens and
        return True (used inside subscript lists)."""
        tok = self.peek()
        if tok.kind is K.DCOLON:
            self.tokens[self.pos:self.pos + 1] = [
                Token(K.COLON, ":", tok.line, tok.column),
                Token(K.COLON, ":", tok.line, tok.column + 1),
            ]
            return True
        return False

    def at_eol(self) -> bool:
        return self.peek().kind is K.EOL

    def error(self, message: str) -> DirectiveError:
        tok = self.peek()
        return DirectiveError(message, line=self.line, column=tok.column,
                              text=self.text, code="RPR100")


class Parser:
    """Parses program text into a list of AST nodes."""

    def __init__(self, source: str) -> None:
        self.lines = Lexer(source).logical_lines()

    def parse(self) -> list[N.Node]:
        out: list[N.Node] = []
        for line in self.lines:
            out.append(self._parse_line(line))
        return out

    # ------------------------------------------------------------------
    def _parse_line(self, line: LogicalLine) -> N.Node:
        s = _Stream(line.tokens, line.number, line.text)
        head = s.peek()
        if head.kind is not K.IDENT and not (
                not line.is_directive and head.kind is K.LPAREN):
            raise s.error("statement must begin with a keyword or name")
        if line.is_directive:
            return self._parse_directive(s)
        return self._parse_statement(s)

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------
    def _parse_directive(self, s: _Stream) -> N.Node:
        kw = s.expect(K.IDENT, "directive keyword").text
        if kw == "PROCESSORS":
            return self._parse_processors(s)
        if kw == "TEMPLATE":
            return self._parse_template(s)
        if kw in ("DISTRIBUTE", "REDISTRIBUTE"):
            return self._parse_distribute(s, kw == "REDISTRIBUTE")
        if kw in ("ALIGN", "REALIGN"):
            return self._parse_align(s, kw == "REALIGN")
        if kw == "DYNAMIC":
            return self._parse_dynamic(s)
        raise s.error(f"unknown directive {kw!r}")

    def _parse_processors(self, s: _Stream) -> N.ProcessorsNode:
        s.accept(K.DCOLON)
        entries = []
        while True:
            name = s.expect(K.IDENT, "arrangement name").text
            dims = None
            if s.accept(K.LPAREN):
                dims = tuple(self._parse_dim_decl_list(s))
                s.expect(K.RPAREN)
            entries.append((name, dims))
            if not s.accept(K.COMMA):
                break
        self._expect_eol(s)
        return N.ProcessorsNode(s.line, tuple(entries))

    def _parse_template(self, s: _Stream) -> N.TemplateNode:
        s.accept(K.DCOLON)
        name = s.expect(K.IDENT, "template name").text
        s.expect(K.LPAREN)
        dims = tuple(self._parse_dim_decl_list(s))
        s.expect(K.RPAREN)
        self._expect_eol(s)
        return N.TemplateNode(s.line, name, dims)

    def _parse_distribute(self, s: _Stream,
                          redistribute: bool) -> N.DistributeNode:
        distributees: list[N.DistributeeSpec] = []
        target: N.TargetRef | None = None
        if s.peek().kind is K.LPAREN:
            # shared form: ( format-list ) [TO tgt] :: names
            s.expect(K.LPAREN)
            formats = tuple(self._parse_format_list(s))
            s.expect(K.RPAREN)
            if s.accept_ident("TO"):
                target = self._parse_target(s)
            s.expect(K.DCOLON, "'::'")
            while True:
                name = s.expect(K.IDENT, "distributee name").text
                distributees.append(N.DistributeeSpec(name, formats))
                if not s.accept(K.COMMA):
                    break
        else:
            name = s.expect(K.IDENT, "distributee name").text
            if s.accept(K.STAR):
                # dummy inheritance forms: '*' or '* (d)'
                if s.accept(K.LPAREN):
                    formats = tuple(self._parse_format_list(s))
                    s.expect(K.RPAREN)
                    distributees.append(
                        N.DistributeeSpec(name, formats, star=True))
                else:
                    distributees.append(
                        N.DistributeeSpec(name, None, star=True))
            else:
                s.expect(K.LPAREN)
                formats = tuple(self._parse_format_list(s))
                s.expect(K.RPAREN)
                distributees.append(N.DistributeeSpec(name, formats))
            if s.accept_ident("TO"):
                target = self._parse_target(s)
        self._expect_eol(s)
        return N.DistributeNode(s.line, redistribute, tuple(distributees),
                                target)

    def _parse_format_list(self, s: _Stream) -> list[N.FormatSpec]:
        out = []
        while True:
            s.split_dcolon()
            if s.accept(K.COLON):
                out.append(N.FormatSpec(":"))
            else:
                kw = s.expect(K.IDENT, "distribution format").text
                if kw not in ("BLOCK", "CYCLIC", "GENERAL_BLOCK",
                              "INDIRECT"):
                    raise s.error(f"unknown distribution format {kw!r}")
                arg = None
                if s.accept(K.LPAREN):
                    if kw in ("GENERAL_BLOCK", "INDIRECT") and \
                            s.peek().kind is K.IDENT and \
                            s.peek(1).kind is K.RPAREN:
                        arg = s.next().text   # integer array name
                    else:
                        arg = self._parse_expr(s)
                    s.expect(K.RPAREN)
                out.append(N.FormatSpec(kw, arg))
            if not s.accept(K.COMMA):
                break
        return out

    def _parse_target(self, s: _Stream) -> N.TargetRef:
        name = s.expect(K.IDENT, "target arrangement name").text
        subs = None
        if s.accept(K.LPAREN):
            subs = tuple(self._parse_section_sub_list(s))
            s.expect(K.RPAREN)
        return N.TargetRef(name, subs)

    def _parse_align(self, s: _Stream, realign: bool) -> N.AlignNode:
        alignee = s.expect(K.IDENT, "alignee name").text
        s.expect(K.LPAREN)
        axes = []
        while True:
            s.split_dcolon()
            if s.accept(K.COLON):
                axes.append(N.AlignItemAxis("colon"))
            elif s.accept(K.STAR):
                axes.append(N.AlignItemAxis("star"))
            else:
                axes.append(N.AlignItemAxis(
                    "dummy", s.expect(K.IDENT, "align dummy").text))
            if not s.accept(K.COMMA):
                break
        s.expect(K.RPAREN)
        if not s.accept_ident("WITH"):
            raise s.error("expected WITH in ALIGN directive")
        base = s.expect(K.IDENT, "alignment base name").text
        s.expect(K.LPAREN)
        subs = []
        while True:
            subs.append(self._parse_align_base_sub(s))
            if not s.accept(K.COMMA):
                break
        s.expect(K.RPAREN)
        self._expect_eol(s)
        return N.AlignNode(s.line, realign, alignee, tuple(axes), base,
                           tuple(subs))

    def _parse_align_base_sub(self, s: _Stream) -> N.AlignBaseSub:
        # '*' | expr | [expr] : [expr] [: expr]
        if s.peek().kind is K.STAR and s.peek(1).kind in (K.COMMA,
                                                          K.RPAREN):
            s.next()
            return N.AlignBaseSub("star")
        lower = None
        s.split_dcolon()
        if s.peek().kind is not K.COLON:
            lower = self._parse_expr(s)
            s.split_dcolon()
            if s.peek().kind is not K.COLON:
                return N.AlignBaseSub("expr", expr=lower)
        s.expect(K.COLON)
        upper = None
        stride = None
        s.split_dcolon()
        if s.peek().kind not in (K.COLON, K.COMMA, K.RPAREN):
            upper = self._parse_expr(s)
        s.split_dcolon()
        if s.accept(K.COLON):
            stride = self._parse_expr(s)
        return N.AlignBaseSub("triplet", lower=lower, upper=upper,
                              stride=stride)

    def _parse_dynamic(self, s: _Stream) -> N.DynamicNode:
        s.accept(K.DCOLON)
        names = [s.expect(K.IDENT, "array name").text]
        while s.accept(K.COMMA):
            names.append(s.expect(K.IDENT, "array name").text)
        self._expect_eol(s)
        return N.DynamicNode(s.line, tuple(names))

    # ------------------------------------------------------------------
    # Statements / declarations
    # ------------------------------------------------------------------
    def _parse_statement(self, s: _Stream) -> N.Node:
        head = s.peek()
        if head.kind is K.IDENT and head.text in _TYPE_KEYWORDS:
            return self._parse_declaration(s)
        if head.kind is K.IDENT and head.text == "PARAMETER":
            return self._parse_parameter(s)
        if head.kind is K.IDENT and head.text == "READ":
            return self._parse_read(s)
        if head.kind is K.IDENT and head.text == "ALLOCATE":
            return self._parse_allocate(s)
        if head.kind is K.IDENT and head.text == "DEALLOCATE":
            return self._parse_deallocate(s)
        # DO K = 1, N  (an identifier headed by DO and followed by the
        # loop variable; `DO(...) = ...` would be an array named DO)
        if head.kind is K.IDENT and head.text == "DO" and \
                s.peek(1).kind is K.IDENT:
            return self._parse_do(s)
        if head.kind is K.IDENT and head.text == "END" and \
                s.peek(1).kind is K.IDENT and s.peek(1).text == "DO":
            s.next()
            s.next()
            self._expect_eol(s)
            return N.EndDoNode(s.line)
        if head.kind is K.IDENT and head.text == "ENDDO" and \
                s.peek(1).kind is K.EOL:
            s.next()
            return N.EndDoNode(s.line)
        return self._parse_assignment(s)

    def _parse_do(self, s: _Stream) -> N.DoNode:
        s.next()   # DO
        var = s.expect(K.IDENT, "loop variable").text
        s.expect(K.EQUALS, "'='")
        start = self._parse_expr(s)
        s.expect(K.COMMA, "','")
        stop = self._parse_expr(s)
        step = None
        if s.accept(K.COMMA):
            step = self._parse_expr(s)
        self._expect_eol(s)
        return N.DoNode(s.line, var, start, stop, step)

    def _parse_declaration(self, s: _Stream) -> N.DeclNode:
        type_name = s.next().text
        if type_name == "DOUBLE":
            s.accept_ident("PRECISION")
            type_name = "DOUBLE PRECISION"
        allocatable = False
        attr_dims = None
        while s.accept(K.COMMA):
            attr = s.expect(K.IDENT, "attribute").text
            if attr == "ALLOCATABLE":
                allocatable = True
                if s.accept(K.LPAREN):
                    attr_dims = tuple(self._parse_decl_dims(s))
                    s.expect(K.RPAREN)
            elif attr == "DYNAMIC":
                # tolerated as a type attribute extension
                pass
            else:
                raise s.error(f"unsupported attribute {attr!r}")
        s.accept(K.DCOLON)
        entities = []
        while True:
            name = s.expect(K.IDENT, "entity name").text
            dims = None
            if s.accept(K.LPAREN):
                dims = tuple(self._parse_decl_dims(s))
                s.expect(K.RPAREN)
            entities.append((name, dims))
            if not s.accept(K.COMMA):
                break
        self._expect_eol(s)
        return N.DeclNode(s.line, type_name, allocatable, attr_dims,
                          tuple(entities))

    def _parse_decl_dims(self, s: _Stream) -> list:
        """Dimension list allowing explicit bounds or deferred ':'."""
        out = []
        while True:
            s.split_dcolon()
            if s.peek().kind is K.COLON and \
                    s.peek(1).kind in (K.COMMA, K.RPAREN):
                s.next()
                out.append(N.DeferredDim())
            else:
                first = self._parse_expr(s)
                s.split_dcolon()
                if s.accept(K.COLON):
                    upper = self._parse_expr(s)
                    out.append(N.DimDecl(first, upper))
                else:
                    out.append(N.DimDecl(None, first))
            if not s.accept(K.COMMA):
                break
        return out

    def _parse_dim_decl_list(self, s: _Stream) -> list[N.DimDecl]:
        out = []
        for d in self._parse_decl_dims(s):
            if isinstance(d, N.DeferredDim):
                raise s.error("deferred shape ':' not allowed here")
            out.append(d)
        return out

    def _parse_parameter(self, s: _Stream) -> N.ParameterNode:
        s.next()   # PARAMETER
        s.expect(K.LPAREN)
        name = s.expect(K.IDENT, "parameter name").text
        s.expect(K.EQUALS)
        value = self._parse_expr(s)
        s.expect(K.RPAREN)
        self._expect_eol(s)
        return N.ParameterNode(s.line, name, value)

    def _parse_read(self, s: _Stream) -> N.ReadNode:
        s.next()   # READ
        unit = int(s.expect(K.INT, "unit number").text)
        s.expect(K.COMMA)
        names = [s.expect(K.IDENT, "input name").text]
        while s.accept(K.COMMA):
            names.append(s.expect(K.IDENT, "input name").text)
        self._expect_eol(s)
        return N.ReadNode(s.line, unit, tuple(names))

    def _parse_allocate(self, s: _Stream) -> N.AllocateNode:
        s.next()   # ALLOCATE
        s.expect(K.LPAREN)
        allocations = []
        while True:
            name = s.expect(K.IDENT, "array name").text
            s.expect(K.LPAREN)
            dims = tuple(self._parse_dim_decl_list(s))
            s.expect(K.RPAREN)
            allocations.append((name, dims))
            if not s.accept(K.COMMA):
                break
        s.expect(K.RPAREN)
        self._expect_eol(s)
        return N.AllocateNode(s.line, tuple(allocations))

    def _parse_deallocate(self, s: _Stream) -> N.DeallocateNode:
        s.next()   # DEALLOCATE
        s.expect(K.LPAREN)
        names = [s.expect(K.IDENT, "array name").text]
        while s.accept(K.COMMA):
            names.append(s.expect(K.IDENT, "array name").text)
        s.expect(K.RPAREN)
        self._expect_eol(s)
        return N.DeallocateNode(s.line, tuple(names))

    # ------------------------------------------------------------------
    # Assignments / statement expressions
    # ------------------------------------------------------------------
    def _parse_assignment(self, s: _Stream) -> N.AssignNode:
        lhs = self._parse_ref(s)
        s.expect(K.EQUALS, "'='")
        rhs = self._parse_stmt_expr(s)
        self._expect_eol(s)
        return N.AssignNode(s.line, lhs, rhs)

    def _parse_ref(self, s: _Stream) -> N.RefNode:
        name = s.expect(K.IDENT, "array name").text
        subs = None
        if s.accept(K.LPAREN):
            subs = tuple(self._parse_section_sub_list(s))
            s.expect(K.RPAREN)
        return N.RefNode(name, subs)

    def _parse_section_sub_list(self, s: _Stream) -> list[N.SectionSub]:
        out = []
        while True:
            out.append(self._parse_section_sub(s))
            if not s.accept(K.COMMA):
                break
        return out

    def _parse_section_sub(self, s: _Stream) -> N.SectionSub:
        s.split_dcolon()
        lower = None
        if s.peek().kind is not K.COLON:
            lower = self._parse_expr(s)
            s.split_dcolon()
            if s.peek().kind is not K.COLON:
                return N.SectionSub("expr", expr=lower)
        s.expect(K.COLON)
        upper = None
        stride = None
        s.split_dcolon()
        if s.peek().kind not in (K.COLON, K.COMMA, K.RPAREN):
            upper = self._parse_expr(s)
        s.split_dcolon()
        if s.accept(K.COLON):
            stride = self._parse_expr(s)
        if lower is None and upper is None and stride is None:
            return N.SectionSub("colon")
        return N.SectionSub("triplet", lower=lower, upper=upper,
                            stride=stride)

    def _parse_stmt_expr(self, s: _Stream, min_prec: int = 0) -> N.ExprNode:
        left = self._parse_stmt_atom(s)
        while True:
            tok = s.peek()
            prec = {K.PLUS: 1, K.MINUS: 1, K.STAR: 2, K.SLASH: 2}.get(
                tok.kind)
            if prec is None or prec < min_prec:
                return left
            s.next()
            right = self._parse_stmt_expr(s, prec + 1)
            left = N.BinNode(tok.text, left, right)

    def _parse_stmt_atom(self, s: _Stream) -> N.ExprNode:
        tok = s.peek()
        if tok.kind in (K.INT, K.FLOAT):
            s.next()
            return N.NumNode(float(tok.text))
        if tok.kind is K.MINUS:
            s.next()
            inner = self._parse_stmt_atom(s)
            return N.BinNode("-", N.NumNode(0.0), inner)
        if tok.kind is K.LPAREN:
            s.next()
            inner = self._parse_stmt_expr(s)
            s.expect(K.RPAREN)
            return inner
        if tok.kind is K.IDENT:
            return self._parse_ref(s)
        raise s.error(f"unexpected token {tok.text!r} in expression")

    # ------------------------------------------------------------------
    # Index expressions (specification level)
    # ------------------------------------------------------------------
    def _parse_expr(self, s: _Stream, min_prec: int = 0) -> Expr:
        left = self._parse_atom(s)
        while True:
            tok = s.peek()
            prec = {K.PLUS: 1, K.MINUS: 1, K.STAR: 2}.get(tok.kind)
            if prec is None or prec < min_prec:
                return left
            s.next()
            right = self._parse_expr(s, prec + 1)
            left = BinOp(tok.text, left, right)

    def _parse_atom(self, s: _Stream) -> Expr:
        tok = s.peek()
        if tok.kind is K.INT:
            s.next()
            return Const(int(tok.text))
        if tok.kind is K.MINUS:
            s.next()
            return BinOp("-", Const(0), self._parse_atom(s))
        if tok.kind is K.LPAREN:
            s.next()
            inner = self._parse_expr(s)
            s.expect(K.RPAREN)
            return inner
        if tok.kind is K.IDENT:
            name = s.next().text
            if name in _INTRINSICS and s.peek().kind is K.LPAREN:
                s.next()
                args = [self._parse_expr(s)]
                while s.accept(K.COMMA):
                    args.append(self._parse_expr(s))
                s.expect(K.RPAREN)
                return Call(name, args)
            return Name(name)
        raise s.error(
            f"unexpected token {tok.text or '<end of line>'!r} in index "
            "expression")

    @staticmethod
    def _expect_eol(s: _Stream) -> None:
        if not s.at_eol():
            raise s.error(
                f"unexpected trailing tokens starting at "
                f"{s.peek().text!r}")


def parse_program(source: str) -> list[N.Node]:
    """Parse program text into AST nodes."""
    return Parser(source).parse()
