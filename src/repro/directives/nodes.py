"""AST nodes produced by the directive parser.

Index expressions are shared with the alignment machinery
(:mod:`repro.align.ast`), so everything the analyzer later evaluates —
declaration bounds, distribution arguments, alignment subscripts,
ALLOCATE extents — is one expression language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.align.ast import Expr

__all__ = [
    "DimDecl", "DeferredDim", "DeclNode", "ProcessorsNode", "TemplateNode",
    "FormatSpec", "TargetRef", "DistributeeSpec", "DistributeNode",
    "AlignItemAxis", "AlignBaseSub", "AlignNode", "DynamicNode",
    "AllocateNode", "DeallocateNode", "ReadNode", "ParameterNode",
    "SectionSub", "RefNode", "ExprNode", "BinNode", "NumNode",
    "AssignNode", "DoNode", "EndDoNode", "Node",
]


@dataclass(frozen=True)
class DimDecl:
    """An explicit dimension declarator ``[lower:]upper``."""

    lower: Expr | None
    upper: Expr


@dataclass(frozen=True)
class DeferredDim:
    """A deferred-shape dimension ``:`` (allocatable declarations)."""


@dataclass(frozen=True)
class DeclNode:
    """``REAL[, ALLOCATABLE(...)] [::] name(dims), ...``"""

    line: int
    type_name: str
    allocatable: bool
    #: shared deferred shape from the ALLOCATABLE(:,:) attribute (or None)
    attr_dims: tuple | None
    entities: tuple[tuple[str, tuple | None], ...]   # (name, dims|None)


@dataclass(frozen=True)
class ProcessorsNode:
    """``!HPF$ PROCESSORS PR(32), Q`` — arrays and scalar arrangements."""

    line: int
    entries: tuple[tuple[str, tuple | None], ...]   # (name, dims|None)


@dataclass(frozen=True)
class TemplateNode:
    """``!HPF$ TEMPLATE T(0:2*N, 0:2*N)`` (template baseline only)."""

    line: int
    name: str
    dims: tuple[DimDecl, ...]


@dataclass(frozen=True)
class FormatSpec:
    """One distribution-format-list entry.

    ``kind`` is ``BLOCK``, ``CYCLIC``, ``GENERAL_BLOCK`` or ``:``; ``arg``
    is the optional parenthesized argument (expression or identifier of an
    integer array for GENERAL_BLOCK).
    """

    kind: str
    arg: Union[Expr, str, None] = None


@dataclass(frozen=True)
class TargetRef:
    """A TO-clause target: arrangement name plus optional subscripts."""

    name: str
    subscripts: tuple["SectionSub", ...] | None = None


@dataclass(frozen=True)
class DistributeeSpec:
    """One distributee of a DISTRIBUTE directive.

    ``star`` marks the §7 dummy-argument inheritance forms:
    ``DISTRIBUTE A *`` (``formats is None``) and
    ``DISTRIBUTE A * (d)`` (inheritance matching, ``formats`` given).
    """

    name: str
    formats: tuple["FormatSpec", ...] | None
    star: bool = False


@dataclass(frozen=True)
class DistributeNode:
    """DISTRIBUTE/REDISTRIBUTE in either syntactic form:

    * ``DISTRIBUTE A(BLOCK, :) [TO tgt]`` — per-distributee formats;
    * ``DISTRIBUTE (BLOCK, :) [TO tgt] :: A, B`` — shared formats;
    * ``DISTRIBUTE A * [(d)] [TO tgt]`` — dummy inheritance forms (§7).
    """

    line: int
    redistribute: bool
    distributees: tuple[DistributeeSpec, ...]
    target: TargetRef | None


@dataclass(frozen=True)
class AlignItemAxis:
    """Alignee axis: ``:``, ``*``, or a dummy identifier."""

    kind: str            #: "colon" | "star" | "dummy"
    name: str | None = None


@dataclass(frozen=True)
class AlignBaseSub:
    """Base subscript: ``*``, an expression, or a triplet of expressions."""

    kind: str            #: "star" | "expr" | "triplet"
    expr: Expr | None = None
    lower: Expr | None = None
    upper: Expr | None = None
    stride: Expr | None = None


@dataclass(frozen=True)
class AlignNode:
    """ALIGN/REALIGN directive."""

    line: int
    realign: bool
    alignee: str
    axes: tuple[AlignItemAxis, ...]
    base: str
    subscripts: tuple[AlignBaseSub, ...]


@dataclass(frozen=True)
class DynamicNode:
    line: int
    names: tuple[str, ...]


@dataclass(frozen=True)
class AllocateNode:
    """``ALLOCATE(A(N*M, N*M), B(N, N))``"""

    line: int
    allocations: tuple[tuple[str, tuple[DimDecl, ...]], ...]


@dataclass(frozen=True)
class DeallocateNode:
    line: int
    names: tuple[str, ...]


@dataclass(frozen=True)
class ReadNode:
    """``READ 6, M, N`` — binds run-time inputs to names."""

    line: int
    unit: int
    names: tuple[str, ...]


@dataclass(frozen=True)
class ParameterNode:
    """``PARAMETER (N = 16)`` — specification constants."""

    line: int
    name: str
    value: Expr


# ----------------------------------------------------------------------
# Executable array statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SectionSub:
    """A statement-level subscript: expression or triplet or ':'."""

    kind: str            #: "expr" | "triplet" | "colon"
    expr: Expr | None = None
    lower: Expr | None = None
    upper: Expr | None = None
    stride: Expr | None = None


@dataclass(frozen=True)
class RefNode:
    """Array reference in an executable statement."""

    name: str
    subscripts: tuple[SectionSub, ...] | None


@dataclass(frozen=True)
class NumNode:
    value: float


@dataclass(frozen=True)
class BinNode:
    op: str
    left: "ExprNode"
    right: "ExprNode"


ExprNode = Union[RefNode, NumNode, BinNode]


@dataclass(frozen=True)
class AssignNode:
    """``lhs = rhs`` over array sections."""

    line: int
    lhs: RefNode
    rhs: ExprNode


@dataclass(frozen=True)
class DoNode:
    """``DO var = start, stop [, step]`` — a counted loop header.

    The loop's trip count is fixed by the specification environment
    (the Fortran formula ``MAX((stop - start + step) / step, 0)``); the
    body, up to the matching :class:`EndDoNode`, lowers into one
    :class:`~repro.engine.ir.LoopNode` of the program IR.
    """

    line: int
    var: str
    start: Expr
    stop: Expr
    step: Expr | None = None


@dataclass(frozen=True)
class EndDoNode:
    """``END DO`` / ``ENDDO`` — closes the innermost open loop."""

    line: int


Node = Union[DeclNode, ProcessorsNode, TemplateNode, DistributeNode,
             AlignNode, DynamicNode, AllocateNode, DeallocateNode,
             ReadNode, ParameterNode, AssignNode, DoNode, EndDoNode]
