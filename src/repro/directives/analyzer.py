"""Semantic analysis and lowering of parsed programs.

The analyzer is the directive-language *front end* over the same spine
the Python :class:`~repro.api.session.Session` API uses: specification
nodes (declarations, PROCESSORS, DISTRIBUTE, ALIGN, DYNAMIC, READ,
PARAMETER) elaborate the scope eagerly, while the execution part —
array assignments, REDISTRIBUTE/REALIGN, ALLOCATE/DEALLOCATE and
``DO k = 1, N`` / ``END DO`` loops — is recorded through the shared
:class:`~repro.api.lower.ProgramBuilder` into the program IR and
executed by the :class:`~repro.engine.passes.ProgramRunner` (pass
pipeline, backend resolver, accountant seam).  Counted loops therefore
reach the optimizer as real :class:`~repro.engine.ir.LoopNode`\\ s: remap
hoisting and loop-carried halo validity fire on text programs exactly as
they do on Session programs.

Deliberate asymmetries (they *are* the paper's point):

* ``TEMPLATE`` raises in the paper model — the language has no templates;
* ``REALIGN``/``REDISTRIBUTE``/``DYNAMIC``/``ALLOCATE``/``DEALLOCATE``
  raise in the template baseline where the §8.2 impossibilities bite
  (fixed template shapes, no dynamic remapping of template-aligned data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.align.ast import (
    BinOp, Call, Dummy, Expr, Name, fold_constants, names_in,
)
from repro.align.spec import (
    AlignSpec, AxisColon, AxisDummy, AxisStar,
    BaseExpr, BaseStar, BaseTriplet,
)
from repro.api.lower import ProgramBuilder, run_graph
from repro.core.dataspace import DataSpace
from repro.directives import nodes as N
from repro.directives.parser import parse_program
from repro.distributions.base import Collapsed, DistributionFormat
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.executor import ExecutionReport, SimulatedExecutor
from repro.engine.expr import ArrayRef, BinExpr, ScalarLit
from repro.errors import DirectiveError, TemplateError
from repro.fortran.triplet import Triplet
from repro.machine.backend import resolve_backend
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.processors.section import ProcessorSection
from repro.templates.model import TemplateDataSpace

__all__ = ["Analyzer", "ProgramResult", "lint_program", "run_program"]


@dataclass
class ProgramResult:
    """Everything a program run produced."""

    model: str
    ds: Any                         #: DataSpace or TemplateDataSpace
    nodes: list[N.Node]
    machine: DistributedMachine | None = None
    reports: list[ExecutionReport] = field(default_factory=list)
    #: (source line, forest snapshot) after each paper-model node, in
    #: execution order (loop-body lines repeat once per trip)
    snapshots: list[tuple[int, dict]] = field(default_factory=list)
    int_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: per-pass optimizer savings, cumulative over the whole program
    #: (one accountant spans every lowered segment; empty at
    #: ``opt_level == 0`` or without a machine)
    savings: dict = field(default_factory=dict)
    #: autotune actions taken (``opt_level="auto"`` only), cumulative
    #: over every executed segment
    adaptations: list = field(default_factory=list)
    #: the execution part as lowered program IR (concatenation of every
    #: executed segment, in order)
    graph: Any = None

    @property
    def env(self) -> dict[str, int]:
        return self.ds.env


class Analyzer:
    """Executes parsed programs against a model."""

    def __init__(self, n_processors: int = 4, *,
                 inputs: Mapping[str, Any] | None = None,
                 model: str = "paper",
                 machine: bool | MachineConfig = False,
                 backend=None, opt_level: int = 0,
                 opt_window: int | None = None,
                 block_variant: BlockVariant = BlockVariant.HPF,
                 collect_only: bool = False) -> None:
        if model not in ("paper", "template"):
            raise DirectiveError(f"unknown model {model!r}")
        self.model = model
        #: lint mode: specification directives still elaborate the scope
        #: (the analyzer needs the declared mappings), but the execution
        #: part is only *lowered* — nothing runs and no storage mutates
        self.collect_only = collect_only
        self.block_variant = block_variant
        if model == "paper":
            self.ds: Any = DataSpace(n_processors)
        else:
            self.ds = TemplateDataSpace(n_processors)
        self.machine: DistributedMachine | None = None
        self.executor: SimulatedExecutor | None = None
        self.backend = resolve_backend(backend)
        #: ``opt_level="auto"`` enables the autotune feedback loop;
        #: static analysis then reasons at the -O2 pass set
        self.auto = str(opt_level).lower() == "auto"
        self.opt_level = 2 if self.auto else int(opt_level)
        self.opt_window = opt_window
        self.accountant = None
        self.runner = None
        if machine:
            config = machine if isinstance(machine, MachineConfig) \
                else MachineConfig(n_processors)
            self.machine = DistributedMachine(config)
            if model == "paper":
                # one runner (executor + accountant) for the whole
                # program: schedule caches and resident-exchange tables
                # stay hot across lowered segments.  Remaps are not
                # charged — the directive front end reports them as
                # RemapEvents for the caller to price, its historical
                # accounting contract.
                from repro.engine.passes import ProgramRunner
                self.runner = ProgramRunner(
                    self.ds, self.machine, backend=self.backend,
                    opt_level="auto" if self.auto else self.opt_level,
                    charge_remaps=False, opt_window=opt_window)
                self.executor = self.runner.executor
                self.accountant = self.runner.accountant
        #: the shared lowering spine (paper model only)
        self.builder = ProgramBuilder(self.ds) if model == "paper" \
            else None
        #: IR node id -> source line, for execution-order snapshots
        self._node_lines: dict[int, int] = {}
        #: stack of open DO-loop variables (innermost last)
        self._loop_vars: list[str] = []
        self.inputs = {k.upper(): v for k, v in (inputs or {}).items()}
        self.int_arrays: dict[str, np.ndarray] = {}
        #: deferred allocatable declarations: name -> rank
        self._deferred: dict[str, int] = {}
        self._int_scalars: set[str] = set()
        # scalar inputs double as specification constants immediately
        for k, v in self.inputs.items():
            if isinstance(v, (int, np.integer)):
                self.ds.env[k] = int(v)

    # ------------------------------------------------------------------
    def run(self, source: str) -> ProgramResult:
        nodes = parse_program(source)
        result = ProgramResult(self.model, self.ds, nodes,
                               machine=self.machine,
                               int_arrays=self.int_arrays)
        try:
            for node in nodes:
                self._execute(node, result)
            if self.builder is not None and self.builder.in_loop:
                raise DirectiveError(
                    f"{self.builder.loop_depth} DO loop(s) not closed "
                    "by END DO at end of program")
            self._flush_segment(result)
        finally:
            # SPMD executors hold a worker pool; release it with the run
            # (a later run() lazily restarts it)
            if hasattr(self.executor, "close"):
                self.executor.close()
        return result

    # ------------------------------------------------------------------
    # The build/execute split: specification nodes elaborate eagerly,
    # execution nodes lower into the shared program IR
    # ------------------------------------------------------------------
    _LAZY = (N.AssignNode, N.AllocateNode, N.DeallocateNode, N.DoNode,
             N.EndDoNode)

    def _execute(self, node: N.Node, result: ProgramResult) -> None:
        handler = {
            N.DeclNode: self._do_decl,
            N.ProcessorsNode: self._do_processors,
            N.TemplateNode: self._do_template,
            N.DistributeNode: self._do_distribute,
            N.AlignNode: self._do_align,
            N.DynamicNode: self._do_dynamic,
            N.AllocateNode: self._do_allocate,
            N.DeallocateNode: self._do_deallocate,
            N.ReadNode: self._do_read,
            N.ParameterNode: self._do_parameter,
            N.AssignNode: self._do_assign,
            N.DoNode: self._do_do,
            N.EndDoNode: self._do_end_do,
        }.get(type(node))
        if handler is None:
            raise DirectiveError(f"unhandled node {node!r}", line=node.line)
        if self.builder is not None and not self._is_lazy(node):
            # a specification directive interrupts the execution part:
            # run what is recorded so far, in source order, first
            if self.builder.in_loop:
                raise DirectiveError(
                    "only executable statements, dynamic remaps and "
                    "ALLOCATE/DEALLOCATE may appear inside a DO loop",
                    line=node.line)
            self._flush_segment(result)
            handler(node, result)
            result.snapshots.append(
                (node.line, self.ds.forest_snapshot()))
            return
        handler(node, result)

    def _is_lazy(self, node: N.Node) -> bool:
        """Execution-part nodes recorded into the IR (paper model)."""
        if isinstance(node, self._LAZY):
            return True
        if isinstance(node, N.DistributeNode) and node.redistribute:
            return True
        if isinstance(node, N.AlignNode) and node.realign:
            return True
        return False

    def _register(self, ir_node, line: int) -> None:
        self._node_lines[id(ir_node)] = line

    def _flush_segment(self, result: ProgramResult) -> None:
        """Lower and execute the recorded execution-part segment."""
        if self.builder is None or not len(self.builder):
            return
        # take() resets the builder's shadow domains; in collect mode the
        # data space never sees the ALLOCATE/DEALLOCATEs, so the shadow
        # must survive segment boundaries for later subscript resolution
        shadow = dict(self.builder._shadow)
        graph = self.builder.take()
        if result.graph is None:
            from repro.engine.ir import ProgramGraph
            result.graph = ProgramGraph()
        result.graph.nodes.extend(graph.nodes)
        if self.collect_only:
            self.builder._shadow = shadow
            return

        def on_node(node, trip):
            result.snapshots.append(
                (self._node_lines.get(id(node), 0),
                 self.ds.forest_snapshot()))

        run = run_graph(self.ds, graph, runner=self.runner,
                        on_node=on_node)
        if run is not None:
            result.reports.extend(run.reports)
            if run.savings:
                result.savings = run.savings
            result.adaptations.extend(
                getattr(run, "adaptations", ()) or ())

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, line: int) -> int:
        if self._loop_vars:
            used = names_in(expr) & set(self._loop_vars)
            if used:
                raise DirectiveError(
                    f"loop variable {sorted(used)[0]!r} may not appear "
                    "in subscripts: a DO loop lowers to a counted "
                    "repetition of an identical body, so every "
                    "statement must be trip-invariant", line=line)
        try:
            folded = fold_constants(expr, self.ds.env)
            return int(folded.evaluate(self.ds.env))
        except Exception as exc:
            raise DirectiveError(
                f"cannot evaluate {expr}: {exc}", line=line) from None

    def _bounds(self, dims: Sequence[N.DimDecl],
                line: int) -> list[tuple[int, int]]:
        out = []
        for d in dims:
            upper = self._eval(d.upper, line)
            lower = self._eval(d.lower, line) if d.lower is not None else 1
            out.append((lower, upper))
        return out

    # ------------------------------------------------------------------
    # Node handlers
    # ------------------------------------------------------------------
    def _do_decl(self, node: N.DeclNode, result: ProgramResult) -> None:
        is_int = node.type_name == "INTEGER"
        dtype = np.int64 if is_int else np.float64
        for name, dims in node.entities:
            eff_dims = dims if dims is not None else node.attr_dims
            if eff_dims is None:
                # scalar variable: INTEGER N etc.; value arrives via READ
                # or PARAMETER (or was passed as input)
                self._int_scalars.add(name)
                if name in self.inputs:
                    self.ds.env[name] = int(self.inputs[name])
                continue
            deferred = any(isinstance(d, N.DeferredDim) for d in eff_dims)
            if deferred or (node.allocatable and dims is None):
                if not node.allocatable:
                    raise DirectiveError(
                        f"{name}: deferred shape requires ALLOCATABLE",
                        line=node.line)
                self._deferred[name] = len(eff_dims)
                if self.model == "paper":
                    self.ds.declare(name, allocatable=True,
                                    rank=len(eff_dims), dtype=dtype)
                # template model: declared lazily at ALLOCATE
                continue
            bounds = self._bounds(eff_dims, node.line)
            if is_int:
                # integer arrays serve as directive data (GENERAL_BLOCK)
                lo, hi = bounds[0]
                values = self.inputs.get(name)
                arr = (np.asarray(values, dtype=np.int64)
                       if values is not None
                       else np.zeros(hi - lo + 1, dtype=np.int64))
                self.int_arrays[name] = arr
                continue
            if self.model == "paper":
                self.ds.declare(name, *bounds, dtype=dtype,
                                allocatable=node.allocatable)
            else:
                self.ds.declare(name, *bounds, dtype=dtype)

    def _do_processors(self, node: N.ProcessorsNode,
                       result: ProgramResult) -> None:
        for name, dims in node.entries:
            if dims is None:
                if not hasattr(self.ds, "scalar_processors"):
                    raise DirectiveError(
                        "scalar processor arrangements are only modelled "
                        "in the paper model", line=node.line)
                self.ds.scalar_processors(name)
            else:
                bounds = self._bounds(dims, node.line)
                self.ds.processors(name, *bounds)

    def _do_template(self, node: N.TemplateNode,
                     result: ProgramResult) -> None:
        if self.model == "paper":
            raise DirectiveError(
                f"TEMPLATE {node.name}: the template-free language of "
                "this paper has no TEMPLATE directive — use array-to-"
                "array ALIGN, direct DISTRIBUTE, or GENERAL_BLOCK "
                "(run with model='template' for the draft-HPF baseline)",
                line=node.line)
        bounds = self._bounds(node.dims, node.line)
        self.ds.template(node.name, *bounds)

    def _formats(self, specs: Sequence[N.FormatSpec],
                 line: int) -> list[DistributionFormat]:
        out: list[DistributionFormat] = []
        for f in specs:
            if f.kind == ":":
                out.append(Collapsed())
            elif f.kind == "BLOCK":
                size = self._eval(f.arg, line) if f.arg is not None else None
                out.append(Block(size=size, variant=self.block_variant))
            elif f.kind == "CYCLIC":
                k = self._eval(f.arg, line) if f.arg is not None else 1
                out.append(Cyclic(k))
            else:   # GENERAL_BLOCK / INDIRECT take an integer array
                arg = f.arg
                arr_name = arg if isinstance(arg, str) else (
                    arg.name if isinstance(arg, Name) else None)
                values = self.int_arrays.get(arr_name) \
                    if arr_name is not None else None
                if values is None:
                    raise DirectiveError(
                        f"{f.kind}({arg}): unknown integer array",
                        line=line)
                if f.kind == "GENERAL_BLOCK":
                    out.append(GeneralBlock([int(v) for v in values]))
                else:
                    # directive-level INDIRECT uses 1-based processor
                    # indices (Fortran convention); the library format
                    # is 0-based
                    from repro.distributions.indirect import Indirect
                    out.append(Indirect([int(v) - 1 for v in values]))
        return out

    def _target(self, ref: N.TargetRef | None,
                line: int) -> ProcessorSection | None:
        if ref is None:
            return None
        arrangement = self.ds.ap.arrangement(ref.name)
        if ref.subscripts is None:
            return ProcessorSection(arrangement)
        subs = []
        for s in ref.subscripts:
            if s.kind == "expr":
                subs.append(self._eval(s.expr, line))
            elif s.kind == "colon":
                d = arrangement.domain.dims[len(subs)]
                subs.append(Triplet(d.lower, d.last, 1))
            else:
                d = arrangement.domain.dims[len(subs)]
                lo = self._eval(s.lower, line) if s.lower is not None \
                    else d.lower
                hi = self._eval(s.upper, line) if s.upper is not None \
                    else d.last
                st = self._eval(s.stride, line) if s.stride is not None \
                    else 1
                subs.append(Triplet(lo, hi, st))
        return ProcessorSection(arrangement, tuple(subs))

    def _do_distribute(self, node: N.DistributeNode,
                       result: ProgramResult) -> None:
        # (no fusion-window flush needed here: a spec directive reaching
        # this handler already flushed the recorded segment, and the
        # runner's finally drained the accountant)
        target = self._target(node.target, node.line)
        for spec in node.distributees:
            if spec.star:
                raise DirectiveError(
                    f"DISTRIBUTE {spec.name} *: dummy-argument "
                    "inheritance forms apply to procedure interfaces; "
                    "use repro.core.procedures.DummySpec", line=node.line)
            formats = self._formats(spec.formats, node.line)
            if node.redistribute:
                if self.model == "template":
                    raise TemplateError(
                        "REDISTRIBUTE is not supported in the template "
                        "baseline scope of this library")
                self._register(
                    self.builder.redistribute(spec.name, formats,
                                              to=target), node.line)
            else:
                self.ds.distribute(spec.name, formats, to=target)

    def _align_spec(self, node: N.AlignNode) -> AlignSpec:
        axes = []
        dummy_names: set[str] = set()
        for ax in node.axes:
            if ax.kind == "colon":
                axes.append(AxisColon())
            elif ax.kind == "star":
                axes.append(AxisStar())
            else:
                axes.append(AxisDummy(ax.name))
                dummy_names.add(ax.name)

        def rewrite(expr: Expr) -> Expr:
            """Turn Names bound by alignee axes into align-dummies."""
            if isinstance(expr, Name) and expr.name in dummy_names:
                return Dummy(expr.name)
            if isinstance(expr, BinOp):
                return BinOp(expr.op, rewrite(expr.left),
                             rewrite(expr.right))
            if isinstance(expr, Call):
                return Call(expr.fn, [rewrite(a) for a in expr.args])
            return expr

        subs = []
        for sub in node.subscripts:
            if sub.kind == "star":
                subs.append(BaseStar())
            elif sub.kind == "expr":
                subs.append(BaseExpr(rewrite(sub.expr)))
            else:
                subs.append(BaseTriplet(
                    rewrite(sub.lower) if sub.lower is not None else None,
                    rewrite(sub.upper) if sub.upper is not None else None,
                    rewrite(sub.stride) if sub.stride is not None else None,
                ))
        return AlignSpec(node.alignee, axes, node.base, subs)

    def _do_align(self, node: N.AlignNode, result: ProgramResult) -> None:
        spec = self._align_spec(node)
        if node.realign:
            if self.model == "template":
                raise TemplateError(
                    "REALIGN is not supported in the template baseline "
                    "scope of this library")
            self._register(self.builder.realign(spec), node.line)
        else:
            self.ds.align(spec)

    def _do_dynamic(self, node: N.DynamicNode,
                    result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "DYNAMIC is not supported in the template baseline scope "
                "of this library")
        self.ds.set_dynamic(*node.names)

    def _do_allocate(self, node: N.AllocateNode,
                     result: ProgramResult) -> None:
        for name, dims in node.allocations:
            bounds = self._bounds(dims, node.line)
            if self.model == "paper":
                self._register(self.builder.allocate(name, *bounds),
                               node.line)
            else:
                rank = self._deferred.get(name)
                if rank is not None and rank != len(bounds):
                    raise DirectiveError(
                        f"ALLOCATE({name}) rank mismatch", line=node.line)
                self.ds.declare(name, *bounds, runtime_shape=True)

    def _do_deallocate(self, node: N.DeallocateNode,
                       result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "DEALLOCATE of mapped arrays is not supported in the "
                "template baseline scope of this library")
        for name in node.names:
            self._register(self.builder.deallocate(name), node.line)

    def _do_read(self, node: N.ReadNode, result: ProgramResult) -> None:
        for name in node.names:
            if name not in self.inputs:
                raise DirectiveError(
                    f"READ {node.unit},{name}: no input value supplied "
                    f"for {name!r} (pass inputs={{...}})", line=node.line)
            self.ds.env[name] = int(self.inputs[name])

    def _do_parameter(self, node: N.ParameterNode,
                      result: ProgramResult) -> None:
        self.ds.env[node.name] = self._eval(node.value, node.line)

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def _section_subscripts(self, ref: N.RefNode, line: int):
        if ref.subscripts is None:
            return None
        try:
            # resolve against the *recorded* program state: a pending
            # ALLOCATE's instance bounds win over the live data space
            domain = self.builder.domain_of(ref.name)
        except DirectiveError as exc:
            raise DirectiveError(exc.message, line=line) from None
        subs = []
        for k, s in enumerate(ref.subscripts):
            dim = domain.dims[k]
            if s.kind == "expr":
                subs.append(self._eval(s.expr, line))
            elif s.kind == "colon":
                subs.append(Triplet(dim.lower, dim.last, 1))
            else:
                lo = self._eval(s.lower, line) if s.lower is not None \
                    else dim.lower
                hi = self._eval(s.upper, line) if s.upper is not None \
                    else dim.last
                st = self._eval(s.stride, line) if s.stride is not None \
                    else 1
                subs.append(Triplet(lo, hi, st))
        return tuple(subs)

    def _stmt_expr(self, node: N.ExprNode, line: int):
        if isinstance(node, N.NumNode):
            return ScalarLit(node.value)
        if isinstance(node, N.RefNode):
            return ArrayRef(node.name,
                            self._section_subscripts(node, line))
        if isinstance(node, N.BinNode):
            return BinExpr(node.op, self._stmt_expr(node.left, line),
                           self._stmt_expr(node.right, line))
        raise DirectiveError(f"bad expression node {node!r}", line=line)

    def _do_assign(self, node: N.AssignNode,
                   result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "executable statements run under the paper model; the "
                "template baseline is a mapping-only scope")
        lhs = ArrayRef(node.lhs.name,
                       self._section_subscripts(node.lhs, node.line))
        stmt = Assignment(lhs, self._stmt_expr(node.rhs, node.line))
        self._register(self.builder.assign(stmt), node.line)

    # ------------------------------------------------------------------
    # Counted loops (DO / END DO -> LoopNode)
    # ------------------------------------------------------------------
    def _do_do(self, node: N.DoNode, result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "DO loops run under the paper model; the template "
                "baseline is a mapping-only scope")
        start = self._eval(node.start, node.line)
        stop = self._eval(node.stop, node.line)
        step = self._eval(node.step, node.line) \
            if node.step is not None else 1
        if step == 0:
            raise DirectiveError("DO step must be non-zero",
                                 line=node.line)
        # the Fortran trip-count formula
        count = max((stop - start + step) // step, 0)
        self.builder.begin_loop(count)
        self._loop_vars.append(node.var)

    def _do_end_do(self, node: N.EndDoNode,
                   result: ProgramResult) -> None:
        if self.model == "template" or not self.builder.in_loop:
            raise DirectiveError("END DO without a matching DO",
                                 line=node.line)
        self._register(self.builder.end_loop(), node.line)
        self._loop_vars.pop()


def run_program(source: str, *, n_processors: int = 4,
                inputs: Mapping[str, Any] | None = None,
                model: str = "paper",
                machine: bool | MachineConfig = False,
                backend=None, opt_level: int = 0,
                opt_window: int | None = None,
                block_variant: BlockVariant = BlockVariant.HPF
                ) -> ProgramResult:
    """Parse, lower and execute a program text; see :class:`Analyzer`.

    The execution part (statements, ``DO``/``END DO`` loops, dynamic
    remaps, ALLOCATE/DEALLOCATE) lowers through the shared program IR
    (:mod:`repro.api.lower`), so text programs reach the same optimizer
    pipeline as Session programs.  ``backend`` selects the execution
    backend when a machine is attached — a
    :class:`~repro.machine.backend.Backend` spec such as
    ``Backend.simulate()`` (the ``None`` default) or
    ``Backend.spmd(workers=4, fused=True)``; bare kind strings still
    resolve with a :class:`DeprecationWarning`.  ``opt_level``
    enables the program-level communication optimizer (``0``/``1``/``2``
    — see :mod:`repro.engine.passes`); ``opt_window`` pins the ``-O2``
    fusion-window size (default: adaptive per lowered segment).
    """
    analyzer = Analyzer(n_processors, inputs=inputs, model=model,
                        machine=machine, backend=backend,
                        opt_level=opt_level, opt_window=opt_window,
                        block_variant=block_variant)
    return analyzer.run(source)


def lint_program(source: str, *, n_processors: int = 4,
                 inputs: Mapping[str, Any] | None = None,
                 opt_level: int = 0,
                 block_variant: BlockVariant = BlockVariant.HPF,
                 perf: bool = True):
    """Statically check a program text without executing it.

    Specification directives elaborate the scope (declarations and
    mappings are what the analyzer checks against); the execution part
    is lowered to IR and handed to :func:`repro.engine.analysis.analyze`
    with the directive line map, so findings carry source lines.
    Front-end failures (parse errors, invalid mappings) fold into the
    same vocabulary via
    :meth:`~repro.engine.diagnostics.Diagnostic.from_exception`.

    Returns ``(diagnostics, result)`` — ``result`` is the (unexecuted)
    :class:`ProgramResult`, or ``None`` when the front end failed.
    """
    from repro.engine.analysis import analyze
    from repro.engine.diagnostics import Diagnostic
    from repro.errors import ReproError

    analyzer = Analyzer(n_processors, inputs=inputs, model="paper",
                        opt_level=opt_level, block_variant=block_variant,
                        collect_only=True)
    try:
        result = analyzer.run(source)
    except ReproError as exc:
        return [Diagnostic.from_exception(exc)], None
    graph = result.graph
    if graph is None:
        from repro.engine.ir import ProgramGraph
        graph = ProgramGraph()
    diagnostics = analyze(analyzer.ds, graph, opt_level=opt_level,
                          lines=analyzer._node_lines, perf=perf)
    return diagnostics, result
