"""Semantic analysis and execution of parsed programs.

The analyzer walks the AST in source order and drives either the paper's
template-free model (:class:`~repro.core.dataspace.DataSpace`) or the
draft-HPF template baseline
(:class:`~repro.templates.model.TemplateDataSpace`).  Array assignments
run through the simulated executor when a machine is attached, so a
program text produces both its final data state and its communication
profile.

Deliberate asymmetries (they *are* the paper's point):

* ``TEMPLATE`` raises in the paper model — the language has no templates;
* ``REALIGN``/``REDISTRIBUTE``/``DYNAMIC``/``ALLOCATE``/``DEALLOCATE``
  raise in the template baseline where the §8.2 impossibilities bite
  (fixed template shapes, no dynamic remapping of template-aligned data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.align.ast import Dummy, Expr, Name, fold_constants
from repro.align.spec import (
    AlignSpec, AxisColon, AxisDummy, AxisStar,
    BaseExpr, BaseStar, BaseTriplet,
)
from repro.core.dataspace import DataSpace
from repro.directives import nodes as N
from repro.directives.parser import parse_program
from repro.distributions.base import Collapsed, DistributionFormat
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.executor import ExecutionReport, SimulatedExecutor
from repro.engine.expr import ArrayRef, BinExpr, ScalarLit
from repro.engine.reference import execute_sequential
from repro.errors import DirectiveError, TemplateError
from repro.fortran.triplet import Triplet
from repro.machine.backend import make_executor
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.processors.section import ProcessorSection
from repro.templates.model import TemplateDataSpace

__all__ = ["Analyzer", "ProgramResult", "run_program"]


@dataclass
class ProgramResult:
    """Everything a program run produced."""

    model: str
    ds: Any                         #: DataSpace or TemplateDataSpace
    nodes: list[N.Node]
    machine: DistributedMachine | None = None
    reports: list[ExecutionReport] = field(default_factory=list)
    #: (source line, forest snapshot) after each paper-model node
    snapshots: list[tuple[int, dict]] = field(default_factory=list)
    int_arrays: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def env(self) -> dict[str, int]:
        return self.ds.env


class Analyzer:
    """Executes parsed programs against a model."""

    def __init__(self, n_processors: int = 4, *,
                 inputs: Mapping[str, Any] | None = None,
                 model: str = "paper",
                 machine: bool | MachineConfig = False,
                 backend="simulate", opt_level: int = 0,
                 block_variant: BlockVariant = BlockVariant.HPF) -> None:
        if model not in ("paper", "template"):
            raise DirectiveError(f"unknown model {model!r}")
        self.model = model
        self.block_variant = block_variant
        if model == "paper":
            self.ds: Any = DataSpace(n_processors)
        else:
            self.ds = TemplateDataSpace(n_processors)
        self.machine: DistributedMachine | None = None
        self.executor: SimulatedExecutor | None = None
        self.backend = backend
        self.opt_level = int(opt_level)
        self.accountant = None
        if machine:
            config = machine if isinstance(machine, MachineConfig) \
                else MachineConfig(n_processors)
            self.machine = DistributedMachine(config)
            if model == "paper":
                self.executor = make_executor(self.ds, self.machine,
                                              backend)
                if self.opt_level > 0:
                    # the dynamic passes (halo validity, CSE, message
                    # coalescing) run over the statement stream; remap
                    # hoisting needs the loop structure of the IR and
                    # does not apply to flat directive programs
                    from repro.engine.passes import OptimizingAccountant
                    self.accountant = OptimizingAccountant(
                        self.ds, self.machine, self.opt_level)
                    self.executor.accountant = self.accountant
        self.inputs = {k.upper(): v for k, v in (inputs or {}).items()}
        self.int_arrays: dict[str, np.ndarray] = {}
        #: deferred allocatable declarations: name -> rank
        self._deferred: dict[str, int] = {}
        self._int_scalars: set[str] = set()
        # scalar inputs double as specification constants immediately
        for k, v in self.inputs.items():
            if isinstance(v, (int, np.integer)):
                self.ds.env[k] = int(v)

    # ------------------------------------------------------------------
    def run(self, source: str) -> ProgramResult:
        nodes = parse_program(source)
        result = ProgramResult(self.model, self.ds, nodes,
                               machine=self.machine,
                               int_arrays=self.int_arrays)
        try:
            for node in nodes:
                self._execute(node, result)
                if self.model == "paper":
                    result.snapshots.append(
                        (node.line, self.ds.forest_snapshot()))
        finally:
            # deposit any fusion window still buffered at program end
            if self.accountant is not None:
                self.accountant.flush()
            # SPMD executors hold a worker pool; release it with the run
            # (a later run() lazily restarts it)
            if hasattr(self.executor, "close"):
                self.executor.close()
        return result

    # ------------------------------------------------------------------
    def _execute(self, node: N.Node, result: ProgramResult) -> None:
        handler = {
            N.DeclNode: self._do_decl,
            N.ProcessorsNode: self._do_processors,
            N.TemplateNode: self._do_template,
            N.DistributeNode: self._do_distribute,
            N.AlignNode: self._do_align,
            N.DynamicNode: self._do_dynamic,
            N.AllocateNode: self._do_allocate,
            N.DeallocateNode: self._do_deallocate,
            N.ReadNode: self._do_read,
            N.ParameterNode: self._do_parameter,
            N.AssignNode: self._do_assign,
        }.get(type(node))
        if handler is None:
            raise DirectiveError(f"unhandled node {node!r}", line=node.line)
        handler(node, result)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, line: int) -> int:
        try:
            folded = fold_constants(expr, self.ds.env)
            return int(folded.evaluate(self.ds.env))
        except Exception as exc:
            raise DirectiveError(
                f"cannot evaluate {expr}: {exc}", line=line) from None

    def _bounds(self, dims: Sequence[N.DimDecl],
                line: int) -> list[tuple[int, int]]:
        out = []
        for d in dims:
            upper = self._eval(d.upper, line)
            lower = self._eval(d.lower, line) if d.lower is not None else 1
            out.append((lower, upper))
        return out

    # ------------------------------------------------------------------
    # Node handlers
    # ------------------------------------------------------------------
    def _do_decl(self, node: N.DeclNode, result: ProgramResult) -> None:
        is_int = node.type_name == "INTEGER"
        dtype = np.int64 if is_int else np.float64
        for name, dims in node.entities:
            eff_dims = dims if dims is not None else node.attr_dims
            if eff_dims is None:
                # scalar variable: INTEGER N etc.; value arrives via READ
                # or PARAMETER (or was passed as input)
                self._int_scalars.add(name)
                if name in self.inputs:
                    self.ds.env[name] = int(self.inputs[name])
                continue
            deferred = any(isinstance(d, N.DeferredDim) for d in eff_dims)
            if deferred or (node.allocatable and dims is None):
                if not node.allocatable:
                    raise DirectiveError(
                        f"{name}: deferred shape requires ALLOCATABLE",
                        line=node.line)
                self._deferred[name] = len(eff_dims)
                if self.model == "paper":
                    self.ds.declare(name, allocatable=True,
                                    rank=len(eff_dims), dtype=dtype)
                # template model: declared lazily at ALLOCATE
                continue
            bounds = self._bounds(eff_dims, node.line)
            if is_int:
                # integer arrays serve as directive data (GENERAL_BLOCK)
                lo, hi = bounds[0]
                values = self.inputs.get(name)
                arr = (np.asarray(values, dtype=np.int64)
                       if values is not None
                       else np.zeros(hi - lo + 1, dtype=np.int64))
                self.int_arrays[name] = arr
                continue
            if self.model == "paper":
                self.ds.declare(name, *bounds, dtype=dtype,
                                allocatable=node.allocatable)
            else:
                self.ds.declare(name, *bounds, dtype=dtype)

    def _do_processors(self, node: N.ProcessorsNode,
                       result: ProgramResult) -> None:
        for name, dims in node.entries:
            if dims is None:
                if not hasattr(self.ds, "scalar_processors"):
                    raise DirectiveError(
                        "scalar processor arrangements are only modelled "
                        "in the paper model", line=node.line)
                self.ds.scalar_processors(name)
            else:
                bounds = self._bounds(dims, node.line)
                self.ds.processors(name, *bounds)

    def _do_template(self, node: N.TemplateNode,
                     result: ProgramResult) -> None:
        if self.model == "paper":
            raise DirectiveError(
                f"TEMPLATE {node.name}: the template-free language of "
                "this paper has no TEMPLATE directive — use array-to-"
                "array ALIGN, direct DISTRIBUTE, or GENERAL_BLOCK "
                "(run with model='template' for the draft-HPF baseline)",
                line=node.line)
        bounds = self._bounds(node.dims, node.line)
        self.ds.template(node.name, *bounds)

    def _formats(self, specs: Sequence[N.FormatSpec],
                 line: int) -> list[DistributionFormat]:
        out: list[DistributionFormat] = []
        for f in specs:
            if f.kind == ":":
                out.append(Collapsed())
            elif f.kind == "BLOCK":
                size = self._eval(f.arg, line) if f.arg is not None else None
                out.append(Block(size=size, variant=self.block_variant))
            elif f.kind == "CYCLIC":
                k = self._eval(f.arg, line) if f.arg is not None else 1
                out.append(Cyclic(k))
            else:   # GENERAL_BLOCK / INDIRECT take an integer array
                arg = f.arg
                arr_name = arg if isinstance(arg, str) else (
                    arg.name if isinstance(arg, Name) else None)
                values = self.int_arrays.get(arr_name) \
                    if arr_name is not None else None
                if values is None:
                    raise DirectiveError(
                        f"{f.kind}({arg}): unknown integer array",
                        line=line)
                if f.kind == "GENERAL_BLOCK":
                    out.append(GeneralBlock([int(v) for v in values]))
                else:
                    # directive-level INDIRECT uses 1-based processor
                    # indices (Fortran convention); the library format
                    # is 0-based
                    from repro.distributions.indirect import Indirect
                    out.append(Indirect([int(v) - 1 for v in values]))
        return out

    def _target(self, ref: N.TargetRef | None,
                line: int) -> ProcessorSection | None:
        if ref is None:
            return None
        arrangement = self.ds.ap.arrangement(ref.name)
        if ref.subscripts is None:
            return ProcessorSection(arrangement)
        subs = []
        for s in ref.subscripts:
            if s.kind == "expr":
                subs.append(self._eval(s.expr, line))
            elif s.kind == "colon":
                d = arrangement.domain.dims[len(subs)]
                subs.append(Triplet(d.lower, d.last, 1))
            else:
                d = arrangement.domain.dims[len(subs)]
                lo = self._eval(s.lower, line) if s.lower is not None \
                    else d.lower
                hi = self._eval(s.upper, line) if s.upper is not None \
                    else d.last
                st = self._eval(s.stride, line) if s.stride is not None \
                    else 1
                subs.append(Triplet(lo, hi, st))
        return ProcessorSection(arrangement, tuple(subs))

    def _pre_layout_change(self) -> None:
        """Buffered exchanges belong to the pre-remap layout: flush the
        fusion window before any mapping mutation."""
        if self.accountant is not None:
            self.accountant.on_layout_change()

    def _do_distribute(self, node: N.DistributeNode,
                       result: ProgramResult) -> None:
        self._pre_layout_change()
        target = self._target(node.target, node.line)
        for spec in node.distributees:
            if spec.star:
                raise DirectiveError(
                    f"DISTRIBUTE {spec.name} *: dummy-argument "
                    "inheritance forms apply to procedure interfaces; "
                    "use repro.core.procedures.DummySpec", line=node.line)
            formats = self._formats(spec.formats, node.line)
            if node.redistribute:
                if self.model == "template":
                    raise TemplateError(
                        "REDISTRIBUTE is not supported in the template "
                        "baseline scope of this library")
                self.ds.redistribute(spec.name, formats, to=target)
            else:
                self.ds.distribute(spec.name, formats, to=target)

    def _align_spec(self, node: N.AlignNode) -> AlignSpec:
        axes = []
        dummy_names: set[str] = set()
        for ax in node.axes:
            if ax.kind == "colon":
                axes.append(AxisColon())
            elif ax.kind == "star":
                axes.append(AxisStar())
            else:
                axes.append(AxisDummy(ax.name))
                dummy_names.add(ax.name)

        def rewrite(expr: Expr) -> Expr:
            """Turn Names bound by alignee axes into align-dummies."""
            from repro.align.ast import BinOp, Call
            if isinstance(expr, Name) and expr.name in dummy_names:
                return Dummy(expr.name)
            if isinstance(expr, BinOp):
                return BinOp(expr.op, rewrite(expr.left),
                             rewrite(expr.right))
            if isinstance(expr, Call):
                return Call(expr.fn, [rewrite(a) for a in expr.args])
            return expr

        subs = []
        for sub in node.subscripts:
            if sub.kind == "star":
                subs.append(BaseStar())
            elif sub.kind == "expr":
                subs.append(BaseExpr(rewrite(sub.expr)))
            else:
                subs.append(BaseTriplet(
                    rewrite(sub.lower) if sub.lower is not None else None,
                    rewrite(sub.upper) if sub.upper is not None else None,
                    rewrite(sub.stride) if sub.stride is not None else None,
                ))
        return AlignSpec(node.alignee, axes, node.base, subs)

    def _do_align(self, node: N.AlignNode, result: ProgramResult) -> None:
        self._pre_layout_change()
        spec = self._align_spec(node)
        if node.realign:
            if self.model == "template":
                raise TemplateError(
                    "REALIGN is not supported in the template baseline "
                    "scope of this library")
            self.ds.realign(spec)
        else:
            self.ds.align(spec)

    def _do_dynamic(self, node: N.DynamicNode,
                    result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "DYNAMIC is not supported in the template baseline scope "
                "of this library")
        self.ds.set_dynamic(*node.names)

    def _do_allocate(self, node: N.AllocateNode,
                     result: ProgramResult) -> None:
        self._pre_layout_change()
        for name, dims in node.allocations:
            bounds = self._bounds(dims, node.line)
            if self.model == "paper":
                self.ds.allocate(name, *bounds)
                if self.accountant is not None:
                    self.accountant.note_write(name)
            else:
                rank = self._deferred.get(name)
                if rank is not None and rank != len(bounds):
                    raise DirectiveError(
                        f"ALLOCATE({name}) rank mismatch", line=node.line)
                self.ds.declare(name, *bounds, runtime_shape=True)

    def _do_deallocate(self, node: N.DeallocateNode,
                       result: ProgramResult) -> None:
        self._pre_layout_change()
        if self.model == "template":
            raise TemplateError(
                "DEALLOCATE of mapped arrays is not supported in the "
                "template baseline scope of this library")
        for name in node.names:
            self.ds.deallocate(name)

    def _do_read(self, node: N.ReadNode, result: ProgramResult) -> None:
        for name in node.names:
            if name not in self.inputs:
                raise DirectiveError(
                    f"READ {node.unit},{name}: no input value supplied "
                    f"for {name!r} (pass inputs={{...}})", line=node.line)
            self.ds.env[name] = int(self.inputs[name])

    def _do_parameter(self, node: N.ParameterNode,
                      result: ProgramResult) -> None:
        self.ds.env[node.name] = self._eval(node.value, node.line)

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def _section_subscripts(self, ref: N.RefNode, line: int):
        if ref.subscripts is None:
            return None
        arr = self.ds.arrays.get(ref.name)
        if arr is None:
            raise DirectiveError(f"unknown array {ref.name!r}", line=line)
        subs = []
        for k, s in enumerate(ref.subscripts):
            dim = arr.domain.dims[k]
            if s.kind == "expr":
                subs.append(self._eval(s.expr, line))
            elif s.kind == "colon":
                subs.append(Triplet(dim.lower, dim.last, 1))
            else:
                lo = self._eval(s.lower, line) if s.lower is not None \
                    else dim.lower
                hi = self._eval(s.upper, line) if s.upper is not None \
                    else dim.last
                st = self._eval(s.stride, line) if s.stride is not None \
                    else 1
                subs.append(Triplet(lo, hi, st))
        return tuple(subs)

    def _stmt_expr(self, node: N.ExprNode, line: int):
        if isinstance(node, N.NumNode):
            return ScalarLit(node.value)
        if isinstance(node, N.RefNode):
            return ArrayRef(node.name,
                            self._section_subscripts(node, line))
        if isinstance(node, N.BinNode):
            return BinExpr(node.op, self._stmt_expr(node.left, line),
                           self._stmt_expr(node.right, line))
        raise DirectiveError(f"bad expression node {node!r}", line=line)

    def _do_assign(self, node: N.AssignNode,
                   result: ProgramResult) -> None:
        if self.model == "template":
            raise TemplateError(
                "executable statements run under the paper model; the "
                "template baseline is a mapping-only scope")
        lhs = ArrayRef(node.lhs.name,
                       self._section_subscripts(node.lhs, node.line))
        stmt = Assignment(lhs, self._stmt_expr(node.rhs, node.line))
        if self.executor is not None:
            result.reports.append(self.executor.execute(stmt))
        else:
            execute_sequential(self.ds, stmt)


def run_program(source: str, *, n_processors: int = 4,
                inputs: Mapping[str, Any] | None = None,
                model: str = "paper",
                machine: bool | MachineConfig = False,
                backend="simulate", opt_level: int = 0,
                block_variant: BlockVariant = BlockVariant.HPF
                ) -> ProgramResult:
    """Parse and execute a program text; see :class:`Analyzer`.

    ``backend`` selects the execution backend when a machine is attached
    (``"simulate"`` or ``"spmd"``, or a
    :class:`~repro.machine.backend.BackendConfig`); ``opt_level``
    enables the program-level communication optimizer (``0``/``1``/``2``
    — see :mod:`repro.engine.passes`).
    """
    analyzer = Analyzer(n_processors, inputs=inputs, model=model,
                        machine=machine, backend=backend,
                        opt_level=opt_level, block_variant=block_variant)
    return analyzer.run(source)
