"""Directive front end (substrate S7).

A lexer/parser/analyzer for the concrete syntax the paper writes its
examples in: Fortran-style declarations, ``!HPF$`` directives
(PROCESSORS, TEMPLATE, DISTRIBUTE, REDISTRIBUTE, ALIGN, REALIGN,
DYNAMIC), ALLOCATE/DEALLOCATE statements, ``READ`` input binding and
array assignments.  Every code fragment in the paper parses verbatim;
the analyzer executes programs against either the paper's template-free
model (:class:`~repro.core.dataspace.DataSpace`) or the draft-HPF
template baseline (:class:`~repro.templates.model.TemplateDataSpace`),
optionally running assignments on the simulated machine.

Typical use::

    from repro.directives import run_program
    result = run_program('''
        REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
    !HPF$ PROCESSORS PR(4,4)
    !HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: U, V, P
        P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
    ''', n_processors=16, inputs={"N": 64}, machine=True)
    print(result.reports[-1].summary())
"""

from repro.directives.lexer import Lexer, Token, TokenKind
from repro.directives.parser import Parser, parse_program
from repro.directives import nodes
from repro.directives.analyzer import Analyzer, ProgramResult, run_program
from repro.directives.emit import emit_program, EmittedProgram

__all__ = [
    "Lexer", "Token", "TokenKind",
    "Parser", "parse_program",
    "nodes",
    "Analyzer", "ProgramResult", "run_program",
    "emit_program", "EmittedProgram",
]
