"""Distributed array handles: the data type of the lazy Session API.

A :class:`DistributedArray` is a named handle into a session's
:class:`~repro.core.dataspace.DataSpace`.  It carries the paper's
mapping directives as *fluent methods* — specification-part
``.distribute()`` / ``.align()`` apply immediately (they place data,
they move none), execution-part ``.redistribute()`` / ``.realign()`` /
``.allocate()`` / ``.deallocate()`` record IR nodes for the lazy
program — and NumPy-flavored indexing that **records** array
assignments instead of executing them::

    u[1:-1] = 0.25 * (u[:-2] + u[2:]) + f[1:-1]

Subscripts are zero-based positions into the array's index domain
(negative indices and open slices follow NumPy), lowered to the exact
Fortran subscript triplets of :mod:`repro.fortran.triplet` — so a
``U(0:N, 1:N)`` staggered-grid array slices the way a NumPy view of the
same shape would, whatever its declared bounds.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING

import numpy as np

from repro.align.ast import Const, Dummy, Expr as IndexExpr
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr, BaseStar
from repro.engine.expr import ArrayRef, Expr, ScalarLit
from repro.engine.assignment import Assignment
from repro.errors import DirectiveError
from repro.fortran.triplet import Triplet

if TYPE_CHECKING:
    from repro.api.session import Session

__all__ = ["DistributedArray"]


def _normalize_formats(formats: tuple) -> list:
    """Accept both ``.distribute(Block(), Block())`` and the list form
    ``.distribute([Block(), Block()])``."""
    if len(formats) == 1 and isinstance(formats[0], (list, tuple)):
        return list(formats[0])
    return list(formats)


class DistributedArray:
    """A handle to one array of a :class:`~repro.api.session.Session`."""

    def __init__(self, session: "Session", name: str) -> None:
        self._session = session
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> "Session":
        return self._session

    @property
    def _ds(self):
        return self._session.ds

    @property
    def domain(self):
        """The index domain at this point of the recorded program."""
        return self._session.builder.domain_of(self.name)

    @property
    def rank(self) -> int:
        return len(self.domain.dims)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    @property
    def data(self) -> np.ndarray:
        """The array's global storage (for initialisation and reading
        results).  Valid once the instance exists — run the pending
        program first if its ALLOCATE is still recorded."""
        arr = self._ds.arrays[self.name]
        if not arr.is_allocated:
            raise DirectiveError(
                f"array {self.name!r} is not allocated yet; its ALLOCATE "
                "is still recorded — call session.run() first")
        return arr.data

    def owners(self, index) -> frozenset[int]:
        return self._ds.owners(self.name, index)

    def distribution(self):
        return self._ds.distribution_of(self.name)

    def __repr__(self) -> str:
        arr = self._ds.arrays.get(self.name)
        shape = arr.domain.shape if arr is not None and arr.is_allocated \
            else "?"
        return f"DistributedArray({self.name!r}, shape={shape})"

    # ------------------------------------------------------------------
    # Specification-part directives (eager: they place, they never move)
    # ------------------------------------------------------------------
    def distribute(self, *formats, to=None) -> "DistributedArray":
        """``DISTRIBUTE name(formats) [TO to]`` — applies immediately."""
        self._ds.distribute(self.name, _normalize_formats(formats), to=to)
        return self

    def cost_profile(self, costs) -> "DistributedArray":
        """Declare per-index work weights along the first dimension.

        Advisory input for ``Session(opt="auto")`` and ``repro tune``:
        the autotune advisor balances these weights when pricing a
        GENERAL_BLOCK re-partition.  Numerics, schedules and charging
        never read the profile.
        """
        self._ds.set_cost_profile(self.name, costs)
        return self

    def align(self, base, mapping=None) -> "DistributedArray":
        """``ALIGN name(dummies) WITH base(mapping(dummies))``.

        ``mapping`` is a callable taking one align dummy per axis of
        this array and returning the base subscript expression(s)::

            b.align(a, lambda I: 2 * I)            # B(I) with A(2*I)
            w.align(grid, lambda I: (I, "*"))      # W(I) with GRID(I,*)

        Dummies support ``+ - *`` arithmetic; a returned ``"*"`` is a
        replicated base axis.  ``mapping=None`` is the identity.
        """
        self._ds.align(self._align_spec(base, mapping))
        return self

    # ------------------------------------------------------------------
    # Execution-part directives (lazy: recorded into the program IR)
    # ------------------------------------------------------------------
    def redistribute(self, *formats, to=None) -> "DistributedArray":
        """Record ``REDISTRIBUTE name(formats) [TO to]``."""
        self._session.builder.redistribute(
            self.name, _normalize_formats(formats), to=to)
        return self

    def realign(self, base, mapping=None) -> "DistributedArray":
        """Record ``REALIGN name(dummies) WITH base(...)``."""
        self._session.builder.realign(self._align_spec(base, mapping))
        return self

    def allocate(self, *bounds) -> "DistributedArray":
        """Record ``ALLOCATE(name(bounds))`` for an allocatable array."""
        norm = []
        for b in bounds:
            norm.append(tuple(int(x) for x in b)
                        if isinstance(b, (tuple, list)) else (1, int(b)))
        self._session.builder.allocate(self.name, *norm)
        return self

    def deallocate(self) -> "DistributedArray":
        """Record ``DEALLOCATE(name)``."""
        self._session.builder.deallocate(self.name)
        return self

    def _align_spec(self, base, mapping) -> AlignSpec:
        base_name = base.name if isinstance(base, DistributedArray) \
            else str(base)
        rank = self.rank
        if mapping is None:
            names = [f"I{k + 1}" for k in range(rank)]
            images: tuple = tuple(Dummy(n) for n in names)
        else:
            params = [p for p in
                      inspect.signature(mapping).parameters.values()
                      if p.default is inspect.Parameter.empty]
            if len(params) != rank:
                raise DirectiveError(
                    f"align mapping for {self.name!r} must take {rank} "
                    f"dummy argument(s), got {len(params)}")
            names = [p.name.upper() for p in params]
            images = mapping(*(Dummy(n) for n in names))
        if not isinstance(images, tuple):
            images = (images,)
        subs = []
        for image in images:
            if image == "*":
                subs.append(BaseStar())
            elif isinstance(image, IndexExpr):
                subs.append(BaseExpr(image))
            elif isinstance(image, (int, np.integer)):
                subs.append(BaseExpr(Const(int(image))))
            else:
                raise DirectiveError(
                    f"bad align image {image!r}: use dummy expressions, "
                    "integers or '*'")
        return AlignSpec(self.name, [AxisDummy(n) for n in names],
                         base_name, subs)

    # ------------------------------------------------------------------
    # NumPy-flavored indexing -> lazy statements
    # ------------------------------------------------------------------
    def _subscripts(self, key) -> tuple:
        if key is Ellipsis:
            key = ()
        if not isinstance(key, tuple):
            key = (key,)
        dims = self.domain.dims
        if len(key) > len(dims):
            raise DirectiveError(
                f"{self.name} has rank {len(dims)}; got {len(key)} "
                "subscripts")
        subs = []
        for k, dim in enumerate(dims):
            item = key[k] if k < len(key) else slice(None)
            extent = len(dim)
            if isinstance(item, slice):
                step = 1 if item.step is None else int(item.step)
                if step <= 0:
                    raise DirectiveError(
                        f"{self.name}: only positive slice steps are "
                        "supported in recorded statements")
                start, stop, step = item.indices(extent)
                if stop <= start:
                    raise DirectiveError(
                        f"{self.name}: empty section in dimension "
                        f"{k + 1}")
                last = start + ((stop - start - 1) // step) * step
                subs.append(Triplet(dim.lower + start, dim.lower + last,
                                    step))
            elif isinstance(item, (int, np.integer)):
                pos = int(item)
                if pos < 0:
                    pos += extent
                if not 0 <= pos < extent:
                    raise DirectiveError(
                        f"{self.name}: index {int(item)} out of range "
                        f"for extent {extent} in dimension {k + 1}")
                subs.append(dim.lower + pos)
            else:
                raise DirectiveError(
                    f"{self.name}: unsupported subscript {item!r}")
        return tuple(subs)

    def ref(self, *subscripts) -> ArrayRef:
        """An explicit reference; Fortran-style :class:`Triplet`/int
        subscripts, or none for the whole array."""
        return ArrayRef(self.name, subscripts or None)

    def __getitem__(self, key) -> ArrayRef:
        return ArrayRef(self.name, self._subscripts(key))

    def __setitem__(self, key, value) -> None:
        lhs = ArrayRef(self.name, self._subscripts(key))
        self._session.builder.assign(Assignment(lhs, _as_expr(value)))

    # arithmetic on the bare handle means "the whole array"
    def __add__(self, other):  return self.ref() + _as_expr(other)
    def __radd__(self, other): return _as_expr(other) + self.ref()
    def __sub__(self, other):  return self.ref() - _as_expr(other)
    def __rsub__(self, other): return _as_expr(other) - self.ref()
    def __mul__(self, other):  return self.ref() * _as_expr(other)
    def __rmul__(self, other): return _as_expr(other) * self.ref()
    def __truediv__(self, other):  return self.ref() / _as_expr(other)
    def __rtruediv__(self, other): return _as_expr(other) / self.ref()


def _as_expr(value) -> Expr:
    if isinstance(value, DistributedArray):
        return value.ref()
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return ScalarLit(float(value))
    raise DirectiveError(
        f"cannot use {value!r} in a recorded array statement")
