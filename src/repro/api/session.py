"""The Session: the single front door of the library.

A :class:`Session` owns one :class:`~repro.core.dataspace.DataSpace`
(the paper's scope of created arrays), a simulated distributed machine,
and a lazily recorded program.  Mapping *specification* is eager —
declaring, distributing and aligning arrays mutate the scope directly,
exactly as a specification part elaborates — while *execution* is lazy:
array statements, dynamic remaps and ``with session.loop(n):`` blocks
accumulate a :class:`~repro.engine.ir.ProgramGraph` that
:meth:`Session.run` lowers through the optimizing pass pipeline, the
backend resolver and the :class:`~repro.engine.executor.Accountant`
seam::

    from repro import Session, MachineConfig
    from repro.distributions import Block

    s = Session(16, opt=2)
    pr = s.processors("PR", 4, 4)
    u = s.array("U", 64, 64).distribute(Block(), Block(), to=pr)
    f = s.array("F", 64, 64).distribute(Block(), Block(), to=pr)
    with s.loop(10):
        u[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:]) + f[1:-1, 1:-1]
    result = s.run()
    print(result.reports[-1].summary(), result.savings)

Because every program reaches the same IR, every scenario gets schedule
caching, ``-O2`` halo reuse/CSE/coalescing/hoisting, and the choice of
execution backend (``simulate`` | ``spmd``) for free — nothing is
reserved for hand-wired benchmarks.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

import numpy as np

from repro.api.array import DistributedArray
from repro.api.lower import ProgramBuilder, run_graph
from repro.core.dataspace import DataSpace
from repro.engine.executor import ExecutionReport
from repro.engine.ir import ProgramGraph
from repro.errors import MachineError
from repro.machine.backend import resolve_backend
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine

__all__ = ["Session"]


class Session:
    """One program scope, lazily recorded, lowered through the IR.

    Parameters
    ----------
    n_processors:
        Width of the abstract processor set (ignored when ``ds`` is
        supplied).
    machine:
        ``True`` (default) builds a :class:`DistributedMachine` matching
        the processor count; a :class:`MachineConfig` customises it;
        ``False`` runs the recorded program under the sequential
        reference semantics only (no accounting).
    backend:
        A :class:`~repro.machine.backend.Backend` spec —
        ``Backend.simulate()`` (the default when ``None``) or
        ``Backend.spmd(workers=4, mode="fork", fused=True)``.  Bare
        kind strings (``"simulate"``/``"spmd"``) still resolve but emit
        a :class:`DeprecationWarning`.
    opt:
        Optimizer level ``0``/``1``/``2``
        (see :mod:`repro.engine.passes`), or ``"auto"`` to enable the
        self-adaptive feedback loop (:mod:`repro.autotune`): the
        ``-O2`` pass set is pruned per program and declared
        ``cost_profile`` imbalance may trigger a priced GENERAL_BLOCK
        redistribution at a loop-trip boundary — numerics stay
        bit-identical, every action lands on
        ``ProgramRunResult.adaptations``.
    opt_window:
        Fusion-window size for ``-O2`` message coalescing.  ``None``
        (default) sizes the window adaptively from the statement mix of
        each lowered program; an integer pins it.
    charge_remaps:
        Charge REDISTRIBUTE/REALIGN data motion to the machine (on by
        default; the directive front end disables it for historical
        accounting compatibility).
    ds:
        Adopt an existing data space instead of creating one (used by
        workload builders that wrap pre-built scopes).
    service:
        A :class:`~repro.serve.SessionService` to attach to.  ``run()``
        then goes through the service's request queue — the scope
        shares the service's plan store with every other tenant (warm
        cross-session schedules) while keeping its own machine and
        accountant.  Requires a machine.
    """

    def __init__(self, n_processors: int = 4, *,
                 machine: bool | MachineConfig = True,
                 backend=None, opt: int | str = 0,
                 opt_window: int | None = None,
                 charge_remaps: bool = True,
                 ds: DataSpace | None = None,
                 service=None,
                 n_workers: int | None = None,
                 mode: str | None = None) -> None:
        self.ds = ds if ds is not None else DataSpace(n_processors)
        self.backend = resolve_backend(backend)
        if n_workers is not None or mode is not None:
            # the pre-Backend loose kwargs; fold them into the spec
            import dataclasses
            import warnings
            warnings.warn(
                "Session(n_workers=..., mode=...) is deprecated; pass "
                "backend=Backend.spmd(workers=..., mode=...) instead",
                DeprecationWarning, stacklevel=2)
            updates = {}
            if n_workers is not None:
                updates["n_workers"] = int(n_workers)
            if mode is not None:
                updates["mode"] = mode
            self.backend = dataclasses.replace(self.backend, **updates)
        self.opt = "auto" if (isinstance(opt, str)
                              and opt.lower() == "auto") else int(opt)
        self.opt_window = opt_window
        self.charge_remaps = charge_remaps
        self.machine: DistributedMachine | None = None
        if machine:
            config = machine if isinstance(machine, MachineConfig) \
                else MachineConfig(self.ds.ap.size)
            if config.n_processors < self.ds.ap.size:
                raise MachineError(
                    f"machine has {config.n_processors} processors but "
                    f"the session's scope needs {self.ds.ap.size}")
            self.machine = DistributedMachine(config)
        self.service = service
        if service is not None and self.machine is None:
            raise MachineError(
                "Session(service=...) needs a machine; the service "
                "executes through the accounting pipeline")
        self.builder = ProgramBuilder(self.ds)
        self._runner = None
        #: every ExecutionReport produced across run() calls, in order
        self.reports: list[ExecutionReport] = []

    @property
    def auto(self) -> bool:
        """Whether this session runs the autotune feedback loop."""
        return self.opt == "auto"

    @property
    def opt_level(self) -> int:
        """The numeric opt level static analysis sees (auto ⇒ -O2)."""
        return 2 if self.auto else int(self.opt)

    # ------------------------------------------------------------------
    # Scope specification (eager)
    # ------------------------------------------------------------------
    def processors(self, name: str, *bounds, origin: int = 0):
        """Declare a processor arrangement (``PROCESSORS`` directive)."""
        return self.ds.processors(name, *bounds, origin=origin)

    def constant(self, name: str, value: int) -> None:
        """Define a specification constant (``PARAMETER``)."""
        self.ds.constant(name, value)

    def array(self, name: str, *bounds,
              dtype: np.dtype | type = np.float64,
              allocatable: bool = False, dynamic: bool = False,
              rank: int | None = None) -> DistributedArray:
        """Declare an array and return its handle.

        ``bounds`` entries are extents (``N`` means ``1:N``) or
        ``(lower, upper)`` pairs; pass none plus ``rank=`` for a
        deferred-shape allocatable.
        """
        self.ds.declare(name, *bounds, dtype=dtype,
                        allocatable=allocatable, dynamic=dynamic,
                        rank=rank)
        return DistributedArray(self, name)

    def arrays(self, *names, bounds, **kwargs) -> list[DistributedArray]:
        """Declare several same-shaped arrays at once."""
        return [self.array(n, *bounds, **kwargs) for n in names]

    def dynamic(self, *handles) -> None:
        """Mark arrays DYNAMIC (permits redistribute/realign)."""
        self.ds.set_dynamic(*(h.name if isinstance(h, DistributedArray)
                              else str(h) for h in handles))

    # ------------------------------------------------------------------
    # Program recording (lazy)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, count: int) -> Iterator[None]:
        """``with session.loop(n):`` — statements recorded inside the
        block form one :class:`~repro.engine.ir.LoopNode` body.  If the
        block raises, the half-recorded body is discarded (not sealed
        into the program)."""
        self.builder.begin_loop(count)
        try:
            yield
        except BaseException:
            self.builder.abort_loop()
            raise
        self.builder.end_loop()

    def record(self, *nodes) -> None:
        """Append ready-made :class:`~repro.engine.assignment.Assignment`
        statements or IR nodes (the escape hatch workload builders use)."""
        self.builder.record(*nodes)

    def lower(self) -> ProgramGraph:
        """The pending recorded program as IR, without executing it."""
        return self.builder.peek()

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def check(self, *, perf: bool = True):
        """Statically analyze the pending recorded program.

        Runs :func:`repro.engine.analysis.analyze` over :meth:`lower`'s
        IR against this session's scope — nothing executes and nothing
        is consumed; a following :meth:`run` still sees the full
        program.  Findings carry statement indices (the Session front
        end has no source lines).  ``perf=False`` skips the lints that
        compile communication schedules.
        """
        from repro.engine.analysis import analyze
        return analyze(self.ds, self.lower(), opt_level=self.opt_level,
                       perf=perf)

    def tune(self):
        """Report-only autotuning of the pending recorded program.

        Runs the same advisor an ``opt="auto"`` execution consults —
        :func:`repro.autotune.tune_graph` over :meth:`lower`'s IR —
        and returns its :class:`~repro.autotune.TuneReport` (layout
        proposals with modeled gain vs. exact remap cost, plus the
        per-program pass selection and rationale).  Nothing executes
        and nothing is consumed.  Requires a machine (the α-β model
        prices the proposals).
        """
        if self.machine is None:
            raise MachineError(
                "Session.tune() needs a machine; the advisor prices "
                "proposals with the machine's cost model")
        from repro.autotune import tune_graph
        return tune_graph(self.ds, self.lower(),
                          config=self.machine.config)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self):
        """Lower and execute everything recorded since the last run.

        Returns the :class:`~repro.engine.passes.ProgramRunResult`
        (per-statement :class:`ExecutionReport` list, the fused program
        schedule, machine state and per-pass savings) when a machine is
        attached; ``None`` otherwise.  The session's scope — data,
        layouts, schedule caches, resident-exchange tables — persists
        across runs, so recording more work and running again stays hot.
        """
        graph = self.builder.take()
        if os.environ.get("REPRO_LINT", "0") not in ("", "0"):
            # lint-before-run mode (the `repro lint` CLI drives Python
            # programs this way): collect findings, refuse to execute a
            # program with error-severity ones
            from repro.engine.analysis import analyze
            from repro.engine.diagnostics import (
                LINT_LOG, DiagnosticError, has_errors,
            )
            raw = os.environ.get("REPRO_LINT_OPT", "")
            opt = self.opt_level if raw in ("", "auto") else int(raw)
            diagnostics = analyze(self.ds, graph, opt_level=opt)
            LINT_LOG.extend(diagnostics)
            if has_errors(diagnostics):
                raise DiagnosticError(diagnostics)
        if os.environ.get("REPRO_TUNE", "0") not in ("", "0"):
            # tune-instead-of-run mode (the `repro tune` CLI drives
            # Python programs this way): consult the advisor, record
            # the report, execute nothing
            from repro.autotune import TUNE_LOG, tune_graph
            config = self.machine.config if self.machine is not None \
                else MachineConfig(self.ds.ap.size)
            TUNE_LOG.append(tune_graph(self.ds, graph, config=config))
            return None
        if self.machine is None:
            return run_graph(self.ds, graph)
        if self.service is not None:
            result = self.service.run(self, graph)
        else:
            if self._runner is None:
                self._runner = self._make_runner()
            result = run_graph(self.ds, graph, runner=self._runner)
        self.reports.extend(result.reports)
        return result

    def _make_runner(self):
        """The pipeline runner for this session's backend/opt config
        (also built on our behalf by an attached SessionService)."""
        from repro.engine.passes import ProgramRunner
        return ProgramRunner(
            self.ds, self.machine, backend=self.backend,
            opt_level=self.opt, charge_remaps=self.charge_remaps,
            opt_window=self.opt_window)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (the SPMD worker pool; with a
        service, the service-managed runner)."""
        if self.service is not None:
            self.service.release(self)
        if self._runner is not None:
            self._runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        pending = len(self.builder)
        opt = "auto" if self.auto else f"-O{self.opt}"
        lines = [self.ds.describe(),
                 f"backend={self.backend.kind} opt={opt} "
                 f"pending_nodes={pending}"]
        return "\n".join(lines)

    @property
    def stats(self):
        """The machine's communication counters (None without one)."""
        return self.machine.stats if self.machine is not None else None
