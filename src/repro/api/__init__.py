"""The public, lazy Session/DistributedArray API — the library's single
front door.

Quick start::

    from repro import Session
    from repro.distributions import Block

    s = Session(8, opt=2)
    a = s.array("A", 64).distribute(Block(), to=s.processors("PR", 8))
    b = s.array("B", 32).align(a, lambda I: 2 * I)
    b[:] = a[1::2] + 1.0
    result = s.run()

Every program recorded here (and every directive-language program —
:func:`repro.directives.analyzer.run_program` is the second front end
over the same spine) lowers through :mod:`repro.api.lower` into the
program IR of :mod:`repro.engine.ir`, then through the optimizing pass
pipeline and the chosen execution backend.
"""

from repro.api.array import DistributedArray
from repro.api.lower import ProgramBuilder, run_graph
from repro.api.session import Session

__all__ = ["DistributedArray", "ProgramBuilder", "Session", "run_graph"]
