"""The shared lowering spine: every front end builds one IR here.

Both public front doors — the lazy Python :class:`~repro.api.session.Session`
API and the directive-language analyzer
(:mod:`repro.directives.analyzer`) — record the *execution part* of a
user program through one :class:`ProgramBuilder`, producing the same
:class:`~repro.engine.ir.ProgramGraph` the optimizing pass pipeline
(:mod:`repro.engine.passes`) consumes.  The builder owns the pieces both
front ends need and neither should reimplement:

* the **loop stack** — ``begin_loop``/``end_loop`` nest
  :class:`~repro.engine.ir.LoopNode` bodies (``with session.loop(n):``
  and ``DO k = 1, N`` are the same operation);
* **shadow domains** — an ALLOCATE recorded into the graph has not run
  yet, but later recorded statements must still resolve their section
  bounds against the instance it *will* create; the builder tracks the
  would-be domain of every deferred allocation;
* the build/execute split itself — ``take()`` hands a completed graph
  to a runner and resets, so front ends can lower incrementally
  (the analyzer flushes whenever a specification directive interrupts
  the execution part; a session flushes at ``run()``).

Execution goes through :func:`run_graph`: with a machine attached it is
the :class:`~repro.engine.passes.ProgramRunner` (pass pipeline, backend
resolver, :class:`~repro.engine.executor.Accountant` seam); without one
it interprets the graph under the sequential reference semantics.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.align.spec import AlignSpec
from repro.core.dataspace import DataSpace
from repro.engine.assignment import Assignment
from repro.engine.ir import (
    AllocateNode,
    DeallocateNode,
    LoopNode,
    Node,
    ProgramGraph,
    RealignNode,
    RedistributeNode,
    StatementNode,
)
from repro.engine.reference import execute_sequential
from repro.errors import DirectiveError
from repro.fortran.domain import IndexDomain

__all__ = ["ProgramBuilder", "run_graph"]

#: callback signature front ends use to trace execution: (node, trip)
OnNode = Callable[[Node, int], None]


class ProgramBuilder:
    """Accumulates the execution part of a program as IR.

    The builder never mutates the data space: recording is free, and the
    recorded graph is plain data until a runner executes it.
    """

    def __init__(self, ds: DataSpace) -> None:
        self.ds = ds
        #: stack of open node lists; [0] is the program top level,
        #: deeper entries are unterminated loop bodies
        self._frames: list[list[Node]] = [[]]
        #: loop trip counts matching the open frames above level 0
        self._counts: list[int] = []
        #: name -> would-be IndexDomain after the recorded (de)allocation
        #: (``None`` marks a recorded DEALLOCATE)
        self._shadow: dict[str, IndexDomain | None] = {}

    # -- recording -----------------------------------------------------
    def _append(self, node: Node) -> Node:
        self._frames[-1].append(node)
        return node

    def assign(self, stmt: Assignment) -> StatementNode:
        return self._append(StatementNode(stmt))

    def record(self, *nodes) -> None:
        """Append ready-made statements or IR nodes in order."""
        for node in nodes:
            if isinstance(node, Assignment):
                node = StatementNode(node)
            self._append(node)

    def redistribute(self, array: str, formats: Iterable,
                     to=None) -> RedistributeNode:
        return self._append(RedistributeNode(array, tuple(formats), to))

    def realign(self, spec: AlignSpec) -> RealignNode:
        return self._append(RealignNode(spec))

    def allocate(self, array: str, *bounds) -> AllocateNode:
        node = self._append(AllocateNode(array, tuple(bounds)))
        self._shadow[array] = DataSpace._domain_from_bounds(bounds)
        return node

    def deallocate(self, array: str) -> DeallocateNode:
        node = self._append(DeallocateNode(array))
        self._shadow[array] = None
        return node

    # -- loops ---------------------------------------------------------
    def begin_loop(self, count: int) -> None:
        if count < 0:
            raise DirectiveError(f"loop count must be >= 0, got {count}",
                                 code="RPR101")
        self._frames.append([])
        self._counts.append(int(count))

    def end_loop(self) -> LoopNode:
        if not self._counts:
            raise DirectiveError("END DO / loop exit without an open loop",
                                 code="RPR101")
        body = self._frames.pop()
        node = LoopNode(self._counts.pop(), tuple(body))
        return self._append(node)

    def abort_loop(self) -> None:
        """Discard the innermost open loop and everything recorded in
        it (the recording failed mid-body; sealing a half-recorded loop
        into the program would execute phantom statements)."""
        if not self._counts:
            return
        self._frames.pop()
        self._counts.pop()

    @property
    def in_loop(self) -> bool:
        return bool(self._counts)

    @property
    def loop_depth(self) -> int:
        return len(self._counts)

    # -- domain resolution against the recorded-but-unexecuted state ---
    def domain_of(self, name: str) -> IndexDomain:
        """The index domain ``name`` will have at this point of the
        recorded program: a pending ALLOCATE's bounds win over the data
        space's current instance."""
        if name in self._shadow:
            dom = self._shadow[name]
            if dom is None:
                raise DirectiveError(
                    f"array {name!r} is deallocated at this point of "
                    "the recorded program", code="RPR003")
            return dom
        arr = self.ds.arrays.get(name)
        if arr is None:
            raise DirectiveError(f"unknown array {name!r}", code="RPR001")
        if not arr.is_allocated:
            raise DirectiveError(
                f"array {name!r} has no shape here: allocate it (or "
                "record its ALLOCATE) before referencing it", code="RPR004")
        return arr.domain

    # -- handing off ---------------------------------------------------
    def __len__(self) -> int:
        return sum(len(f) for f in self._frames)

    def peek(self) -> ProgramGraph:
        """The pending program as a graph, without resetting (loops
        still open are not included)."""
        return ProgramGraph(list(self._frames[0]))

    def take(self) -> ProgramGraph:
        """Detach the pending program as a graph and reset the builder.
        Raises if a loop is still open."""
        if self.in_loop:
            raise DirectiveError(
                f"{self.loop_depth} loop(s) still open: close every "
                "session.loop() block / END DO before running",
                code="RPR101")
        graph = ProgramGraph(self._frames[0])
        self._frames = [[]]
        self._shadow = {}
        return graph


def run_graph(ds: DataSpace, graph: ProgramGraph, *, runner=None,
              on_node: OnNode | None = None):
    """Execute ``graph`` against ``ds``.

    With ``runner`` (a :class:`~repro.engine.passes.ProgramRunner`) the
    graph goes through the full pipeline — pass selection, backend,
    accountant — and the :class:`~repro.engine.passes.ProgramRunResult`
    is returned.  Without one, the graph is interpreted under the
    sequential reference semantics (the ``machine=False`` path) and
    ``None`` is returned.
    """
    if runner is not None:
        return runner.run(graph, on_node=on_node)
    for node, trip, _ in graph.walk():
        if isinstance(node, StatementNode):
            node.stmt.validate(ds)
            execute_sequential(ds, node.stmt)
        elif isinstance(node, RedistributeNode):
            ds.redistribute(node.array, node.formats, to=node.to)
        elif isinstance(node, RealignNode):
            ds.realign(node.spec)
        elif isinstance(node, AllocateNode):
            ds.allocate(node.array, *node.bounds)
        elif isinstance(node, DeallocateNode):
            ds.deallocate(node.array)
        if on_node is not None:
            on_node(node, trip)
    return None
