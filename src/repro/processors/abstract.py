"""The implicit abstract processor arrangement AP (§3).

Each implementation of the language determines uniquely an implicit abstract
processor arrangement **AP**, which specifies a linear numbering scheme for
the physical processors.  Every declared arrangement is mapped to AP the way
Fortran EQUIVALENCE defines storage association, with abstract processors
playing the role of the storage units: element ``(i1, ..., ik)`` of an
arrangement occupies AP unit ``origin + column_major_offset(i1, ..., ik)``.

Two arrangements whose unit ranges overlap *share* abstract processors, and
"the sharing of an abstract processor implies the sharing of the associated
physical processor" — :meth:`AbstractProcessors.shared_units` exposes this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.errors import MappingError
from repro.fortran.storage import StorageAssociation
from repro.processors.arrangement import (
    ProcessorArrangement,
    ScalarArrangement,
    ScalarPolicy,
)

__all__ = ["AbstractProcessors"]

Arrangement = Union[ProcessorArrangement, ScalarArrangement]


@dataclass
class AbstractProcessors:
    """The implicit abstract processor arrangement of a program execution.

    Parameters
    ----------
    size:
        Number of abstract processors, i.e. the length of the linear
        numbering of physical processors (units ``0 .. size-1``).
    """

    size: int
    _associations: dict[str, StorageAssociation] = field(
        default_factory=dict, repr=False)
    _arrangements: dict[str, Arrangement] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MappingError(f"AP must have at least one processor, "
                               f"got size {self.size}")

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def declare(self, arrangement: Arrangement, *, origin: int = 0
                ) -> Arrangement:
        """Declare an arrangement and sequence-associate it onto AP.

        ``origin`` is the AP unit at which the arrangement's element
        ``(L1, ..., Lk)`` is placed; by default all arrangements are
        associated at the start of AP (so same-shape arrangements name the
        same processors, the natural EQUIVALENCE reading of §3).
        """
        name = arrangement.name
        if name in self._arrangements:
            raise MappingError(f"processor arrangement {name!r} already "
                               "declared")
        extent = arrangement.size
        if origin < 0 or origin + extent > self.size:
            raise MappingError(
                f"arrangement {name!r} of {extent} processors at origin "
                f"{origin} does not fit in AP of size {self.size}")
        self._arrangements[name] = arrangement
        self._associations[name] = StorageAssociation(
            arrangement.domain, origin)
        return arrangement

    def view(self, base: Arrangement | str, name: str,
             *extents: int) -> "ProcessorArrangement":
        """Declare a reshaped *view* of an existing arrangement (§9:
        Vienna Fortran's processor reshaping / the HPF VIEW attribute).

        The view is sequence-associated at the same AP origin as its
        base, so ``view(i1,...,ik)`` and the base element with the same
        column-major rank denote the *same* abstract (hence physical)
        processor.  The total size must match the base's.
        """
        from repro.fortran.domain import IndexDomain
        base_arr = self.arrangement(base) if isinstance(base, str) else base
        assoc = self._associations.get(base_arr.name)
        if assoc is None:
            raise MappingError(
                f"view base {base_arr.name!r} is not declared on this AP")
        size = 1
        for e in extents:
            size *= e
        if size != base_arr.size:
            raise MappingError(
                f"view {name!r} with shape {extents} has {size} "
                f"processors; base {base_arr.name!r} has {base_arr.size}")
        view_arr = ProcessorArrangement(
            name, IndexDomain.standard(*extents))
        return self.declare(view_arr, origin=assoc.origin)

    def arrangement(self, name: str) -> Arrangement:
        try:
            return self._arrangements[name]
        except KeyError:
            raise MappingError(
                f"unknown processor arrangement {name!r}") from None

    @property
    def arrangements(self) -> tuple[Arrangement, ...]:
        return tuple(self._arrangements.values())

    # ------------------------------------------------------------------
    # AP numbering
    # ------------------------------------------------------------------
    def ap_unit(self, arrangement: Arrangement,
                index: Sequence[int] = ()) -> int:
        """AP unit of ``arrangement(index)`` (0-based linear number)."""
        if isinstance(arrangement, ScalarArrangement):
            assoc = self._associations.get(arrangement.name)
            origin = assoc.origin if assoc is not None else 0
            if arrangement.policy is ScalarPolicy.CONTROL:
                return 0
            if arrangement.policy is ScalarPolicy.ARBITRARY:
                # deterministic "arbitrary" choice: the association origin
                return origin
            raise MappingError(
                f"scalar arrangement {arrangement.name!r} is replicated; "
                "it has no single AP unit — use ap_units()")
        assoc = self._associations.get(arrangement.name)
        if assoc is None:
            raise MappingError(
                f"arrangement {arrangement.name!r} was not declared on "
                "this AP")
        return assoc.unit_of(index)

    def ap_units(self, arrangement: Arrangement,
                 index: Sequence[int] = ()) -> tuple[int, ...]:
        """All AP units holding ``arrangement(index)`` (handles replication
        of scalar arrangements)."""
        if (isinstance(arrangement, ScalarArrangement)
                and arrangement.policy is ScalarPolicy.REPLICATED):
            return tuple(range(self.size))
        return (self.ap_unit(arrangement, index),)

    def index_of_unit(self, arrangement: Arrangement,
                      unit: int) -> tuple[int, ...]:
        """Arrangement index occupying AP ``unit`` (inverse of
        :meth:`ap_unit` for array arrangements)."""
        if isinstance(arrangement, ScalarArrangement):
            return ()
        assoc = self._associations[arrangement.name]
        return assoc.index_of_unit(unit)

    # ------------------------------------------------------------------
    # Sharing (§3 sharing rule)
    # ------------------------------------------------------------------
    def shared_units(self, a: Arrangement, b: Arrangement) -> range:
        """AP units shared by two declared array arrangements."""
        sa = self._associations[a.name]
        sb = self._associations[b.name]
        return sa.shared_units(sb)

    def share_processors(self, a: Arrangement, b: Arrangement) -> bool:
        return len(self.shared_units(a, b)) > 0
