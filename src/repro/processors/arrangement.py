"""Processor arrangements (§3).

A ``PROCESSORS`` directive declares one or more arrangements.  A *processor
array arrangement* has a name and a non-empty index domain; a *conceptually
scalar* arrangement has only a name.  Data distributed to a scalar
arrangement may — depending on the target architecture — reside on a single
control processor, on an arbitrarily chosen processor, or be replicated over
all processors; the paper leaves the choice to the implementation, so it is
a policy enum here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.fortran.domain import IndexDomain

__all__ = ["ProcessorArrangement", "ScalarArrangement", "ScalarPolicy"]


class ScalarPolicy(enum.Enum):
    """§3: where data distributed to a scalar arrangement resides."""

    CONTROL = "control"          #: a single control processor (AP unit 0)
    ARBITRARY = "arbitrary"      #: an arbitrarily chosen (but fixed) processor
    REPLICATED = "replicated"    #: replicated over all processors


@dataclass(frozen=True)
class ProcessorArrangement:
    """A named processor array arrangement with a non-empty index domain.

    The index domain must appear in the specification part of a program
    unit and is standard (stride-1) by construction here.
    """

    name: str
    domain: IndexDomain

    def __post_init__(self) -> None:
        if self.domain.rank == 0:
            raise MappingError(
                f"processor array arrangement {self.name!r} must have a "
                "non-empty index domain; use ScalarArrangement for "
                "conceptually scalar arrangements")
        if self.domain.is_empty:
            raise MappingError(
                f"processor arrangement {self.name!r} has an empty index "
                f"domain {self.domain}")
        if not self.domain.is_standard:
            raise MappingError(
                f"processor arrangement {self.name!r} must have a standard "
                f"(stride-1) index domain, got {self.domain}")

    @property
    def rank(self) -> int:
        return self.domain.rank

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    @property
    def size(self) -> int:
        """Number of abstract processors in the arrangement."""
        return self.domain.size

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.domain.dims)
        return f"PROCESSORS {self.name}({dims})"


@dataclass(frozen=True)
class ScalarArrangement:
    """A conceptually scalar processor arrangement (§3).

    The language does not specify a relationship between different scalar
    arrangements; each carries its own placement policy.
    """

    name: str
    policy: ScalarPolicy = field(default=ScalarPolicy.CONTROL)

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    @property
    def domain(self) -> IndexDomain:
        return IndexDomain.scalar()

    def __str__(self) -> str:
        return f"PROCESSORS {self.name}  ! scalar, {self.policy.value}"
