"""Distribution targets: processor arrangements and sections thereof (§4).

The TO-clause of a DISTRIBUTE directive names a *distribution target*: a
processor array arrangement or a section of one (``TO Q(1:NOP:2)``).  A
target exposes a standard index domain ``I^R`` (what the distribution
functions of §4.1 map into) together with the translation from target
indices to arrangement indices and AP units.

:class:`ProcessorSection` supports scalar subscripts and triplets exactly
like array sections; a full arrangement is the degenerate all-``:`` section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import MappingError
from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection, full_section
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement, ScalarArrangement

__all__ = ["ProcessorSection", "DistributionTarget"]


@dataclass(frozen=True)
class ProcessorSection:
    """A section of a processor array arrangement, usable as a TO-target."""

    arrangement: ProcessorArrangement
    section: ArraySection

    def __init__(self, arrangement: ProcessorArrangement,
                 subscripts: Sequence[Union[int, Triplet]] | None = None
                 ) -> None:
        if subscripts is None:
            sec = full_section(arrangement.domain)
        else:
            sec = ArraySection(arrangement.domain, subscripts)
        if sec.is_empty:
            raise MappingError(
                f"processor section of {arrangement.name} is empty")
        object.__setattr__(self, "arrangement", arrangement)
        object.__setattr__(self, "section", sec)

    # -- DistributionTarget protocol ------------------------------------
    @property
    def name(self) -> str:
        return self.arrangement.name

    @property
    def rank(self) -> int:
        return self.section.rank

    @property
    def shape(self) -> tuple[int, ...]:
        return self.section.shape

    @property
    def size(self) -> int:
        return self.section.size

    def domain(self) -> IndexDomain:
        """Standard index domain ``I^R`` of the target."""
        return self.section.domain()

    def arrangement_index(self, index: Sequence[int]) -> tuple[int, ...]:
        """Translate a target index (in ``I^R``) to an arrangement index."""
        return self.section.to_parent(index)

    def ap_unit(self, ap: AbstractProcessors, index: Sequence[int]) -> int:
        """AP unit owning target element ``index``."""
        return ap.ap_unit(self.arrangement, self.arrangement_index(index))

    def ap_units_all(self, ap: AbstractProcessors) -> list[int]:
        """AP units of every processor in the target, in ``I^R`` order."""
        return [self.ap_unit(ap, idx) for idx in self.domain()]

    def __str__(self) -> str:
        subs = ", ".join(str(s) for s in self.section.subscripts)
        return f"{self.arrangement.name}({subs})"


class DistributionTarget:
    """Factory helpers for distribution targets."""

    @staticmethod
    def whole(arrangement: ProcessorArrangement) -> ProcessorSection:
        """The whole arrangement as a target (implicit TO-clause)."""
        return ProcessorSection(arrangement)

    @staticmethod
    def of(arrangement: ProcessorArrangement,
           *subscripts: Union[int, Triplet]) -> ProcessorSection:
        """An explicit section target, e.g. ``Q(1:NOP:2)``."""
        return ProcessorSection(arrangement, subscripts)

    @staticmethod
    def scalar(arrangement: ScalarArrangement,
               ap: AbstractProcessors) -> tuple[int, ...]:
        """AP units associated with a scalar arrangement target (§3)."""
        return ap.ap_units(arrangement)
