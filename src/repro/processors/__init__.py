"""Processor model (substrate S2, §3 of the paper).

The PROCESSORS directive declares *processor arrangements* — either processor
array arrangements (with a non-empty index domain) or conceptually scalar
arrangements.  Each implementation determines an implicit **abstract
processor arrangement** (AP), a linear numbering of the physical processors;
every declared arrangement is mapped onto AP by Fortran storage association
(column-major sequence association, with abstract processors playing the
role of storage units).  Sharing an abstract processor implies sharing the
associated physical processor.

Arrays may be distributed to whole arrangements or to *sections* of them
(``DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)``) — one of the paper's
generalizations over draft HPF.
"""

from repro.processors.arrangement import (
    ProcessorArrangement,
    ScalarArrangement,
    ScalarPolicy,
)
from repro.processors.abstract import AbstractProcessors
from repro.processors.section import ProcessorSection, DistributionTarget
from repro.processors.topology import (
    Topology,
    FullyConnected,
    Line,
    Mesh2D,
    Hypercube,
)

__all__ = [
    "ProcessorArrangement",
    "ScalarArrangement",
    "ScalarPolicy",
    "AbstractProcessors",
    "ProcessorSection",
    "DistributionTarget",
    "Topology",
    "FullyConnected",
    "Line",
    "Mesh2D",
    "Hypercube",
]
