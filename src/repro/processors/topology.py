"""Physical interconnect topologies for the machine cost model (S8).

The paper's performance arguments ("an operation on two or more data objects
is likely to be carried out much faster if they all reside in the same
processor") are locality arguments; the simulator prices a message between
physical processors as ``alpha + beta * words`` optionally scaled by the hop
distance of the interconnect.  The topologies of the paper's era are
provided: a fully connected ideal, a processor line, a 2-D mesh (Paragon)
and a hypercube (iPSC/860).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Topology", "FullyConnected", "Line", "Mesh2D", "Hypercube"]


@dataclass(frozen=True)
class Topology:
    """Base class: ``n`` processors, unit hop distance between distinct
    processors (i.e. a crossbar / fully connected ideal)."""

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"topology needs at least 1 processor, got {self.n}")

    def hops(self, a: int, b: int) -> int:
        """Hop distance between processors ``a`` and ``b`` (0 if equal)."""
        self._check(a)
        self._check(b)
        return 0 if a == b else 1

    def diameter(self) -> int:
        return max(self.hops(0, p) for p in range(self.n)) if self.n > 1 else 0

    def _check(self, p: int) -> None:
        if not 0 <= p < self.n:
            raise ValueError(f"processor {p} outside topology of size {self.n}")


class FullyConnected(Topology):
    """Every pair of distinct processors is one hop apart."""


@dataclass(frozen=True)
class Line(Topology):
    """Processors on a line; hop distance is |a - b|."""

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return abs(a - b)


@dataclass(frozen=True)
class Mesh2D(Topology):
    """A ``rows x cols`` 2-D mesh with X-Y (Manhattan) routing.

    Processor ``p`` sits at ``(p % cols, p // cols)`` — column-major in the
    same spirit as the AP numbering.
    """

    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        rows, cols = self.rows, self.cols
        if rows == 0 and cols == 0:
            # choose the most square factorization of n
            side = int(math.isqrt(self.n))
            while self.n % side != 0:
                side -= 1
            object.__setattr__(self, "rows", side)
            object.__setattr__(self, "cols", self.n // side)
        if self.rows * self.cols != self.n:
            raise ValueError(
                f"mesh {self.rows}x{self.cols} does not have {self.n} "
                "processors")

    def coords(self, p: int) -> tuple[int, int]:
        self._check(p)
        return p % self.cols, p // self.cols

    def hops(self, a: int, b: int) -> int:
        xa, ya = self.coords(a)
        xb, yb = self.coords(b)
        return abs(xa - xb) + abs(ya - yb)


@dataclass(frozen=True)
class Hypercube(Topology):
    """A d-dimensional hypercube (n must be a power of two); hop distance
    is the Hamming distance of the processor numbers."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n & (self.n - 1):
            raise ValueError(f"hypercube size must be a power of 2, got {self.n}")

    @property
    def dimension(self) -> int:
        return self.n.bit_length() - 1

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return (a ^ b).bit_count()
