"""The experiment registry: E1-E12, one per paper artifact.

Each entry maps an experiment id to ``(title, runner)``; runners take only
keyword parameters with sensible defaults and return an
:class:`~repro.bench.harness.ExperimentResult`.  ``python -m repro`` and
the ``benchmarks/`` suite are thin wrappers over this table.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.experiments_basic import (
    e01_distribution_formats,
    e02_block_definitions,
    e03_general_block,
    e04_cyclic,
    e05_alignment,
    e06_allocatable,
)
from repro.bench.experiments_adv import (
    e07_procedures,
    e08_staggered_grid,
    e09_section_args,
    e10_allocatable_templates,
    e11_forest_height,
    e12_equivalence,
)
from repro.bench.harness import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "E1": ("§4 distribution-format examples", e01_distribution_formats),
    "E2": ("BLOCK definitions: HPF vs Vienna (§8 footnote)",
           e02_block_definitions),
    "E3": ("GENERAL_BLOCK load balancing (§4.1.2)", e03_general_block),
    "E4": ("CYCLIC(k) semantics (§4.1.3)", e04_cyclic),
    "E5": ("§5.1 alignment examples", e05_alignment),
    "E6": ("§6 allocatable example, verbatim", e06_allocatable),
    "E7": ("§7 procedure-boundary modes", e07_procedures),
    "E8": ("§8.1.1 staggered grid (Thole)", e08_staggered_grid),
    "E9": ("§8.1.2 array-section arguments", e09_section_args),
    "E10": ("§8.2 problem 1: allocatables vs templates",
            e10_allocatable_templates),
    "E11": ("Alignment-tree height: 1 vs chains", e11_forest_height),
    "E12": ("Template-free equivalence (core claim)", e12_equivalence),
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (``"E8"`` etc.)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{', '.join(EXPERIMENTS)}")
    _, fn = EXPERIMENTS[key]
    return fn(**kwargs)
