"""Experiments E7-E12 (see DESIGN.md §3 for the paper-artifact mapping)."""

from __future__ import annotations

import time

import numpy as np

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.bench.harness import ExperimentResult
from repro.core.dataspace import DataSpace
from repro.core.procedures import (
    DummyMode,
    DummySpec,
    Procedure,
    distributions_equal,
)
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.distribution import FormatDistribution
from repro.distributions.general_block import GeneralBlock
from repro.engine.executor import SimulatedExecutor
from repro.engine.redistribute import price_remap
from repro.errors import ConformanceError, TemplateError
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.templates.equivalence import (
    derive_general_block_formats,
    mappings_equivalent,
    verify_equivalence,
)
from repro.templates.inherit import inherit_mapping
from repro.templates.model import TemplateDataSpace
from repro.workloads.generators import seeded_rng
from repro.workloads.stencil import staggered_grid_case

__all__ = ["e07_procedures", "e08_staggered_grid", "e09_section_args",
           "e10_allocatable_templates", "e11_forest_height",
           "e12_equivalence"]


# ----------------------------------------------------------------------
# E7 — §7 procedure-boundary modes
# ----------------------------------------------------------------------
def e07_procedures(n: int = 10000, np_: int = 8) -> ExperimentResult:
    rows = []
    checks = {}

    def fresh_caller() -> DataSpace:
        ds = DataSpace(np_)
        ds.processors("PR", np_)
        ds.declare("A", n)
        ds.distribute("A", [Block()], to="PR")
        return ds

    noop = lambda frame, x: None   # noqa: E731

    # mode 1: explicit — remap to CYCLIC and restore on exit
    ds = fresh_caller()
    proc = Procedure("S_EXPL", [DummySpec(
        "X", DummyMode.EXPLICIT, formats=(Cyclic(),), to="PR")], noop)
    rec = proc.call(ds, "A")
    entry_words = sum(price_remap(e, np_)[1] for e in rec.entry_remaps)
    exit_words = sum(price_remap(e, np_)[1] for e in rec.exit_restores)
    rows.append({"mode": "explicit CYCLIC", "entry_moved": entry_words,
                 "exit_moved": exit_words, "conforming": True})
    checks["explicit_remaps"] = entry_words > 0
    checks["explicit_restores"] = exit_words == entry_words
    checks["caller_mapping_restored"] = distributions_equal(
        ds.distribution_of("A"),
        FormatDistribution(ds.arrays["A"].domain, (Block(),),
                           ds.resolve_target("PR", 1), ds.ap))

    # mode 2: inherit — zero movement
    ds = fresh_caller()
    proc = Procedure("S_INH", [DummySpec("X", DummyMode.INHERIT)], noop)
    rec = proc.call(ds, "A")
    rows.append({"mode": "inherit *", "entry_moved": 0
                 if not rec.entry_remaps else -1,
                 "exit_moved": 0 if not rec.exit_restores else -1,
                 "conforming": True})
    checks["inherit_is_free"] = not rec.entry_remaps and \
        not rec.exit_restores

    # mode 3: inherit-match — matching passes, mismatch non-conforming
    ds = fresh_caller()
    proc = Procedure("S_MATCH", [DummySpec(
        "X", DummyMode.INHERIT_MATCH, formats=(Block(),), to="PR")], noop)
    rec = proc.call(ds, "A")
    checks["match_ok_is_free"] = not rec.entry_remaps
    ds = fresh_caller()
    proc = Procedure("S_MISMATCH", [DummySpec(
        "X", DummyMode.INHERIT_MATCH, formats=(Cyclic(),), to="PR")], noop)
    try:
        proc.call(ds, "A")
        nonconf = False
    except ConformanceError:
        nonconf = True
    rows.append({"mode": "inherit-match (mismatch)", "entry_moved": 0,
                 "exit_moved": 0, "conforming": not nonconf})
    checks["mismatch_nonconforming"] = nonconf
    # ... unless the interface is known: the processor remaps
    ds = fresh_caller()
    rec = proc.call(ds, "A", interface_known=True)
    words = sum(price_remap(e, np_)[1] for e in rec.entry_remaps)
    rows.append({"mode": "inherit-match (interface known)",
                 "entry_moved": words, "exit_moved": words,
                 "conforming": True})
    checks["interface_remap"] = words > 0

    # dummies redistributed inside the body are restored on exit
    ds = fresh_caller()

    def body(frame, x) -> None:
        frame.redistribute("X", [Cyclic(3)], to=None)

    proc = Procedure("S_DYN", [DummySpec("X", DummyMode.INHERIT,
                                         dynamic=True)], body)
    rec = proc.call(ds, "A")
    rows.append({"mode": "body REDISTRIBUTE (restore)",
                 "entry_moved": 0,
                 "exit_moved": sum(price_remap(e, np_)[1]
                                   for e in rec.exit_restores),
                 "conforming": True})
    checks["body_redistribute_restored"] = len(rec.exit_restores) == 1
    return ExperimentResult(
        "E7", "§7 procedure-boundary mapping modes",
        rows=rows,
        headline=("Explicit specs remap the actual and restore it on "
                  "exit; inheritance is free; inheritance matching "
                  "rejects mismatches unless an interface block lets the "
                  "processor remap; body redistributes are undone on "
                  "return."),
        checks=checks)


# ----------------------------------------------------------------------
# E8 — §8.1.1 staggered grid
# ----------------------------------------------------------------------
def e08_staggered_grid(n: int = 128, rows_cols: tuple[int, int] = (4, 4)
                       ) -> ExperimentResult:
    rows = []
    checks = {}
    r, c = rows_cols
    config = MachineConfig(r * c)
    results = {}
    for strategy in ("template-cyclic", "template-block", "direct-block",
                     "direct-general-block", "max-align"):
        case = staggered_grid_case(n, r, c, strategy)
        machine = DistributedMachine(config)
        report = SimulatedExecutor(case.ds, machine).execute(
            case.statement)
        results[strategy] = report
        rows.append({
            "strategy": strategy, "N": n, "procs": r * c,
            "locality": report.locality,
            "words": report.total_words,
            "messages": report.total_messages,
            "est_time": machine.stats.estimated_time(config),
        })
    tc = results["template-cyclic"]
    tb = results["template-block"]
    db = results["direct-block"]
    dg = results["direct-general-block"]
    ma = results["max-align"]
    checks["cyclic_template_is_worst"] = tc.total_words == max(
        x.total_words for x in results.values())
    # "the worst possible effect, viz. different processor allocations
    # for any two neighbors": every reference is off-processor
    checks["cyclic_template_zero_locality"] = tc.locality == 0.0
    checks["block_template_recovers_locality"] = tb.locality > 0.8
    checks["direct_block_matches_template_block"] = (
        db.total_words <= tb.total_words * 1.5)
    checks["general_block_works"] = dg.locality > 0.8
    # §8.1.1: the MAX/MIN explicit-alignment extension "will suffice"
    checks["max_min_alignment_suffices"] = ma.locality >= db.locality
    return ExperimentResult(
        "E8", "§8.1.1 staggered grid (Thole example)",
        rows=rows,
        headline=("A (CYCLIC,CYCLIC) template puts every neighbour on a "
                  "different processor (locality 0) — the paper's 'worst "
                  "possible effect'; (BLOCK,BLOCK) — via the template or "
                  "directly, without one — recovers >80% locality; "
                  "GENERAL_BLOCK and the paper's MAX/MIN explicit "
                  "alignment give the same answer with no template."),
        checks=checks)


# ----------------------------------------------------------------------
# E9 — §8.1.2 array-section arguments
# ----------------------------------------------------------------------
def e09_section_args(n: int = 1000, np_: int = 4) -> ExperimentResult:
    rows = []
    checks = {}
    section = (Triplet(2, 996, 2),)

    # the template-model reading: T(1000), ALIGN X(I) WITH T(2*I),
    # DISTRIBUTE T(CYCLIC(3))
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.declare("A", n)
    tds.distribute("A", [Cyclic(3)], to="PR")
    inherited = inherit_mapping(tds, "A", _section(tds, "A", section))
    tds2 = TemplateDataSpace(np_)
    tds2.processors("PR", np_)
    tds2.template("T", n)
    tds2.declare("X", 498)
    i = Dummy("I")
    tds2.align(AlignSpec("X", [AxisDummy("I")], "T", [BaseExpr(2 * i)]))
    tds2.distribute("T", [Cyclic(3)], to="PR")
    template_map = tds2.owner_map("X")
    inherit_map = inherited.owner_map()
    checks["template_equals_inheritance"] = bool(
        np.array_equal(template_map, inherit_map))
    rows.append({"spec": "TEMPLATE T(1000) / ALIGN X(I) WITH T(2*I)",
                 "owners_equal_inherited": bool(
                     np.array_equal(template_map, inherit_map)),
                 "remap_words": 0})

    # the paper's template-free alternative: pass A too and
    # ALIGN X(I) WITH A(2*I) with A's distribution inherited
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.declare("X", 498)
    ds.distribute("A", [Cyclic(3)], to="PR")
    ds.align(AlignSpec("X", [AxisDummy("I")], "A", [BaseExpr(2 * i)]))
    paper_map = ds.owner_map("X")
    checks["paper_spec_equals_template_spec"] = bool(
        np.array_equal(paper_map, template_map))
    rows.append({"spec": "ALIGN X(I) WITH A(2*I) (no template)",
                 "owners_equal_inherited": bool(
                     np.array_equal(paper_map, inherit_map)),
                 "remap_words": 0})

    # star-distribution check under INHERIT (the draft-HPF surprise):
    # DISTRIBUTE X *(CYCLIC(3)) talks about A, not the section
    try:
        inherited.check_star_distribution((Cyclic(3),))
        star_ok = True
    except ConformanceError:
        star_ok = False
    checks["inherit_star_describes_ultimate_base"] = star_ok
    try:
        inherited.check_star_distribution((Cyclic(4),))
        star_bad = False
    except ConformanceError:
        star_bad = True
    checks["inherit_star_rejects_wrong_assertion"] = star_bad

    # forcing an explicit distribution on the dummy costs a remap
    ds2 = DataSpace(np_)
    ds2.processors("PR", np_)
    ds2.declare("A", n)
    ds2.distribute("A", [Cyclic(3)], to="PR")
    moved = {}
    for mode, spec in (("inherit", DummySpec("X", DummyMode.INHERIT)),
                       ("explicit CYCLIC(3)",
                        DummySpec("X", DummyMode.EXPLICIT,
                                  formats=(Cyclic(3),), to="PR"))):
        proc = Procedure("SUB", [spec], lambda frame, x: None)
        rec = proc.call(ds2, ("A", section))
        moved[mode] = sum(price_remap(e, np_)[1]
                          for e in rec.entry_remaps)
        rows.append({"spec": f"CALL SUB(A(2:996:2)) [{mode}]",
                     "owners_equal_inherited": mode == "inherit",
                     "remap_words": moved[mode]})
    checks["inheritance_is_free"] = moved["inherit"] == 0
    checks["explicit_respec_costs"] = moved["explicit CYCLIC(3)"] > 0
    return ExperimentResult(
        "E9", "§8.1.2 array-section arguments (A(2:996:2), CYCLIC(3))",
        rows=rows,
        headline=("The template spec, the INHERIT mechanism and the "
                  "paper's template-free ALIGN X(I) WITH A(2*I) all "
                  "induce the identical ownership for the section; "
                  "inheriting is free while re-specifying the dummy's "
                  "distribution costs a remap."),
        checks=checks)


def _section(tds, name: str, subs):
    from repro.fortran.section import ArraySection
    return ArraySection(tds.arrays[name].domain, subs)


# ----------------------------------------------------------------------
# E10 — §8.2 problem 1: allocatables
# ----------------------------------------------------------------------
def e10_allocatable_templates(np_: int = 8) -> ExperimentResult:
    rows = []
    checks = {}
    # template model: aligning a run-time-shaped array to a template
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.template("T", 1024)
    tds.declare("B", 100, runtime_shape=True)   # extent known at run time
    i = Dummy("I")
    try:
        tds.align(AlignSpec("B", [AxisDummy("I")], "T",
                            [BaseExpr(2 * i)]))
        failed = False
    except TemplateError:
        failed = True
    rows.append({"model": "template", "operation":
                 "ALIGN runtime-shaped B WITH T(2*I)",
                 "outcome": "TemplateError" if failed else "accepted"})
    checks["template_rejects_runtime_alignee"] = failed
    # ... and templates cannot be allocatable or passed
    try:
        tds.templates["T"].allocate()
        alloc_failed = False
    except TemplateError:
        alloc_failed = True
    try:
        tds.pass_template("T")
        pass_failed = False
    except TemplateError:
        pass_failed = True
    rows.append({"model": "template", "operation": "ALLOCATE(T)",
                 "outcome": "TemplateError" if alloc_failed else "ok"})
    rows.append({"model": "template", "operation": "CALL SUB(T)",
                 "outcome": "TemplateError" if pass_failed else "ok"})
    checks["template_not_allocatable"] = alloc_failed
    checks["template_not_passable"] = pass_failed

    # paper model: repeated ALLOCATE/DEALLOCATE with run-time extents,
    # alignment and redistribution all work
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", 1024, dynamic=True)
    ds.distribute("A", [Cyclic(2)], to="PR")
    ds.declare("B", allocatable=True, dynamic=True, rank=1)
    ok_cycles = 0
    for extent in (64, 100, 256):
        ds.allocate("B", extent)
        ds.realign(AlignSpec("B", [AxisDummy("I")], "A",
                             [BaseExpr(2 * i)]))
        collocated = all(
            ds.owners("B", (k,)) <= ds.owners("A", (2 * k,))
            for k in range(1, extent + 1, extent // 4))
        ok_cycles += collocated
        ds.deallocate("B")
    rows.append({"model": "paper", "operation":
                 "3x ALLOCATE/REALIGN B WITH A(2*I)/DEALLOCATE",
                 "outcome": f"{ok_cycles}/3 collocated"})
    checks["paper_model_handles_allocatables"] = ok_cycles == 3
    return ExperimentResult(
        "E10", "§8.2 problem 1: templates cannot handle allocatable "
               "arrays",
        rows=rows,
        headline=("The template model rejects run-time-shaped alignees "
                  "(fixed template shapes), allocatable templates and "
                  "template arguments; the paper's array-based model "
                  "runs repeated ALLOCATE/REALIGN/DEALLOCATE cycles."),
        checks=checks)


# ----------------------------------------------------------------------
# E11 — alignment-forest height: 1 vs chains
# ----------------------------------------------------------------------
def e11_forest_height(n: int = 20000, np_: int = 8,
                      depths: tuple[int, ...] = (1, 4, 16, 64)
                      ) -> ExperimentResult:
    rows = []
    checks = {}
    i = Dummy("I")
    times: dict[int, float] = {}
    for depth in depths:
        tds = TemplateDataSpace(np_)
        tds.processors("PR", np_)
        tds.declare("A0", n + depth)
        tds.distribute("A0", [Block()], to="PR")
        for d in range(1, depth + 1):
            tds.declare(f"A{d}", n + depth - d)
            tds.align(AlignSpec(f"A{d}", [AxisDummy("I")],
                                f"A{d - 1}", [BaseExpr(i + 1)]))
        leaf = f"A{depth}"
        t0 = time.perf_counter()
        chain_map = tds.owner_map(leaf)
        chain_time = time.perf_counter() - t0
        times[depth] = chain_time
        # the paper's model: the same mapping as a single height-1 edge
        ds = DataSpace(np_)
        ds.processors("PR", np_)
        ds.declare("BASE", n + depth)
        ds.distribute("BASE", [Block()], to="PR")
        ds.declare("LEAF", n)
        ds.align(AlignSpec("LEAF", [AxisDummy("I")], "BASE",
                           [BaseExpr(i + depth)]))
        t0 = time.perf_counter()
        flat_map = ds.owner_map("LEAF")
        flat_time = time.perf_counter() - t0
        same = bool(np.array_equal(chain_map, flat_map))
        rows.append({"depth": depth, "N": n,
                     "chain_resolution_s": chain_time,
                     "height1_resolution_s": flat_time,
                     "same_mapping": same,
                     "chain_links": tds.resolution_depth(leaf)})
        checks[f"depth{depth}_composition_correct"] = same
    deepest = rows[-1]
    checks["height1_never_slower_than_deep_chains"] = (
        deepest["height1_resolution_s"]
        <= deepest["chain_resolution_s"] * 1.5)
    return ExperimentResult(
        "E11", "Alignment trees of height 1 vs draft-HPF chains",
        rows=rows,
        headline=("Deep alignment chains resolve to the same mapping as "
                  "a single height-1 alignment, but ownership resolution "
                  "walks every link; the paper's height-1 invariant "
                  "bounds that cost."),
        checks=checks)


# ----------------------------------------------------------------------
# E12 — template-free equivalence on a randomized family
# ----------------------------------------------------------------------
def e12_equivalence(cases: int = 12, np_: int = 6) -> ExperimentResult:
    rows = []
    checks = {}
    rng = seeded_rng("e12", cases, np_)
    i = Dummy("I")
    all_ok = True
    gb_ok = 0
    gb_applicable = 0
    for case in range(cases):
        tn = int(rng.integers(64, 256))
        a = int(rng.integers(1, 4))
        n = (tn - int(rng.integers(8, 16))) // a
        slack = tn - a * n           # >= 8 by construction
        b = int(rng.integers(1, slack + 1))   # a*n + b <= tn: no clamping
        kind = ("BLOCK", "CYCLIC", "CYCLIC(k)", "GENERAL_BLOCK")[
            case % 4]
        tds = TemplateDataSpace(np_)
        tds.processors("PR", np_)
        tds.template("T", tn)
        tds.declare("X", n)
        spec = AlignSpec("X", [AxisDummy("I")], "T", [BaseExpr(a * i + b)])
        tds.align(spec)
        if kind == "BLOCK":
            fmt = Block()
        elif kind == "CYCLIC":
            fmt = Cyclic()
        elif kind == "CYCLIC(k)":
            fmt = Cyclic(int(rng.integers(2, 6)))
        else:
            cuts = sorted(rng.integers(1, tn, size=np_ - 1).tolist())
            fmt = GeneralBlock(cuts)
        tds.distribute("T", [fmt], to="PR")
        result = verify_equivalence(tds, "T", [spec])
        ok = result["X"]
        all_ok &= ok
        gb_row = "-"
        if kind in ("BLOCK", "GENERAL_BLOCK"):
            gb_applicable += 1
            tdist = tds._dist["T"]
            fmts, target = derive_general_block_formats(
                tdist, tds._aligned_to["X"][1], tds.arrays["X"].domain)
            direct = FormatDistribution(tds.arrays["X"].domain, fmts,
                                        target, tds.ap)
            gb_eq = mappings_equivalent(direct, tds.distribution_of("X"))
            gb_ok += gb_eq
            gb_row = "yes" if gb_eq else "NO"
        rows.append({"case": case, "template_N": tn,
                     "align": f"{a}*I+{b}", "format": str(fmt),
                     "witness_equivalent": ok,
                     "general_block_equivalent": gb_row})
    checks["witness_strategy_always_equivalent"] = bool(all_ok)
    checks["general_block_strategy_equivalent"] = gb_ok == gb_applicable
    return ExperimentResult(
        "E12", "Template-free equivalence (the paper's core claim)",
        rows=rows,
        headline=(f"For {cases} randomized template-based mappings, the "
                  "witness-array derivation reproduces the element-to-"
                  "processor map exactly; block-partitioned cases are "
                  "also expressible directly as GENERAL_BLOCK with no "
                  "auxiliary array."),
        checks=checks)
