"""Result containers, table rendering, and the core-ops micro benchmark.

Besides the :class:`ExperimentResult` containers the experiments use,
this module hosts :func:`run_quick_bench` — the timed core-ops benchmark
behind ``python -m repro bench [--quick]``.  It times ownership-map and
communication-set construction for BLOCK and CYCLIC distributions, the
compiled-schedule cache in cold and steady state, and full simulated
statements, and writes the rows to ``BENCH_core.json`` (schema:
``{name, size, seconds, words_moved}``) so the repo's performance
trajectory is recorded from CI.

Pattern-attributed probes additionally carry ``pattern``, ``time_p2p``
and ``time_collective``: the classified communication shape
(:mod:`repro.engine.lowering`) and the modeled elapsed time under the
point-to-point versus the lowered collective cost model for the same —
bit-identical — words matrix.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = ["ExperimentResult", "format_table", "run_quick_bench",
           "write_bench_json"]


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None) -> str:
    """Plain-text table from a list of row dicts (stable column order)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    str_rows = []
    for row in rows:
        str_rows.append([_fmt(row.get(c, "")) for c in columns])
    widths = [max(len(c), *(len(r[i]) for r in str_rows))
              for i, c in enumerate(columns)]
    head = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths))
                     for r in str_rows)
    return f"{head}\n{sep}\n{body}"


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    if isinstance(v, bool):
        return "yes" if v else "no"
    return str(v)


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment: str
    title: str
    #: the table the paper artifact corresponds to
    rows: list[dict] = field(default_factory=list)
    #: one-line statement of what the paper claims and what we measured
    headline: str = ""
    #: free-form notes (substitutions, deviations)
    notes: list[str] = field(default_factory=list)
    #: machine-checkable claims (name -> bool), asserted by the benches
    checks: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.title} =="]
        if self.headline:
            out.append(self.headline)
        out.append(format_table(self.rows))
        for note in self.notes:
            out.append(f"note: {note}")
        if self.checks:
            out.append("checks: " + ", ".join(
                f"{k}={'PASS' if v else 'FAIL'}"
                for k, v in self.checks.items()))
        return "\n".join(out)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


# ----------------------------------------------------------------------
# Core-ops micro benchmark (``python -m repro bench``)
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``fn`` and its last result."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _block_cyclic_pair(n: int, np_: int):
    from repro.core.dataspace import DataSpace
    from repro.distributions.block import Block
    from repro.distributions.cyclic import Cyclic

    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("X", n)
    ds.declare("Y", n)
    ds.distribute("X", [Block()], to="PR")
    ds.distribute("Y", [Cyclic()], to="PR")
    return ds


def run_quick_bench(sizes: Sequence[int] = (50_000,),
                    n_processors: int = 16,
                    repeats: int = 3,
                    backends: Sequence[str] = ("simulate", "spmd"),
                    opt_levels: Sequence[int] = (0, 2)
                    ) -> list[dict]:
    """Time the core engine operations; returns one row dict per probe.

    Row schema: ``{name, size, seconds, words_moved}``.  The probe pairs
    are chosen so each optimization layer of the schedule subsystem is
    visible: dense ownership-map construction vs its memoized re-read,
    oracle vs analytic communication sets, schedule compilation vs the
    steady-state cache hit, and a full simulated statement first/repeat.

    Backend rows (:func:`_backend_rows`) additionally time the iterated
    Jacobi workload end to end under each requested execution backend
    (wall clock) and carry ``backend`` / ``workers`` / ``mode`` /
    ``fused`` / ``barriers`` / ``cache_hit_rate`` — and for SPMD rows
    ``speedup_vs_simulate``, the wall-clock ratio against the simulated
    run at the same machine width, plus ``multicore`` (whether the
    runner had at least one core per worker, the precondition of the
    bench-diff speedup target).
    """
    from repro.engine.assignment import Assignment
    from repro.engine.commsets import (
        analytic_comm_sets,
        comm_matrix,
        words_matrix_from_pieces,
    )
    from repro.engine.executor import SimulatedExecutor
    from repro.engine.expr import ArrayRef
    from repro.engine.schedule import schedule_for
    from repro.fortran.section import full_section
    from repro.fortran.triplet import Triplet
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import DistributedMachine

    rows: list[dict] = []

    def add(name: str, size: int, seconds: float, words: int) -> None:
        rows.append({"name": name, "size": size,
                     "seconds": round(seconds, 6),
                     "words_moved": int(words)})

    for n in sizes:
        # ownership-map construction (cold) and memoized re-read
        seconds, _ = _best_of(
            lambda: _block_cyclic_pair(n, n_processors)
            .distribution_of("X").primary_owner_map(), repeats)
        add("ownership_map_block_cold", n, seconds, 0)
        seconds, _ = _best_of(
            lambda: _block_cyclic_pair(n, n_processors)
            .distribution_of("Y").primary_owner_map(), repeats)
        add("ownership_map_cyclic_cold", n, seconds, 0)
        ds = _block_cyclic_pair(n, n_processors)
        dist_x = ds.distribution_of("X")
        dist_x.primary_owner_map()
        seconds, _ = _best_of(dist_x.primary_owner_map, repeats)
        add("ownership_map_block_cached", n, seconds, 0)

        # communication sets: oracle vs analytic vs compiled schedule
        dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
        sec = full_section(ds.arrays["X"].domain)
        seconds, (matrix, _, _) = _best_of(
            lambda: comm_matrix(dl, sec, dr, sec, n_processors), repeats)
        add("commset_oracle_block_cyclic", n, seconds, matrix.sum())
        seconds, matrix = _best_of(
            lambda: words_matrix_from_pieces(
                analytic_comm_sets(dl, sec, dr, sec), n_processors),
            repeats)
        add("commset_analytic_block_cyclic", n, seconds, matrix.sum())

        stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                          ArrayRef("Y", (Triplet(1, n - 1),)))

        def compile_fresh():
            ds.schedule_cache.clear()
            return schedule_for(ds, stmt, n_processors)

        seconds, sched = _best_of(compile_fresh, repeats)
        add("schedule_compile_block_cyclic", n, seconds, sched.total_words)
        seconds, sched = _best_of(
            lambda: schedule_for(ds, stmt, n_processors), repeats)
        add("schedule_cached_block_cyclic", n, seconds, sched.total_words)

        # full simulated statement: first execution vs steady state
        ds2 = _block_cyclic_pair(n, n_processors)
        machine = DistributedMachine(MachineConfig(n_processors))
        ex = SimulatedExecutor(ds2, machine)
        t0 = time.perf_counter()
        report = ex.execute(stmt)
        add("statement_simulated_first", n, time.perf_counter() - t0,
            report.total_words)
        seconds, report = _best_of(lambda: ex.execute(stmt), repeats)
        add("statement_simulated_repeat", n, seconds, report.total_words)

        rows.extend(_pattern_rows(n, n_processors, repeats))
        rows.extend(_backend_rows(n, repeats, backends))
        rows.extend(_opt_rows(n, repeats, opt_levels))
        rows.extend(_serve_rows(n, repeats))

    rows.extend(_autotune_rows(repeats))
    return rows


#: (machine width, processor grid) pairs the backend probes run at —
#: two worker counts so the BENCH artifact records SPMD scaling
_BACKEND_GRIDS = ((2, (2, 1)), (4, (2, 2)))
#: Jacobi sweeps per timed backend run (iterations 2..N are cache hits)
_BACKEND_ITERS = 6


def _backend_rows(n: int, repeats: int,
                  backends: Sequence[str]) -> list[dict]:
    """Wall-clock rows for the iterated Jacobi workload per execution
    backend: the simulated cost oracle versus the parallel SPMD backend
    (fused per-peer plans, the unfused per-statement baseline, and the
    worker-resident replay path) at ≥2 worker counts, same statements,
    same compiled schedules.  Every SPMD row records ``cpu_count`` and
    ``replay`` so the bench-diff gates can tell an armed speedup target
    from a dormant one."""
    import os

    from repro.engine.assignment import Assignment
    from repro.engine.expr import ArrayRef
    from repro.fortran.triplet import Triplet
    from repro.machine.backend import Backend, make_executor
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import DistributedMachine
    from repro.workloads.stencil import jacobi_case

    side = max(int(n ** 0.5), 16)
    inner = Triplet(2, side - 1)
    copy_back = Assignment(ArrayRef("X", (inner, inner)),
                           ArrayRef("XNEW", (inner, inner)))

    def run_once(spec, p: int, grid: tuple[int, int],
                 replay: bool = False):
        case = jacobi_case(side, *grid)
        machine = DistributedMachine(MachineConfig(p))
        ex = make_executor(case.ds, machine, spec)
        words = 0
        barriers = 0
        mode = "-"
        stmts = [case.statement, copy_back]

        def sweep():
            return ex.execute_all(stmts)

        try:
            # untimed warm-up sweep: forks the worker pool, uploads the
            # shared mirrors and compiles/ships the plans — through the
            # SAME call shape as the timed loop, so the fusion windows
            # (and the per-peer transfer plans compiled for them) formed
            # here are exactly the ones the steady state replays.  A
            # different batch shape between warm-up and timing would
            # compile different window plans, silently re-paying the
            # compile inside the timed region and under-reporting
            # cache_hit_rate.
            if replay:
                # one warm-up trip through execute_loop ships the
                # window plans; the timed call then replays all
                # _BACKEND_ITERS trips worker-resident with a single
                # dispatch/ack round trip
                ex.execute_loop(stmts, 1)
                t0 = time.perf_counter()
                for report in ex.execute_loop(stmts, _BACKEND_ITERS):
                    words += report.total_words
                    barriers += report.barrier_count
                seconds = time.perf_counter() - t0
            else:
                sweep()
                t0 = time.perf_counter()
                for _ in range(_BACKEND_ITERS):
                    for report in sweep():
                        words += report.total_words
                        barriers += report.barrier_count
                seconds = time.perf_counter() - t0
            if hasattr(ex, "pool_mode"):
                mode = ex.pool_mode
        finally:
            if hasattr(ex, "close"):
                ex.close()
        cache = case.ds.schedule_cache
        hit_rate = cache.hits / max(cache.hits + cache.misses, 1)
        return seconds, words, hit_rate, mode, barriers

    def best_run(spec, p: int, grid, replay: bool = False):
        best = None
        for _ in range(max(repeats, 1)):
            run = run_once(spec, p, grid, replay=replay)
            if best is None or run[0] < best[0]:
                best = run
        return best

    rows: list[dict] = []
    cores = os.cpu_count() or 1
    for p, grid in _BACKEND_GRIDS:
        # names carry the requested size: multi-size runs must not emit
        # duplicate names, or the bench-diff gate (which keys rows by
        # name) would silently gate only the last size
        sim_seconds = None
        if "simulate" in backends:
            seconds, words, hit_rate, _, _ = best_run(
                Backend.simulate(), p, grid)
            sim_seconds = seconds
            rows.append({
                "name": f"jacobi_simulate_p{p}_s{n}", "size": side * side,
                "seconds": round(seconds, 6), "words_moved": int(words),
                "backend": "simulate", "workers": p,
                "cache_hit_rate": round(hit_rate, 4)})
        if "spmd" not in backends:
            continue
        # (suffix, fused, replay): the fused per-window dispatch path,
        # the unfused two-barrier baseline, and the worker-resident
        # replay path (fused windows shipped once, all trips replayed
        # locally behind the shared-memory sense barrier)
        for suffix, fused, replay in (("", True, False),
                                      ("_unfused", False, False),
                                      ("_replay", True, True)):
            seconds, words, hit_rate, mode, barriers = best_run(
                Backend.spmd(fused=fused, replay=replay), p, grid,
                replay=replay)
            row = {
                "name": f"jacobi_spmd{suffix}_p{p}_s{n}",
                "size": side * side,
                "seconds": round(seconds, 6), "words_moved": int(words),
                "backend": "spmd", "workers": p, "mode": mode,
                "fused": fused, "replay": replay,
                "barriers": int(barriers),
                "multicore": p <= cores, "cpu_count": cores,
                "cache_hit_rate": round(hit_rate, 4)}
            if sim_seconds is not None and seconds > 0:
                row["speedup_vs_simulate"] = round(
                    sim_seconds / seconds, 3)
            rows.append(row)
    return rows


#: the optimizer benchmark machine: 8 processors as a (4, 2) grid (the
#: configuration the words/messages-reduction acceptance numbers quote)
_OPT_GRID = (4, 2)
_OPT_JACOBI_ITERS = 10
_OPT_MG_CYCLES = 2


def _opt_rows(n: int, repeats: int,
              opt_levels: Sequence[int]) -> list[dict]:
    """Optimizer-pipeline rows: the 10-iteration Jacobi-with-residual
    loop and the two-level multigrid V-cycle executed through the
    program-level IR at each requested opt level (P = 8).  Rows carry
    the physically charged words/messages, the schedule-cache hit rate
    and wall-clock; non-zero levels add ``words_reduction_vs_O0`` /
    ``msgs_reduction_vs_O0`` — the quantities the bench-diff gate
    watches."""
    if not opt_levels:
        return []
    from repro.machine.config import MachineConfig
    from repro.workloads.multigrid import multigrid_session
    from repro.workloads.stencil import jacobi_session

    rows_, cols = _OPT_GRID
    p = rows_ * cols
    side = max(int(n ** 0.5), 16)
    side += side % 2                    # multigrid needs an even extent

    def build_jacobi(level):
        return jacobi_session(side, rows_, cols,
                              iters=_OPT_JACOBI_ITERS,
                              machine=MachineConfig(p), opt=level)

    def build_multigrid(level):
        return multigrid_session(side, rows_, cols,
                                 cycles=_OPT_MG_CYCLES,
                                 machine=MachineConfig(p), opt=level)

    def run_once(build, level):
        session = build(level)
        t0 = time.perf_counter()
        session.run()
        seconds = time.perf_counter() - t0
        cache = session.ds.schedule_cache
        hit_rate = cache.hits / max(cache.hits + cache.misses, 1)
        return (seconds, session.stats.total_words,
                session.stats.total_messages, hit_rate)

    # levels run ascending so the -O0 baseline exists before any row
    # that quotes a reduction against it; when a non-zero level is
    # requested without 0, the baseline is still measured (once) so the
    # gated reduction fields are never silently omitted
    levels = tuple(sorted(set(int(x) for x in opt_levels)))
    rows: list[dict] = []
    for name, build in (("jacobi_opt", build_jacobi),
                        ("multigrid_opt", build_multigrid)):
        base_words = base_msgs = None
        if 0 not in levels and any(levels):
            _, base_words, base_msgs, _ = run_once(build, 0)
        for level in levels:
            best = None
            for _ in range(max(repeats, 1)):
                run = run_once(build, level)
                if best is None or run[0] < best[0]:
                    best = run
            seconds, words, msgs, hit_rate = best
            row = {"name": f"{name}_O{level}", "size": side * side,
                   "seconds": round(seconds, 6), "words_moved": int(words),
                   "messages": int(msgs), "opt_level": level,
                   "workers": p, "cache_hit_rate": round(hit_rate, 4)}
            if level == 0:
                base_words, base_msgs = words, msgs
            elif base_words:
                row["words_reduction_vs_O0"] = round(
                    1.0 - words / base_words, 4)
                row["msgs_reduction_vs_O0"] = round(
                    1.0 - msgs / base_msgs, 4)
            rows.append(row)
    return rows


#: tenants in the cross-session serving probe (1 warms, the rest adopt)
_SERVE_TENANTS = 4


def _serve_rows(n: int, repeats: int) -> list[dict]:
    """The cross-session serving probe: ``_SERVE_TENANTS`` independent
    sessions run the same ``-O2`` Jacobi through one
    :class:`~repro.serve.SessionService` with a fresh plan store.  The
    row's ``cache_hit_rate`` is the fraction of plan-store requests
    tenants 2..N answered from the plans tenant 1 compiled — the
    serving metric; 1.0 means the warm tenants compiled nothing.
    ``seconds`` is the best warm-tenant wall clock, ``cold_seconds``
    the compiling tenant's, so the artifact also records the adoption
    speedup.  ``cache_hit_rate`` rows are gated by ``bench-diff``."""
    from repro.machine.config import MachineConfig
    from repro.serve import PlanStore, SessionService
    from repro.workloads.stencil import jacobi_session

    rows_, cols = _OPT_GRID
    p = rows_ * cols
    side = max(int(n ** 0.5), 16)
    best = None
    for _ in range(max(repeats, 1)):
        with SessionService(plan_store=PlanStore()) as svc:
            def tenant() -> float:
                session = jacobi_session(
                    side, rows_, cols, iters=_OPT_JACOBI_ITERS,
                    machine=MachineConfig(p), opt=2, service=svc)
                t0 = time.perf_counter()
                session.run()
                seconds = time.perf_counter() - t0
                session.close()
                return seconds

            cold = tenant()
            before = svc.store.stats()
            warm = min(tenant() for _ in range(_SERVE_TENANTS - 1))
            after = svc.store.stats()
            hits = after["hits"] - before["hits"]
            misses = after["misses"] - before["misses"]
            rate = hits / max(hits + misses, 1)
            run = (warm, cold, rate)
            if best is None or run[0] < best[0]:
                best = run
    warm, cold, rate = best
    return [{"name": "serve_cross_session_O2", "size": side * side,
             "seconds": round(warm, 6), "words_moved": 0,
             "cold_seconds": round(cold, 6), "workers": p,
             "sessions": _SERVE_TENANTS,
             "cache_hit_rate": round(rate, 4)}]


#: the autotune probe workload: the power-law-imbalanced Jacobi the
#: acceptance scenario quotes (N x N rows, P processors, ITERS trips)
_AUTOTUNE_N = 64
_AUTOTUNE_P = 8
_AUTOTUNE_ITERS = 12


def _autotune_rows(repeats: int) -> list[dict]:
    """Self-adaptive layout rows: the power-law-imbalanced Jacobi run
    three ways — static BLOCK at ``-O2``, ``opt="auto"`` (the session
    adapts itself), and the hand-tuned balanced GENERAL_BLOCK layout.
    Each row carries ``modeled_makespan``, the steady-state per-trip
    compute makespan (``flop * max weighted work``) of the layout the
    run *ended* in, plus ``adaptations``, how many REDISTRIBUTEs the
    tuner emitted.  ``bench-diff`` gates that auto's makespan never
    exceeds static BLOCK's, stays within 5% of the hand-tuned row, and
    that the auto row actually adapted."""
    from repro.autotune import modeled_work
    from repro.distributions.base import Collapsed
    from repro.distributions.general_block import GeneralBlock
    from repro.machine.config import MachineConfig
    from repro.workloads.irregular import (
        imbalanced_jacobi_session,
        power_law_costs,
    )

    n, p, iters = _AUTOTUNE_N, _AUTOTUNE_P, _AUTOTUNE_ITERS
    costs = power_law_costs(n, 2.0)
    config = MachineConfig(p)
    hand_tuned = (GeneralBlock.balanced_for_costs(costs, p), Collapsed())

    def run_once(opt, fmts=None):
        session = imbalanced_jacobi_session(n, p, iters, exponent=2.0,
                                            opt=opt, fmts=fmts)
        t0 = time.perf_counter()
        result = session.run()
        seconds = time.perf_counter() - t0
        work = modeled_work(session.ds.distribution_of("X"), costs, p)
        mean = float(work.sum()) / p
        return (seconds, int(session.stats.total_words),
                len(result.adaptations),
                config.flop * float(work.max()),
                float(work.max()) / mean if mean > 0 else 1.0)

    rows: list[dict] = []
    for suffix, opt, fmts in (("static", 2, None),
                              ("auto", "auto", None),
                              ("general", 2, hand_tuned)):
        best = None
        for _ in range(max(repeats, 1)):
            run = run_once(opt, fmts)
            if best is None or run[0] < best[0]:
                best = run
        seconds, words, adaptations, makespan, imbalance = best
        rows.append({
            "name": f"jacobi_imbalanced_{suffix}", "size": n * n,
            "seconds": round(seconds, 6), "words_moved": words,
            "workers": p, "opt": str(opt),
            "adaptations": adaptations,
            "modeled_makespan": round(makespan, 4),
            "imbalance": round(imbalance, 4)})
    return rows


def _pattern_rows(n: int, n_processors: int, repeats: int) -> list[dict]:
    """Pattern-attributed probes: the same words matrices priced under
    the point-to-point model versus their lowered collective formula."""
    from repro.core.dataspace import DataSpace
    from repro.distributions.block import Block
    from repro.distributions.cyclic import Cyclic
    from repro.distributions.replicated import ReplicatedFormat
    from repro.engine.assignment import Assignment
    from repro.engine.executor import SimulatedExecutor
    from repro.engine.expr import ArrayRef
    from repro.engine.lowering import p2p_time
    from repro.engine.redistribute import (
        charge_remap,
        price_remap,
        remap_lowering,
    )
    from repro.fortran.triplet import Triplet
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import DistributedMachine

    config = MachineConfig(n_processors)
    rows: list[dict] = []

    def add(name: str, words: np.int64 | int, seconds: float,
            pattern: str, t_p2p: float, t_coll: float,
            size: int = n) -> None:
        rows.append({"name": name, "size": size,
                     "seconds": round(seconds, 6),
                     "words_moved": int(words), "pattern": pattern,
                     "time_p2p": round(t_p2p, 3),
                     "time_collective": round(t_coll, 3)})

    def remap_probe(name: str, formats, n_elems: int = n) -> None:
        def build_event():
            ds = DataSpace(n_processors)
            ds.processors("PR", n_processors)
            ds.declare("X", n_elems, dynamic=True)
            ds.distribute("X", [Block()], to="PR")
            return ds.redistribute("X", formats, to="PR")

        event = build_event()
        matrix, _ = price_remap(event, n_processors)
        lowering = remap_lowering(event, matrix)

        def charge():
            machine = DistributedMachine(config)
            charge_remap(machine, event)
            return machine

        seconds, machine = _best_of(charge, repeats)
        add(name, matrix.sum() - np.trace(matrix), seconds,
            lowering.pattern.value, p2p_time(config, matrix),
            machine.elapsed, size=n_elems)

    # dense remap (BLOCK -> CYCLIC): lowered to an alltoall exchange
    remap_probe("remap_alltoall_block_to_cyclic", [Cyclic()])
    # replication remap (BLOCK -> REPLICATED, the *-subscript shape):
    # lowered to an allgather tree; size-capped because exact replicated
    # pricing walks per-element owner sets
    remap_probe("remap_allgather_replicate", [ReplicatedFormat()],
                n_elems=min(n, 20_000))

    # shift stencil statement: charged as one concurrent exchange round
    ds = DataSpace(n_processors)
    ds.processors("PR", n_processors)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Block()], to="PR")
    stmt = Assignment(ArrayRef("A", (Triplet(2, n),)),
                      ArrayRef("B", (Triplet(1, n - 1),)))

    def run_shift():
        machine = DistributedMachine(config)
        report = SimulatedExecutor(ds, machine).execute(stmt)
        return machine, report

    seconds, (machine, report) = _best_of(run_shift, repeats)
    comm_time = sum(machine.stats.pattern_time.values())
    add("statement_shift_stencil", report.total_words, seconds,
        report.patterns[str(stmt.rhs)], p2p_time(config, report.words),
        comm_time)
    return rows


def write_bench_json(rows: Sequence[Mapping[str, Any]],
                     path: str = "BENCH_core.json") -> None:
    """Write benchmark rows to ``path`` (the CI artifact)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(list(rows), fh, indent=2)
        fh.write("\n")
