"""Result containers and table rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table"]


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None) -> str:
    """Plain-text table from a list of row dicts (stable column order)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    str_rows = []
    for row in rows:
        str_rows.append([_fmt(row.get(c, "")) for c in columns])
    widths = [max(len(c), *(len(r[i]) for r in str_rows))
              for i, c in enumerate(columns)]
    head = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths))
                     for r in str_rows)
    return f"{head}\n{sep}\n{body}"


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    if isinstance(v, bool):
        return "yes" if v else "no"
    return str(v)


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment: str
    title: str
    #: the table the paper artifact corresponds to
    rows: list[dict] = field(default_factory=list)
    #: one-line statement of what the paper claims and what we measured
    headline: str = ""
    #: free-form notes (substitutions, deviations)
    notes: list[str] = field(default_factory=list)
    #: machine-checkable claims (name -> bool), asserted by the benches
    checks: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.title} =="]
        if self.headline:
            out.append(self.headline)
        out.append(format_table(self.rows))
        for note in self.notes:
            out.append(f"note: {note}")
        if self.checks:
            out.append("checks: " + ", ".join(
                f"{k}={'PASS' if v else 'FAIL'}"
                for k, v in self.checks.items()))
        return "\n".join(out)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
