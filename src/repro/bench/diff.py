"""Benchmark regression diffing (the CI gate behind ``repro bench-diff``).

Compares two ``BENCH_core.json`` snapshots row-by-row (rows are matched
on ``name``) and fails when a *semantic* perf counter regresses.  Wall
times are noisy on shared CI runners, so they are reported but never
gated; the gated quantities are

* the **schedule-cache hit rate** each backend row carries — a drop
  means the compiled-schedule memoization stopped covering the steady
  state;
* the **optimizer words/messages reduction** the ``*_opt_O2`` rows
  carry relative to their ``-O0`` baselines — a drop means a pipeline
  pass (halo validity, CSE, coalescing) stopped firing on the Jacobi or
  multigrid loop, which is a real (and otherwise silent) performance
  regression.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

__all__ = ["load_rows", "diff_cache_hit_rates", "diff_opt_reductions",
           "render_diff"]

#: absolute slack allowed on a hit-rate drop before it counts as a
#: regression (hit rates are deterministic, the slack covers probes that
#: legitimately change their statement mix by one compile)
DEFAULT_TOLERANCE = 0.02


def load_rows(path: str) -> dict[str, Mapping[str, Any]]:
    """Load a bench JSON file into a name -> row mapping (a duplicated
    name keeps the last row, matching how the table is read)."""
    with open(path, "r", encoding="utf-8") as fh:
        rows = json.load(fh)
    return {str(row["name"]): row for row in rows}


def diff_cache_hit_rates(baseline: Mapping[str, Mapping[str, Any]],
                         candidate: Mapping[str, Mapping[str, Any]],
                         tolerance: float = DEFAULT_TOLERANCE
                         ) -> list[str]:
    """Regression messages for every gated row (empty = pass).

    A baseline row with a ``cache_hit_rate`` must exist in the candidate
    (silently dropping a gated probe would hide a regression) and its
    candidate rate must not fall more than ``tolerance`` below the
    baseline's.
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        base_rate = base_row.get("cache_hit_rate")
        if base_rate is None:
            continue
        cand_row = candidate.get(name)
        if cand_row is None:
            problems.append(
                f"{name}: gated row missing from the candidate run")
            continue
        cand_rate = cand_row.get("cache_hit_rate")
        if cand_rate is None:
            problems.append(
                f"{name}: candidate row lost its cache_hit_rate field")
            continue
        if float(cand_rate) < float(base_rate) - tolerance:
            problems.append(
                f"{name}: schedule-cache hit rate regressed "
                f"{float(base_rate):.3f} -> {float(cand_rate):.3f} "
                f"(tolerance {tolerance})")
    return problems


#: fields the optimizer rows are gated on
_REDUCTION_FIELDS = ("words_reduction_vs_O0", "msgs_reduction_vs_O0")


def diff_opt_reductions(baseline: Mapping[str, Mapping[str, Any]],
                        candidate: Mapping[str, Mapping[str, Any]],
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> list[str]:
    """Regression messages for the optimizer-reduction rows (empty =
    pass).

    Every baseline row carrying a ``words_reduction_vs_O0`` (the
    ``*_opt_O2`` rows) must exist in the candidate and keep each of its
    reduction ratios within ``tolerance`` of the baseline's — the
    reductions are deterministic pass outcomes, not wall-clock noise.
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        if _REDUCTION_FIELDS[0] not in base_row:
            continue
        cand_row = candidate.get(name)
        if cand_row is None:
            problems.append(
                f"{name}: optimizer-gated row missing from the candidate "
                "run")
            continue
        for field in _REDUCTION_FIELDS:
            base = base_row.get(field)
            if base is None:
                continue
            cand = cand_row.get(field)
            if cand is None:
                problems.append(
                    f"{name}: candidate row lost its {field} field")
                continue
            if float(cand) < float(base) - tolerance:
                problems.append(
                    f"{name}: {field} regressed "
                    f"{float(base):.3f} -> {float(cand):.3f} "
                    f"(tolerance {tolerance})")
    return problems


def render_diff(baseline: Mapping[str, Mapping[str, Any]],
                candidate: Mapping[str, Mapping[str, Any]],
                problems: Sequence[str]) -> str:
    """Human-readable comparison of the gated rows plus the verdict."""
    lines = ["bench-diff: schedule-cache hit rates "
             "(baseline -> candidate)"]
    for name, base_row in sorted(baseline.items()):
        if base_row.get("cache_hit_rate") is None:
            continue
        cand_row = candidate.get(name, {})
        cand = cand_row.get("cache_hit_rate")
        cand_s = f"{float(cand):.3f}" if cand is not None else "missing"
        lines.append(f"  {name}: {float(base_row['cache_hit_rate']):.3f}"
                     f" -> {cand_s}")
    opt_rows = [(name, row) for name, row in sorted(baseline.items())
                if _REDUCTION_FIELDS[0] in row]
    if opt_rows:
        lines.append("bench-diff: optimizer reductions vs -O0 "
                     "(baseline -> candidate)")
        for name, base_row in opt_rows:
            cand_row = candidate.get(name, {})
            for field in _REDUCTION_FIELDS:
                if field not in base_row:
                    continue
                cand = cand_row.get(field)
                cand_s = (f"{float(cand):.3f}" if cand is not None
                          else "missing")
                lines.append(
                    f"  {name}.{field}: "
                    f"{float(base_row[field]):.3f} -> {cand_s}")
    if problems:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {p}" for p in problems)
    else:
        lines.append("no cache hit-rate regressions")
    return "\n".join(lines)
