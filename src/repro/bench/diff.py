"""Benchmark regression diffing (the CI gate behind ``repro bench-diff``).

Compares two ``BENCH_core.json`` snapshots row-by-row (rows are matched
on ``name``) and fails when a *semantic* perf counter regresses.  Wall
times are noisy on shared CI runners, so they are reported but never
gated; the gated quantities are

* the **schedule-cache hit rate** each backend row carries — a drop
  means the compiled-schedule memoization stopped covering the steady
  state;
* the **optimizer words/messages reduction** the ``*_opt_O2`` rows
  carry relative to their ``-O0`` baselines — a drop means a pipeline
  pass (halo validity, CSE, coalescing) stopped firing on the Jacobi or
  multigrid loop, which is a real (and otherwise silent) performance
  regression;
* the **SPMD speedup over the simulator** the ``jacobi_spmd_*`` rows
  carry (``speedup_vs_simulate``).  This is the one wall-clock-derived
  gate: it is a ratio of two timings from the *same* run on the *same*
  runner, so machine speed cancels out of it, and it is what the fused
  per-peer transfer plans exist to win.  Fused rows measured on a
  multicore runner (``multicore: true`` — at least one core per worker)
  must meet the absolute :data:`SPEEDUP_TARGET`; every speedup row is
  additionally held to a generous relative non-regression bound against
  the baseline snapshot when both snapshots came from the same runner
  class.  Single-core runners (where the SPMD backend cannot physically
  beat the in-process simulator) skip the absolute target but keep the
  non-regression bound;
* the **replay path** (``jacobi_spmd_replay_*`` rows, ``replay: true``)
  on multicore runners must at least match the simulator
  (:data:`REPLAY_SPEEDUP_TARGET`) and beat the baseline snapshot's
  fused dispatch row by :data:`REPLAY_WALL_FACTOR` in wall clock;
* the **self-adaptive layout makespans** the
  ``jacobi_imbalanced_{static,auto,general}`` rows carry
  (:func:`diff_autotune_makespans`): ``opt="auto"``'s modeled
  steady-state makespan must never exceed static BLOCK's, must stay
  within :data:`AUTOTUNE_REL_TOLERANCE` of the hand-tuned
  GENERAL_BLOCK row, and the auto row must actually have adapted.

Gates whose runner preconditions are not met do not silently vanish:
:func:`render_diff` prints a "dormant gates" section naming each one.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

__all__ = ["load_rows", "diff_autotune_makespans", "diff_cache_hit_rates",
           "diff_opt_reductions", "diff_speedups", "render_diff"]

#: absolute slack allowed on a hit-rate drop before it counts as a
#: regression (hit rates are deterministic, the slack covers probes that
#: legitimately change their statement mix by one compile)
DEFAULT_TOLERANCE = 0.02

#: the fused SPMD backend must beat the simulated run by this factor at
#: the Jacobi steady state — enforced only on multicore runners, where
#: the workers actually have cores to run on
SPEEDUP_TARGET = 2.0

#: relative slack on the speedup non-regression bound (speedups are
#: ratios of same-run wall clocks, so runner speed cancels, but OS
#: scheduling jitter does not — the bound catches collapses, not drift)
SPEEDUP_REL_TOLERANCE = 0.5

#: the worker-resident replay path must at least match the simulator
#: (``speedup_vs_simulate >= 1.0``) on multicore runners — it removes
#: all steady-state coordinator traffic, so losing to the sequential
#: simulator means the replay machinery itself regressed
REPLAY_SPEEDUP_TARGET = 1.0

#: the replay row must beat the baseline snapshot's fused *dispatch*
#: row wall clock by this factor (same workload, same trip count) —
#: only enforced when both rows ran multicore, where replay's removed
#: per-trip round trips are actually on the critical path
REPLAY_WALL_FACTOR = 2.0

#: relative slack the auto row's modeled makespan gets against the
#: hand-tuned GENERAL_BLOCK row (both rows model the same deterministic
#: splitter, so the slack covers only future splitter refinements)
AUTOTUNE_REL_TOLERANCE = 0.05


def load_rows(path: str) -> dict[str, Mapping[str, Any]]:
    """Load a bench JSON file into a name -> row mapping (a duplicated
    name keeps the last row, matching how the table is read)."""
    with open(path, "r", encoding="utf-8") as fh:
        rows = json.load(fh)
    return {str(row["name"]): row for row in rows}


def diff_cache_hit_rates(baseline: Mapping[str, Mapping[str, Any]],
                         candidate: Mapping[str, Mapping[str, Any]],
                         tolerance: float = DEFAULT_TOLERANCE
                         ) -> list[str]:
    """Regression messages for every gated row (empty = pass).

    A baseline row with a ``cache_hit_rate`` must exist in the candidate
    (silently dropping a gated probe would hide a regression) and its
    candidate rate must not fall more than ``tolerance`` below the
    baseline's.
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        base_rate = base_row.get("cache_hit_rate")
        if base_rate is None:
            continue
        cand_row = candidate.get(name)
        if cand_row is None:
            problems.append(
                f"{name}: gated row missing from the candidate run")
            continue
        cand_rate = cand_row.get("cache_hit_rate")
        if cand_rate is None:
            problems.append(
                f"{name}: candidate row lost its cache_hit_rate field")
            continue
        if float(cand_rate) < float(base_rate) - tolerance:
            problems.append(
                f"{name}: schedule-cache hit rate regressed "
                f"{float(base_rate):.3f} -> {float(cand_rate):.3f} "
                f"(tolerance {tolerance})")
    return problems


#: fields the optimizer rows are gated on
_REDUCTION_FIELDS = ("words_reduction_vs_O0", "msgs_reduction_vs_O0")


def diff_opt_reductions(baseline: Mapping[str, Mapping[str, Any]],
                        candidate: Mapping[str, Mapping[str, Any]],
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> list[str]:
    """Regression messages for the optimizer-reduction rows (empty =
    pass).

    Every baseline row carrying a ``words_reduction_vs_O0`` (the
    ``*_opt_O2`` rows) must exist in the candidate and keep each of its
    reduction ratios within ``tolerance`` of the baseline's — the
    reductions are deterministic pass outcomes, not wall-clock noise.
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        if _REDUCTION_FIELDS[0] not in base_row:
            continue
        cand_row = candidate.get(name)
        if cand_row is None:
            problems.append(
                f"{name}: optimizer-gated row missing from the candidate "
                "run")
            continue
        for field in _REDUCTION_FIELDS:
            base = base_row.get(field)
            if base is None:
                continue
            cand = cand_row.get(field)
            if cand is None:
                problems.append(
                    f"{name}: candidate row lost its {field} field")
                continue
            if float(cand) < float(base) - tolerance:
                problems.append(
                    f"{name}: {field} regressed "
                    f"{float(base):.3f} -> {float(cand):.3f} "
                    f"(tolerance {tolerance})")
    return problems


def diff_speedups(baseline: Mapping[str, Mapping[str, Any]],
                  candidate: Mapping[str, Mapping[str, Any]],
                  target: float = SPEEDUP_TARGET,
                  rel_tolerance: float = SPEEDUP_REL_TOLERANCE
                  ) -> list[str]:
    """Regression messages for the SPMD speedup rows (empty = pass).

    Two checks:

    * every baseline row carrying ``speedup_vs_simulate`` must survive
      into the candidate and, when both snapshots report the same
      ``multicore`` class (i.e. they are comparable runner-wise), must
      keep at least ``(1 - rel_tolerance)`` of the baseline speedup;
    * every *candidate* row that is fused (``fused: true``) and ran on
      a multicore runner (``multicore: true``) must meet the absolute
      ``target`` — the paper-level claim that compiled per-peer plans
      make real parallel execution beat the cost simulator.
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        base = base_row.get("speedup_vs_simulate")
        if base is None:
            continue
        cand_row = candidate.get(name)
        if cand_row is None:
            problems.append(
                f"{name}: speedup-gated row missing from the candidate "
                "run")
            continue
        cand = cand_row.get("speedup_vs_simulate")
        if cand is None:
            problems.append(
                f"{name}: candidate row lost its speedup_vs_simulate "
                "field")
            continue
        comparable = (base_row.get("multicore") is not None
                      and base_row.get("multicore")
                      == cand_row.get("multicore"))
        if comparable and float(cand) < float(base) * (1 - rel_tolerance):
            problems.append(
                f"{name}: speedup_vs_simulate regressed "
                f"{float(base):.3f}x -> {float(cand):.3f}x "
                f"(allowed {float(base) * (1 - rel_tolerance):.3f}x)")
    for name, cand_row in sorted(candidate.items()):
        cand = cand_row.get("speedup_vs_simulate")
        if cand is None or not cand_row.get("fused") \
                or not cand_row.get("multicore"):
            continue
        if cand_row.get("replay"):
            # replay rows get their own (weaker absolute, but
            # additionally wall-gated) targets below
            continue
        if float(cand) < target:
            problems.append(
                f"{name}: fused SPMD speedup {float(cand):.3f}x is below "
                f"the {target}x target on a multicore runner")
    problems += _diff_replay(baseline, candidate)
    return problems


def _diff_replay(baseline: Mapping[str, Mapping[str, Any]],
                 candidate: Mapping[str, Mapping[str, Any]]) -> list[str]:
    """Gates specific to the ``jacobi_spmd_replay_*`` rows: on multicore
    runners the replay path must at least match the simulator
    (:data:`REPLAY_SPEEDUP_TARGET`) and must beat the baseline
    snapshot's fused dispatch row by :data:`REPLAY_WALL_FACTOR` in wall
    clock (same workload and trip count, so the ratio isolates the
    per-trip coordinator round trips replay removes)."""
    problems: list[str] = []
    for name, cand_row in sorted(candidate.items()):
        if not cand_row.get("replay"):
            continue
        cand = cand_row.get("speedup_vs_simulate")
        if cand is None or not cand_row.get("multicore"):
            continue
        if float(cand) < REPLAY_SPEEDUP_TARGET:
            problems.append(
                f"{name}: replay speedup {float(cand):.3f}x is below the "
                f"{REPLAY_SPEEDUP_TARGET}x target on a multicore runner")
        dispatch_name = name.replace("_replay", "")
        base_row = baseline.get(dispatch_name)
        if (base_row is None or not base_row.get("multicore")
                or not base_row.get("seconds")
                or not cand_row.get("seconds")):
            continue
        ratio = float(base_row["seconds"]) / float(cand_row["seconds"])
        if ratio < REPLAY_WALL_FACTOR:
            problems.append(
                f"{name}: replay wall clock is only {ratio:.2f}x faster "
                f"than the baseline dispatch row {dispatch_name} "
                f"(target {REPLAY_WALL_FACTOR}x)")
    return problems


def diff_autotune_makespans(baseline: Mapping[str, Mapping[str, Any]],
                            candidate: Mapping[str, Mapping[str, Any]],
                            rel_tolerance: float = AUTOTUNE_REL_TOLERANCE
                            ) -> list[str]:
    """Regression messages for the self-adaptive layout rows (empty =
    pass).

    The ``jacobi_imbalanced_{static,auto,general}`` rows model the
    steady-state per-trip makespan of the layout each run ended in.
    Gates (all on the *candidate* snapshot — the modeled makespans are
    deterministic, so no cross-snapshot wall-clock comparison is
    needed):

    * ``auto``'s modeled makespan never exceeds static BLOCK's — the
      tuner must never make the layout worse than doing nothing;
    * ``auto`` stays within ``rel_tolerance`` of the hand-tuned
      GENERAL_BLOCK row — adaptation must land (essentially) the layout
      a user would have hand-computed;
    * the ``auto`` row reports at least one adaptation — a tuner that
      silently stopped firing would otherwise pass both bounds by
      inheriting the static layout of a balanced run.

    Baseline rows carrying ``modeled_makespan`` must also survive into
    the candidate; when the baseline predates the autotune rows the
    cross-snapshot check is skipped (the candidate-internal gates still
    run).
    """
    problems: list[str] = []
    for name, base_row in sorted(baseline.items()):
        if "modeled_makespan" not in base_row:
            continue
        if name not in candidate:
            problems.append(
                f"{name}: autotune-gated row missing from the candidate "
                "run")
    rows = {name: row for name, row in candidate.items()
            if "modeled_makespan" in row}
    if not rows:
        return problems
    static = rows.get("jacobi_imbalanced_static")
    auto = rows.get("jacobi_imbalanced_auto")
    general = rows.get("jacobi_imbalanced_general")
    if static is None or auto is None or general is None:
        problems.append(
            "autotune rows are incomplete in the candidate run: need "
            "jacobi_imbalanced_{static,auto,general}, have "
            + ", ".join(sorted(rows)))
        return problems
    auto_ms = float(auto["modeled_makespan"])
    static_ms = float(static["modeled_makespan"])
    general_ms = float(general["modeled_makespan"])
    if auto_ms > static_ms:
        problems.append(
            f"jacobi_imbalanced_auto: modeled makespan {auto_ms:.3f} is "
            f"worse than the static BLOCK row's {static_ms:.3f} — the "
            "tuner degraded the layout")
    if auto_ms > general_ms * (1.0 + rel_tolerance):
        problems.append(
            f"jacobi_imbalanced_auto: modeled makespan {auto_ms:.3f} "
            f"misses the hand-tuned GENERAL_BLOCK row's {general_ms:.3f} "
            f"by more than {rel_tolerance:.0%}")
    if int(auto.get("adaptations", 0)) < 1:
        problems.append(
            "jacobi_imbalanced_auto: the tuner emitted no adaptation on "
            "the imbalanced workload")
    return problems


def render_diff(baseline: Mapping[str, Mapping[str, Any]],
                candidate: Mapping[str, Mapping[str, Any]],
                problems: Sequence[str]) -> str:
    """Human-readable comparison of the gated rows plus the verdict."""
    lines = ["bench-diff: schedule-cache hit rates "
             "(baseline -> candidate)"]
    for name, base_row in sorted(baseline.items()):
        if base_row.get("cache_hit_rate") is None:
            continue
        cand_row = candidate.get(name, {})
        cand = cand_row.get("cache_hit_rate")
        cand_s = f"{float(cand):.3f}" if cand is not None else "missing"
        lines.append(f"  {name}: {float(base_row['cache_hit_rate']):.3f}"
                     f" -> {cand_s}")
    opt_rows = [(name, row) for name, row in sorted(baseline.items())
                if _REDUCTION_FIELDS[0] in row]
    if opt_rows:
        lines.append("bench-diff: optimizer reductions vs -O0 "
                     "(baseline -> candidate)")
        for name, base_row in opt_rows:
            cand_row = candidate.get(name, {})
            for field in _REDUCTION_FIELDS:
                if field not in base_row:
                    continue
                cand = cand_row.get(field)
                cand_s = (f"{float(cand):.3f}" if cand is not None
                          else "missing")
                lines.append(
                    f"  {name}.{field}: "
                    f"{float(base_row[field]):.3f} -> {cand_s}")
    speedup_names = sorted(set(
        name for name, row in list(baseline.items())
        + list(candidate.items())
        if row.get("speedup_vs_simulate") is not None))
    if speedup_names:
        lines.append("bench-diff: SPMD speedup vs simulate "
                     "(baseline -> candidate)")
        for name in speedup_names:
            base = baseline.get(name, {}).get("speedup_vs_simulate")
            cand = candidate.get(name, {}).get("speedup_vs_simulate")
            base_s = f"{float(base):.3f}x" if base is not None else "-"
            cand_s = (f"{float(cand):.3f}x" if cand is not None
                      else "missing")
            flags = []
            row = candidate.get(name, {})
            if row.get("fused"):
                flags.append("fused")
            if row.get("multicore"):
                flags.append("multicore")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {name}: {base_s} -> {cand_s}{suffix}")
    auto_names = sorted(set(
        name for name, row in list(baseline.items())
        + list(candidate.items())
        if "modeled_makespan" in row))
    if auto_names:
        lines.append("bench-diff: autotune modeled makespans "
                     "(baseline -> candidate)")
        for name in auto_names:
            base = baseline.get(name, {}).get("modeled_makespan")
            cand = candidate.get(name, {}).get("modeled_makespan")
            base_s = f"{float(base):.3f}" if base is not None else "-"
            cand_s = (f"{float(cand):.3f}" if cand is not None
                      else "missing")
            adapt = candidate.get(name, {}).get("adaptations")
            suffix = (f"  [{adapt} adaptation(s)]"
                      if adapt is not None else "")
            lines.append(f"  {name}: {base_s} -> {cand_s}{suffix}")
    dormant = _dormant_gates(candidate)
    if dormant:
        lines.append("bench-diff: dormant gates "
                     "(preconditions not met on this runner)")
        lines.extend(dormant)
    if problems:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {p}" for p in problems)
    else:
        lines.append("no regressions in the gated counters")
    return "\n".join(lines)


def _dormant_gates(candidate: Mapping[str, Mapping[str, Any]]
                   ) -> list[str]:
    """Lines naming every speedup gate that exists but is *not* armed
    for this candidate run — a gate that silently skips looks exactly
    like a gate that passed, so the report says which is which."""
    out: list[str] = []
    for name, row in sorted(candidate.items()):
        if row.get("speedup_vs_simulate") is None or row.get("multicore"):
            continue
        if row.get("replay"):
            gate = (f"{REPLAY_SPEEDUP_TARGET}x replay speedup + "
                    f"{REPLAY_WALL_FACTOR}x wall vs dispatch")
        elif row.get("fused"):
            gate = f"{SPEEDUP_TARGET}x fused speedup"
        else:
            continue
        cpus = row.get("cpu_count", "?")
        out.append(f"  {name}: {gate} gate dormant — multicore=false "
                   f"({cpus} cpu(s) for {row.get('workers')} workers)")
    return out
