"""Experiment harness (substrate S11).

:mod:`~repro.bench.harness` renders result tables;
:mod:`~repro.bench.experiments` holds the registry of experiments E1-E12
(one per paper artifact, see DESIGN.md §3), each returning an
:class:`~repro.bench.harness.ExperimentResult` whose rows regenerate the
corresponding example/claim.  The pytest-benchmark files under
``benchmarks/`` wrap these, and ``python -m repro`` prints them.
"""

from repro.bench.harness import ExperimentResult, format_table
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "format_table", "EXPERIMENTS",
           "run_experiment"]
