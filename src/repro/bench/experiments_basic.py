"""Experiments E1-E6 (see DESIGN.md §3 for the paper-artifact mapping)."""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.directives.analyzer import run_program
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.redistribute import price_remap
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.workloads.irregular import (
    imbalance_of_partition,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)

__all__ = ["e01_distribution_formats", "e02_block_definitions",
           "e03_general_block", "e04_cyclic", "e05_alignment",
           "e06_allocatable"]


# ----------------------------------------------------------------------
# E1 — §4 distribution-format examples
# ----------------------------------------------------------------------
def e01_distribution_formats(n: int = 100, nop: int = 8) -> ExperimentResult:
    """Run the four §4 example directives and tabulate the ownership."""
    src = f"""
      PARAMETER (NOP = {nop})
      REAL A({n}), B({n}), C({n}), E({n},10), F({n},10)
      INTEGER S(1:3)
!HPF$ PROCESSORS Q(16)
!HPF$ DISTRIBUTE A(BLOCK)
!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S)) TO Q(1:4)
!HPF$ DISTRIBUTE (BLOCK, :) :: E,F
"""
    s_bounds = [int(n * 0.3), int(n * 0.6), int(n * 0.9)]
    res = run_program(src, n_processors=16, inputs={"S": s_bounds})
    ds = res.ds
    rows = []
    checks = {}
    for name, directive in (("A", "BLOCK"),
                            ("B", "CYCLIC TO Q(1:NOP:2)"),
                            ("C", f"GENERAL_BLOCK({s_bounds})"),
                            ("E", "(BLOCK, :)")):
        dist = ds.distribution_of(name)
        pmap = dist.primary_owner_map()
        units = dist.processors()
        extents = [dist.local_extent(u) for u in units]
        rows.append({
            "array": name,
            "directive": directive,
            "procs_used": len(units),
            "min_extent": min(extents),
            "max_extent": max(extents),
            "first_owners": " ".join(str(v) for v in
                                     pmap.reshape(-1, order="F")[:8]),
        })
    checks["block_is_contiguous"] = bool(
        np.all(np.diff(ds.owner_map("A")) >= 0))
    # B goes only to the odd-position section Q(1:NOP:2)
    b_units = set(ds.distribution_of("B").processors())
    checks["section_target_respected"] = b_units == set(range(0, nop, 2))
    c_map = ds.owner_map("C")
    checks["general_block_bounds"] = (
        int(c_map[s_bounds[0] - 1]) == 0 and int(c_map[s_bounds[0]]) == 1)
    e_map = ds.owner_map("E")
    checks["colon_dim_not_distributed"] = bool(
        (e_map == e_map[:, :1]).all())
    return ExperimentResult(
        "E1", "§4 distribution-format examples",
        rows=rows,
        headline=("All four §4 directives parse and produce the specified "
                  "mappings, including distribution to a processor "
                  "section Q(1:NOP:2)."),
        checks=checks)


# ----------------------------------------------------------------------
# E2 — BLOCK definitions: HPF vs Vienna (§4.1.1 + §8 footnote)
# ----------------------------------------------------------------------
def e02_block_definitions(np_: int = 8,
                          n_values: tuple[int, ...] = (30, 31, 32, 33, 40)
                          ) -> ExperimentResult:
    """The §8 footnote: '[with] the Vienna Fortran definition of BLOCK
    ... the HPF definition will cause a problem if and only if the number
    of processors divides N exactly.'

    Mechanism: for the staggered pair P(1:N) / U(0:N), the HPF ceiling
    block size q = ceil(extent/NP) *grows* when going from N to N+1
    elements exactly when NP | N, so the two partitions' boundaries drift
    apart cumulatively; otherwise (and always under the balanced Vienna
    definition) corresponding elements stay within one block of each
    other, i.e. within the stencil's neighbour halo.
    """
    from repro.engine.executor import SimulatedExecutor
    from repro.machine.simulator import DistributedMachine
    from repro.workloads.stencil import staggered_grid_case

    rows = []
    checks = {}
    grid = 4 if np_ % 4 == 0 else 2
    for n in n_values:
        divides = n % np_ == 0
        row = {"N": n, "NP": np_, "NP_divides_N": divides}
        drifts = {}
        for variant, label in ((BlockVariant.HPF, "hpf"),
                               (BlockVariant.VIENNA, "vienna")):
            bp = Block(variant=variant).bind(Triplet(1, n), np_)
            bu = Block(variant=variant).bind(Triplet(0, n), np_)
            drift = max(abs(bu.owner_coord(i) - bp.owner_coord(i))
                        for i in range(1, n + 1))
            drifts[label] = drift
            row[f"{label}_drift"] = drift
        bp = Block().bind(Triplet(1, n), np_)
        bu = Block().bind(Triplet(0, n), np_)
        row["hpf_qP"] = bp.block_size
        row["hpf_qU"] = bu.block_size
        # measure the footnote's consequence on the machine: staggered
        # stencil traffic under both definitions (grid of `grid` procs
        # per dimension)
        words = {}
        for strategy, label in (("direct-hpf-block", "hpf"),
                                ("direct-block", "vienna")):
            case = staggered_grid_case(n, grid, grid, strategy)
            machine = DistributedMachine(MachineConfig(grid * grid))
            report = SimulatedExecutor(case.ds, machine).execute(
                case.statement)
            words[label] = report.total_words
            row[f"{label}_stencil_words"] = report.total_words
        rows.append(row)
        # the exact footnote mechanism: the ceiling grows iff NP | N
        checks.setdefault("hpf_block_grows_iff_np_divides_n", True)
        checks["hpf_block_grows_iff_np_divides_n"] &= (
            (bu.block_size > bp.block_size) == divides)
        # ... and its measured consequence: extra traffic iff grid | N
        checks.setdefault("hpf_traffic_worse_iff_divisible", True)
        checks["hpf_traffic_worse_iff_divisible"] &= (
            (words["hpf"] > words["vienna"]) == (n % grid == 0))
        if divides:
            checks[f"N{n}_vienna_perfect"] = drifts["vienna"] == 0
            checks[f"N{n}_hpf_drifts"] = drifts["hpf"] > drifts["vienna"]
    checks["vienna_drift_bounded_by_1"] = all(
        r["vienna_drift"] <= 1 for r in rows)
    return ExperimentResult(
        "E2", "BLOCK definitions: HPF ceiling vs Vienna balanced",
        rows=rows,
        headline=("The HPF ceiling block size grows from the [1:N] to the "
                  "[0:N] partition exactly when NP | N, letting the "
                  "partitions drift apart (drift 2 at N=32, NP=8); the "
                  "Vienna definition keeps drift <= 1 always and 0 in "
                  "the divisible case — the §8 footnote."),
        checks=checks)


# ----------------------------------------------------------------------
# E3 — GENERAL_BLOCK load balancing
# ----------------------------------------------------------------------
def e03_general_block(n: int = 4096, np_: int = 8) -> ExperimentResult:
    """BLOCK vs GENERAL_BLOCK imbalance on irregular per-index costs."""
    rows = []
    checks = {}
    profiles = {
        "triangular": triangular_costs(n),
        "power_law": power_law_costs(n, 2.0),
        "stepped": stepped_costs(n, 0.1, 50.0, seed=7),
    }
    dim = Triplet(1, n)
    for label, costs in profiles.items():
        block = Block().bind(dim, np_)
        owners_block = block.owner_coord_array(dim.values())
        imb_b, _ = imbalance_of_partition(costs, owners_block, np_)
        gb = GeneralBlock.balanced_for_costs(costs, np_).bind(dim, np_)
        owners_gb = gb.owner_coord_array(dim.values())
        imb_g, _ = imbalance_of_partition(costs, owners_gb, np_)
        rows.append({
            "profile": label, "N": n, "NP": np_,
            "block_imbalance": imb_b,
            "general_block_imbalance": imb_g,
            "improvement_x": imb_b / imb_g,
        })
        checks[f"{label}_gb_wins"] = imb_g < imb_b
        checks[f"{label}_gb_near_optimal"] = imb_g < 1.35
    return ExperimentResult(
        "E3", "GENERAL_BLOCK irregular blocks for load balancing "
              "(§4.1.2)",
        rows=rows,
        headline=("GENERAL_BLOCK bounds chosen from the cost profile "
                  "bring max/mean work close to 1.0 where equal-size "
                  "BLOCKs leave up to ~2x imbalance — the load-balancing "
                  "use the paper cites [13]."),
        checks=checks)


# ----------------------------------------------------------------------
# E4 — CYCLIC(k) semantics (§4.1.3)
# ----------------------------------------------------------------------
def e04_cyclic(n: int = 1000, np_: int = 7) -> ExperimentResult:
    rows = []
    checks = {}
    dim = Triplet(1, n)
    for k in (1, 2, 3, 5):
        cd = Cyclic(k).bind(dim, np_)
        owners = cd.owner_coord_array(dim.values())
        extents = [cd.local_extent(p) for p in range(np_)]
        # round-robin invariant: owner(i + k*NP) == owner(i)
        period_ok = bool(np.array_equal(owners[:n - k * np_],
                                        owners[k * np_:]))
        # segment invariant: within each k-segment the owner is constant
        seg_ok = all(
            len(set(owners[s:s + k])) == 1
            for s in range(0, n - k, k))
        rows.append({
            "k": k, "N": n, "NP": np_,
            "min_extent": min(extents), "max_extent": max(extents),
            "periodic": period_ok, "segments_intact": seg_ok,
        })
        checks[f"cyclic{k}_periodic"] = period_ok
        checks[f"cyclic{k}_segments"] = seg_ok
        checks[f"cyclic{k}_balance"] = max(extents) - min(extents) <= k
    return ExperimentResult(
        "E4", "CYCLIC(k) block-cyclic semantics (§4.1.3)",
        rows=rows,
        headline=("k-segments are dealt round-robin with period k*NP and "
                  "per-processor extents within one segment of each "
                  "other."),
        checks=checks)


# ----------------------------------------------------------------------
# E5 — §5.1 alignment examples
# ----------------------------------------------------------------------
def e05_alignment(n: int = 64, m: int = 48,
                  np_: int = 8) -> ExperimentResult:
    """The two worked examples of §5.1, executed end to end."""
    src = f"""
      REAL A(1:{n}), D(1:{n},1:{m})
      REAL B(1:{n},1:{m}), E(1:{n})
!HPF$ PROCESSORS PR({np_})
!HPF$ ALIGN A(:) WITH D(:,*)
!HPF$ ALIGN B(:,*) WITH E(:)
!HPF$ DISTRIBUTE D(BLOCK,:) TO PR
!HPF$ DISTRIBUTE E(CYCLIC) TO PR
"""
    res = run_program(src, n_processors=np_)
    ds = res.ds
    rows = []
    checks = {}
    # Example 1: A(:) WITH D(:,*) — a copy of A aligned with every column
    a_dist = ds.distribution_of("A")
    img = ds.forest.alignment_of("A").image((2,))
    rows.append({
        "example": "ALIGN A(:) WITH D(:,*)",
        "image_of": "A(2)",
        "image_size": len(img),
        "replicated": a_dist.is_replicated,
        "owners_A2": len(a_dist.owners((2,))),
    })
    checks["replication_image"] = img == frozenset(
        (2, k) for k in range(1, m + 1))
    # D's columns are collapsed (':' format), so every copy of A(2) still
    # lands on D(2,:)'s single owner — the CONSTRUCT union
    checks["construct_union"] = a_dist.owners((2,)) == ds.owners("D",
                                                                 (2, 1))
    # Example 2: B(:,*) WITH E(:) — collapse
    b_dist = ds.distribution_of("B")
    img2 = ds.forest.alignment_of("B").image((2, 3))
    rows.append({
        "example": "ALIGN B(:,*) WITH E(:)",
        "image_of": "B(2,3)",
        "image_size": len(img2),
        "replicated": b_dist.is_replicated,
        "owners_B23": len(b_dist.owners((2, 3))),
    })
    checks["collapse_image"] = img2 == frozenset({(2,)})
    checks["collapse_follows_base"] = (
        b_dist.owners((2, 3)) == ds.owners("E", (2,)))
    checks["whole_row_collocated"] = all(
        b_dist.owners((5, j)) == ds.owners("E", (5,))
        for j in range(1, m + 1, 7))
    return ExperimentResult(
        "E5", "§5.1 alignment examples (replication and collapse)",
        rows=rows,
        headline=("ALIGN A(:) WITH D(:,*) replicates A over all M "
                  "columns; ALIGN B(:,*) WITH E(:) collapses B's second "
                  "axis — both reduced forms match the paper's "
                  "derivations exactly."),
        checks=checks)


# ----------------------------------------------------------------------
# E6 — §6 allocatable example, verbatim, with remap pricing
# ----------------------------------------------------------------------
def e06_allocatable(m: int = 4, n: int = 8,
                    np_: int = 32) -> ExperimentResult:
    src = """
      REAL,ALLOCATABLE(:,:) :: A,B
      REAL,ALLOCATABLE(:) :: C,D
!HPF$ PROCESSORS PR(32)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
!HPF$ DISTRIBUTE(BLOCK) :: C,D
!HPF$ DYNAMIC B,C

      READ 6,M,N

      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
"""
    res = run_program(src, n_processors=np_, inputs={"M": m, "N": n})
    ds = res.ds
    rows = []
    checks = {}
    for event in ds.remap_events:
        matrix, moved = price_remap(event, np_)
        rows.append({
            "event": event.reason, "array": event.array,
            "elements_moved": moved,
            "messages": int(np.count_nonzero(matrix)),
        })
    trees = ds.forest_snapshot()
    checks["B_aligned_to_A"] = trees.get("A") == frozenset({"B"})
    checks["C_degenerate_after_redistribute"] = ("C" in trees
                                                 and not trees["C"])
    # collocation invariant of the REALIGN: B(i,j) with A(M*i, M*(j-1)+1)
    checks["realign_collocation"] = all(
        ds.owners("B", (i, j)) <= ds.owners("A", (m * i, m * (j - 1) + 1))
        for i in range(1, n + 1, 3) for j in range(1, n + 1, 3))
    checks["allocations_moved_nothing"] = all(
        r["elements_moved"] == 0 for r in rows
        if r["event"] == "ALLOCATE")
    checks["redistribute_moved_data"] = any(
        r["elements_moved"] > 0 for r in rows
        if r["event"] == "REDISTRIBUTE")
    return ExperimentResult(
        "E6", "§6 allocatable-array example, verbatim",
        rows=rows,
        headline=("The §6 program runs end to end: spec-part attributes "
                  "propagate to ALLOCATE instances, REALIGN attaches B "
                  "to A with the M::M alignment, REDISTRIBUTE moves "
                  "exactly the elements whose owner changed."),
        checks=checks)
