"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the subsystem that failed.  The hierarchy mirrors the
paper's structure: mapping errors (distribution / alignment semantics, §2-§5),
directive errors (the front end, §3-§5 syntax), allocation errors (§6),
procedure errors (§7), template errors (the §8 baseline) and machine errors
(the simulated distributed-memory substrate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class MappingError(ReproError):
    """A distribution or alignment is semantically invalid.

    Raised e.g. for rank mismatches between a distributee and its target
    (§4.1), skew alignments (§5.1), aligning to a secondary array
    (§2.4 constraint 1), or realigning a non-DYNAMIC array (§5.2).
    """


class ConformanceError(MappingError):
    """A program violates an HPF-conformance rule that is checkable.

    Used for the inheritance-matching mode of §7 (``DISTRIBUTE A * d``):
    when the incoming distribution does not match the declared one and no
    interface block authorises a remap, "the program is not HPF-conforming".
    """


class AlignmentError(MappingError):
    """An ALIGN/REALIGN directive is invalid (extent rule of §5.1, skew
    alignments, dummies occurring in more than one base subscript, ...)."""


class DistributionError(MappingError):
    """A DISTRIBUTE/REDISTRIBUTE directive is invalid (format-list length,
    GENERAL_BLOCK bound vectors that do not partition the domain, ...)."""


class DirectiveError(ReproError):
    """A directive or declaration could not be parsed or analysed.

    ``code`` ties the raise site to the stable diagnostic registry of
    :mod:`repro.engine.diagnostics` (``RPR001``..), so the same hazard
    carries the same code whether it surfaces as a lint finding, a
    Session front-end exception or a directive front-end exception.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None, text: str | None = None,
                 code: str | None = None) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.text = text
        self.code = code
        location = ""
        if line is not None:
            location = f" at line {line}" + (
                f", column {column}" if column is not None else "")
        snippet = f"\n    {text}" if text else ""
        tag = f" [{code}]" if code else ""
        super().__init__(f"{message}{location}{tag}{snippet}")


class AllocationError(ReproError):
    """ALLOCATE/DEALLOCATE misuse (double allocation, deallocating an array
    that was never allocated, allocating a non-ALLOCATABLE array, §6)."""


class ProcedureError(ReproError):
    """Procedure-boundary misuse (argument count/rank mismatches, restoring
    a distribution for an argument that was not remapped, §7)."""


class TemplateError(ReproError):
    """Errors specific to the HPF template baseline of §8.

    Notably raised when a program attempts the operations the paper proves
    impossible in the template model: aligning an allocatable array of
    run-time shape to a fixed-shape template (§8.2 problem 1) or passing a
    template across a procedure boundary (§8.2 problem 2).
    """


class MachineError(ReproError):
    """The simulated machine was asked to do something unphysical (message
    to a nonexistent processor, reading an element from a processor that
    does not own it, ...)."""
