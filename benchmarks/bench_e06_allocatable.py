"""E6 — the §6 allocatable-array example, verbatim, with remap pricing."""

from conftest import assert_and_print
from repro.directives.analyzer import run_program

SRC = """
      REAL,ALLOCATABLE(:,:) :: A,B
      REAL,ALLOCATABLE(:) :: C,D
!HPF$ PROCESSORS PR(32)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
!HPF$ DISTRIBUTE(BLOCK) :: C,D
!HPF$ DYNAMIC B,C

      READ 6,M,N

      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
"""


def test_e06_claims(experiment):
    assert_and_print(experiment("E6"))


def test_e06_bench_program_execution(benchmark):
    """Parse + execute the whole §6 program (front end + semantics)."""
    res = benchmark(run_program, SRC, n_processors=32,
                    inputs={"M": 4, "N": 8})
    assert res.ds.forest_snapshot()["A"] == frozenset({"B"})


def test_e06_bench_remap_pricing(benchmark):
    """Exact data-movement pricing of the REDISTRIBUTE C(CYCLIC)."""
    from repro.engine.redistribute import price_remap
    res = run_program(SRC, n_processors=32, inputs={"M": 4, "N": 8})
    event = [e for e in res.ds.remap_events
             if e.reason == "REDISTRIBUTE"][-1]
    matrix, moved = benchmark(price_remap, event, 32)
    assert moved > 0
