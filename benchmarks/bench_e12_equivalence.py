"""E12 — template-free equivalence (the paper's core claim)."""

from conftest import assert_and_print
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.distributions.cyclic import Cyclic
from repro.templates.equivalence import verify_equivalence
from repro.templates.model import TemplateDataSpace


def test_e12_claims(experiment):
    assert_and_print(experiment("E12", cases=12, np_=6))


def _case(n=5000, np_=8):
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.template("T", 2 * n + 8)
    tds.declare("X", n)
    spec = AlignSpec("X", [AxisDummy("I")], "T",
                     [BaseExpr(2 * Dummy("I") + 3)])
    tds.align(spec)
    tds.distribute("T", [Cyclic(3)], to="PR")
    return tds, spec


def test_e12_bench_witness_verification(benchmark):
    """Full witness derivation + extensional ownership comparison."""
    tds, spec = _case()
    result = benchmark(verify_equivalence, tds, "T", [spec])
    assert result == {"X": True}
