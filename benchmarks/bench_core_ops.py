"""Cross-cutting engine benchmarks: comm-set computation strategies.

The analytic (regular-section) path must be array-size independent while
the oracle scales with N — the quantitative content of the paper's
"can be implemented efficiently [13]" remark.  The compiled-schedule
benchmarks quantify the schedule cache: construction is paid once per
(layout, statement) and iterations 2..N are dictionary hits, so repeated
statements beat per-statement oracle recomputation by orders of
magnitude while producing bit-identical message-count matrices.
"""

import time

import numpy as np

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.assignment import Assignment
from repro.engine.commsets import (
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.fortran.section import full_section
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


def _pair(n, np_):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("X", n)
    ds.declare("Y", n)
    ds.distribute("X", [Block()], to="PR")
    ds.distribute("Y", [Cyclic()], to="PR")
    return ds


def test_bench_commsets_oracle_1e6(benchmark):
    ds = _pair(1_000_000, 16)
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sec = full_section(ds.arrays["X"].domain)
    m, _, _ = benchmark(comm_matrix, dl, sec, dr, sec, 16)
    assert m.sum() > 0


def test_bench_commsets_analytic_1e6(benchmark):
    """Same traffic, computed in closed form (size-independent)."""
    ds = _pair(1_000_000, 16)
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sec = full_section(ds.arrays["X"].domain)

    def run():
        return words_matrix_from_pieces(
            analytic_comm_sets(dl, sec, dr, sec), 16)

    m = benchmark(run)
    m2, _, _ = comm_matrix(dl, sec, dr, sec, 16)
    np.testing.assert_array_equal(m, m2)


def test_bench_simulated_statement(benchmark):
    """Full simulated execution of X(2:N) = Y(1:N-1), N=1e6."""
    n = 1_000_000
    ds = _pair(n, 16)
    machine = DistributedMachine(MachineConfig(16))
    ex = SimulatedExecutor(ds, machine)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    report = benchmark(ex.execute, stmt)
    assert report.total_words > 0


def test_bench_message_accurate_statement(benchmark):
    """Payload-routed execution of the same statement (values travel
    through explicit messages), N=1e5."""
    from repro.engine.distexec import MessageAccurateExecutor
    n = 100_000
    ds = _pair(n, 16)
    machine = DistributedMachine(MachineConfig(16))
    ex = MessageAccurateExecutor(ds, machine)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    report = benchmark(ex.execute, stmt)
    assert report.total_words > 0


def test_bench_schedule_compile_1e6(benchmark):
    """Cold schedule compilation (cache cleared each round), N=1e6."""
    from repro.engine.schedule import schedule_for
    n = 1_000_000
    ds = _pair(n, 16)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))

    def run():
        ds.schedule_cache.clear()
        return schedule_for(ds, stmt, 16)

    sched = benchmark(run)
    assert sched.total_words > 0


def test_bench_schedule_cached_1e6(benchmark):
    """Steady-state schedule lookup (the Jacobi iteration 2..N path)."""
    from repro.engine.schedule import schedule_for
    n = 1_000_000
    ds = _pair(n, 16)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    warm = schedule_for(ds, stmt, 16)
    sched = benchmark(schedule_for, ds, stmt, 16)
    assert sched is warm


def test_schedule_speedup_and_exactness_claims():
    """The PR's acceptance claims, measured at the largest seed size:

    * commset/ownership construction through the compiled schedule is
      >= 3x faster than per-statement oracle recomputation for both the
      BLOCK and the CYCLIC side;
    * the schedule's message-count matrices are bit-identical to the
      seed implementation's (oracle) matrices.
    """
    from repro.engine.schedule import schedule_for
    n = 1_000_000
    ds = _pair(n, 16)
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    lhs_sec = stmt.lhs.section(ds)
    ref_sec = stmt.rhs.section(ds)

    def best_of(fn, repeats=3):
        best = float("inf")
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    # seed behavior: recompute the oracle matrix per statement instance
    t_oracle, (oracle_matrix, _, _) = best_of(
        lambda: comm_matrix(dl, lhs_sec, dr, ref_sec, 16))

    # steady state: schedule cache hit (iterations 2..N)
    schedule_for(ds, stmt, 16)
    t_cached, sched = best_of(lambda: schedule_for(ds, stmt, 16))

    assert t_oracle >= 3 * t_cached, \
        f"schedule hit {t_cached:.6f}s not 3x faster than oracle " \
        f"{t_oracle:.6f}s"
    np.testing.assert_array_equal(sched.refs[0].words, oracle_matrix)

    # ownership construction: memoized dense map vs cold recompute,
    # for the BLOCK and the CYCLIC distribution separately
    for dist in (dl, dr):
        t_cold, cold = best_of(lambda: dist._compute_owner_map())
        t_hit, hit = best_of(dist.primary_owner_map)
        assert t_cold >= 3 * t_hit, \
            f"{dist.describe()}: cached owner map {t_hit:.6f}s not 3x " \
            f"faster than cold {t_cold:.6f}s"
        np.testing.assert_array_equal(hit, cold)
