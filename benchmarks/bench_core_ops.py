"""Cross-cutting engine benchmarks: comm-set computation strategies.

The analytic (regular-section) path must be array-size independent while
the oracle scales with N — the quantitative content of the paper's
"can be implemented efficiently [13]" remark.
"""

import numpy as np

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.assignment import Assignment
from repro.engine.commsets import (
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.fortran.section import full_section
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


def _pair(n, np_):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("X", n)
    ds.declare("Y", n)
    ds.distribute("X", [Block()], to="PR")
    ds.distribute("Y", [Cyclic()], to="PR")
    return ds


def test_bench_commsets_oracle_1e6(benchmark):
    ds = _pair(1_000_000, 16)
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sec = full_section(ds.arrays["X"].domain)
    m, _, _ = benchmark(comm_matrix, dl, sec, dr, sec, 16)
    assert m.sum() > 0


def test_bench_commsets_analytic_1e6(benchmark):
    """Same traffic, computed in closed form (size-independent)."""
    ds = _pair(1_000_000, 16)
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sec = full_section(ds.arrays["X"].domain)

    def run():
        return words_matrix_from_pieces(
            analytic_comm_sets(dl, sec, dr, sec), 16)

    m = benchmark(run)
    m2, _, _ = comm_matrix(dl, sec, dr, sec, 16)
    np.testing.assert_array_equal(m, m2)


def test_bench_simulated_statement(benchmark):
    """Full simulated execution of X(2:N) = Y(1:N-1), N=1e6."""
    n = 1_000_000
    ds = _pair(n, 16)
    machine = DistributedMachine(MachineConfig(16))
    ex = SimulatedExecutor(ds, machine)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    report = benchmark(ex.execute, stmt)
    assert report.total_words > 0


def test_bench_message_accurate_statement(benchmark):
    """Payload-routed execution of the same statement (values travel
    through explicit messages), N=1e5."""
    from repro.engine.distexec import MessageAccurateExecutor
    n = 100_000
    ds = _pair(n, 16)
    machine = DistributedMachine(MachineConfig(16))
    ex = MessageAccurateExecutor(ds, machine)
    stmt = Assignment(ArrayRef("X", (Triplet(2, n),)),
                      ArrayRef("Y", (Triplet(1, n - 1),)))
    report = benchmark(ex.execute, stmt)
    assert report.total_words > 0
