"""E8 — the §8.1.1 staggered grid (Thole example), the paper's flagship.

Regenerates the locality/traffic series across the four mapping
strategies, checks the "worst possible effect" claim for the
(CYCLIC,CYCLIC) template, and times the simulated stencil execution under
the best and worst mappings plus the ghost-region (overlap) analysis.
"""

from conftest import assert_and_print
from repro.engine.executor import SimulatedExecutor
from repro.engine.overlap import overlap_plan
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import staggered_grid_case


def test_e08_claims(experiment):
    assert_and_print(experiment("E8", n=128, rows_cols=(4, 4)))


def _run(strategy, n=256, rows=4, cols=4):
    case = staggered_grid_case(n, rows, cols, strategy)
    machine = DistributedMachine(MachineConfig(rows * cols))
    return SimulatedExecutor(case.ds, machine).execute(case.statement)


def test_e08_bench_direct_block(benchmark):
    report = benchmark(_run, "direct-block")
    assert report.locality > 0.9


def test_e08_bench_template_cyclic(benchmark):
    report = benchmark(_run, "template-cyclic")
    assert report.locality == 0.0


def test_e08_bench_overlap_analysis(benchmark):
    """SUPERB-style halo planning for the equal-shape Jacobi stencil
    (the staggered arrays have unequal extents, outside the halo form)."""
    from repro.workloads.stencil import jacobi_case
    case = jacobi_case(256, 4, 4)
    plan = benchmark(overlap_plan, case.ds, case.statement, 16)
    assert plan is not None and plan.total_words > 0
