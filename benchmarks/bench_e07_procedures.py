"""E7 — §7 procedure-boundary mapping modes."""

from conftest import assert_and_print
from repro.core.dataspace import DataSpace
from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic


def test_e07_claims(experiment):
    assert_and_print(experiment("E7"))


def _caller(n, np_):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.distribute("A", [Block()], to="PR")
    return ds


def test_e07_bench_inherit_call(benchmark):
    """Call overhead with inheritance (the free path), N=1e5."""
    ds = _caller(100_000, 16)
    proc = Procedure("S", [DummySpec("X", DummyMode.INHERIT)],
                     lambda frame, x: None)
    rec = benchmark(proc.call, ds, "A")
    assert not rec.entry_remaps


def test_e07_bench_explicit_call(benchmark):
    """Call with an explicit CYCLIC dummy: remap check + bookkeeping."""
    ds = _caller(100_000, 16)
    proc = Procedure("S", [DummySpec("X", DummyMode.EXPLICIT,
                                     formats=(Cyclic(),), to="PR")],
                     lambda frame, x: None)
    rec = benchmark(proc.call, ds, "A")
    assert rec.entry_remaps and rec.exit_restores
