"""E11 — alignment trees of height 1 vs draft-HPF chains."""

from conftest import assert_and_print
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.templates.model import TemplateDataSpace

N = 50_000
DEPTH = 32
NP = 8


def test_e11_claims(experiment):
    assert_and_print(experiment("E11"))


def _chain():
    tds = TemplateDataSpace(NP)
    tds.processors("PR", NP)
    tds.declare("A0", N + DEPTH)
    tds.distribute("A0", [Block()], to="PR")
    i = Dummy("I")
    for d in range(1, DEPTH + 1):
        tds.declare(f"A{d}", N + DEPTH - d)
        tds.align(AlignSpec(f"A{d}", [AxisDummy("I")], f"A{d - 1}",
                            [BaseExpr(i + 1)]))
    return tds


def test_e11_bench_chain_resolution(benchmark):
    """Owner map through a depth-32 chain (the draft-HPF cost)."""
    tds = _chain()
    pmap = benchmark(tds.owner_map, f"A{DEPTH}")
    assert pmap.shape == (N,)


def test_e11_bench_height1_resolution(benchmark):
    """Owner map through one height-1 alignment (the paper's model)."""
    ds = DataSpace(NP)
    ds.processors("PR", NP)
    ds.declare("BASE", N + DEPTH)
    ds.distribute("BASE", [Block()], to="PR")
    ds.declare("LEAF", N)
    ds.align(AlignSpec("LEAF", [AxisDummy("I")], "BASE",
                       [BaseExpr(Dummy("I") + DEPTH)]))
    pmap = benchmark(ds.owner_map, "LEAF")
    assert pmap.shape == (N,)
