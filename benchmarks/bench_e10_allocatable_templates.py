"""E10 — §8.2 problem 1: templates cannot handle allocatable arrays."""

from conftest import assert_and_print
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.distributions.cyclic import Cyclic


def test_e10_claims(experiment):
    assert_and_print(experiment("E10"))


def test_e10_bench_allocate_realign_cycle(benchmark):
    """The paper-model ALLOCATE/REALIGN/DEALLOCATE cycle templates
    cannot express, at N=32k."""
    ds = DataSpace(16)
    ds.processors("PR", 16)
    ds.declare("A", 65_536, dynamic=True)
    ds.distribute("A", [Cyclic(2)], to="PR")
    ds.declare("B", allocatable=True, dynamic=True, rank=1)
    spec = AlignSpec("B", [AxisDummy("I")], "A",
                     [BaseExpr(2 * Dummy("I"))])

    def cycle():
        ds.allocate("B", 32_000)
        ds.realign(spec)
        owners = ds.owners("B", (1000,))
        ds.deallocate("B")
        return owners

    owners = benchmark(cycle)
    assert owners == ds.owners("A", (2000,))
