"""E3 — GENERAL_BLOCK load balancing (§4.1.2).

Regenerates the imbalance table (BLOCK vs cost-balanced GENERAL_BLOCK on
triangular / power-law / stepped profiles) and times the balancing-bounds
computation plus the resulting partition evaluation.
"""


from conftest import assert_and_print
from repro.distributions.block import Block
from repro.distributions.general_block import GeneralBlock
from repro.fortran.triplet import Triplet
from repro.workloads.irregular import imbalance_of_partition, triangular_costs


def test_e03_claims(experiment):
    assert_and_print(experiment("E3"))


def _balance(n, np_):
    costs = triangular_costs(n)
    dim = Triplet(1, n)
    gb = GeneralBlock.balanced_for_costs(costs, np_).bind(dim, np_)
    owners = gb.owner_coord_array(dim.values())
    return imbalance_of_partition(costs, owners, np_)[0]


def test_e03_bench_balancing(benchmark):
    """Cost-balanced bounds + partition evaluation, N=1e6, P=64."""
    imbalance = benchmark(_balance, 1_000_000, 64)
    assert imbalance < 1.05


def test_e03_bench_block_baseline(benchmark):
    """The BLOCK baseline partition evaluation at the same size."""
    n, np_ = 1_000_000, 64
    costs = triangular_costs(n)
    dim = Triplet(1, n)
    block = Block().bind(dim, np_)

    def run():
        owners = block.owner_coord_array(dim.values())
        return imbalance_of_partition(costs, owners, np_)[0]

    imbalance = benchmark(run)
    assert imbalance > 1.5        # triangular costs: ~2x imbalance
