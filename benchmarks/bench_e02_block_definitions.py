"""E2 — BLOCK definitions: HPF ceiling vs Vienna balanced (§8 footnote)."""

from conftest import assert_and_print
from repro.distributions.block import Block, BlockVariant
from repro.fortran.triplet import Triplet


def test_e02_claims(experiment):
    assert_and_print(experiment("E2"))


def _drift_sweep(np_, n_values):
    out = []
    for n in n_values:
        for variant in (BlockVariant.HPF, BlockVariant.VIENNA):
            bp = Block(variant=variant).bind(Triplet(1, n), np_)
            bu = Block(variant=variant).bind(Triplet(0, n), np_)
            out.append(max(abs(bu.owner_coord(i) - bp.owner_coord(i))
                           for i in range(1, n + 1)))
    return out


def test_e02_bench_drift_sweep(benchmark):
    """Owner-drift sweep across 33 extents under both definitions
    (N ~ NP^2/2 so the divisible case shows cumulative drift)."""
    drifts = benchmark(_drift_sweep, 16, range(112, 145))
    assert max(drifts) >= 2       # the divisible case shows real drift
