"""E1 — §4 distribution-format examples (DESIGN.md §3).

Regenerates the ownership tables of the four §4 directives and times the
vectorized owner-map computation that underlies them.
"""

import numpy as np

from conftest import assert_and_print
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock


def test_e01_claims(experiment):
    assert_and_print(experiment("E1"))


def _owner_maps(n, np_):
    ds = DataSpace(np_)
    ds.processors("Q", np_)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.declare("C", n)
    ds.distribute("A", [Block()], to="Q")
    ds.distribute("B", [Cyclic(3)], to="Q")
    ds.distribute(
        "C", [GeneralBlock.balanced_for_costs(np.arange(1, n + 1), np_)],
        to="Q")
    return (ds.owner_map("A"), ds.owner_map("B"), ds.owner_map("C"))


def test_e01_bench_owner_maps(benchmark):
    """Owner-map throughput for BLOCK/CYCLIC(3)/GENERAL_BLOCK, N=1e6."""
    maps = benchmark(_owner_maps, 1_000_000, 64)
    assert all(m.shape == (1_000_000,) for m in maps)


def test_e01_bench_point_ownership(benchmark):
    """Scalar owners() lookups (the directive-semantics hot path)."""
    ds = DataSpace(16)
    ds.processors("Q", 16)
    ds.declare("A", 100_000)
    ds.distribute("A", [Cyclic(5)], to="Q")
    dist = ds.distribution_of("A")

    def probe():
        return [dist.owners((i,)) for i in range(1, 2002)]

    owners = benchmark(probe)
    assert len(owners) == 2001
