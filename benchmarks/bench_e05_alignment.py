"""E5 — §5.1 alignment examples (replication and collapse)."""

from conftest import assert_and_print
from repro.align.ast import Dummy
from repro.align.function import AlignmentFunction
from repro.align.reduce import reduce_alignment
from repro.align.spec import (
    AlignSpec, AxisColon, AxisDummy, AxisStar, BaseExpr, BaseStar,
    BaseTriplet,
)
from repro.fortran.domain import IndexDomain


def test_e05_claims(experiment):
    assert_and_print(experiment("E5"))


def test_e05_bench_reduction(benchmark):
    """§5.1 transformation pipeline on the paper's two examples."""
    n, m = 512, 512
    a_dom = IndexDomain.standard(n)
    d_dom = IndexDomain.standard(n, m)
    b_dom = IndexDomain.standard(n, m)
    e_dom = IndexDomain.standard(n)

    def run():
        r1 = reduce_alignment(
            AlignSpec("A", [AxisColon()], "D",
                      [BaseTriplet(), BaseStar()]), a_dom, d_dom)
        r2 = reduce_alignment(
            AlignSpec("B", [AxisColon(), AxisStar()], "E",
                      [BaseTriplet()]), b_dom, e_dom)
        return r1, r2

    r1, r2 = benchmark(run)
    assert len(r1.base_axes) == 2 and len(r2.base_axes) == 1


def test_e05_bench_image_arrays(benchmark):
    """Vectorized whole-domain alignment images (512x512 collapse)."""
    n, m = 512, 512
    spec = AlignSpec("B", [AxisDummy("I"), AxisStar()], "E",
                     [BaseExpr(Dummy("I"))])
    fn = AlignmentFunction(reduce_alignment(
        spec, IndexDomain.standard(n, m), IndexDomain.standard(n)))
    arr = benchmark(fn.image_arrays)
    assert arr.shape == (n * m, 1)
