"""E4 — CYCLIC(k) semantics (§4.1.3)."""

from conftest import assert_and_print
from repro.distributions.cyclic import Cyclic
from repro.fortran.triplet import Triplet


def test_e04_claims(experiment):
    assert_and_print(experiment("E4"))


def test_e04_bench_owned_sets(benchmark):
    """Regular-section owned-set enumeration for CYCLIC(4), N=1e5."""
    cd = Cyclic(4).bind(Triplet(1, 100_000), 16)

    def run():
        return [cd.owned(p) for p in range(16)]

    owned = benchmark(run)
    assert sum(len(t) for sets in owned for t in sets) == 100_000


def test_e04_bench_local_translation(benchmark):
    """local<->global round trips (the node-code addressing path)."""
    cd = Cyclic(3).bind(Triplet(1, 30_000), 8)

    def run():
        total = 0
        for i in range(1, 30_001, 7):
            p = cd.owner_coord(i)
            total += cd.global_index(p, cd.local_index(i))
        return total

    assert benchmark(run) > 0
