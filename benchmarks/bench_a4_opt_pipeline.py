"""Ablation A4 — the program-level optimizer pipeline (-O0 vs -O2).

Regenerates the optimizer PR's headline claim on both IR workloads: on
the 10-iteration Jacobi-with-residual loop and the two-level multigrid
V-cycle (P = 8, 4x2 grid), ``-O2`` moves at least 40% fewer words and
at least 50% fewer messages than ``-O0`` while the numerics stay
bit-identical, and the per-statement report attribution
(``words_by_pattern`` totals) is opt-level invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.engine.passes import ProgramRunner
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.multigrid import multigrid_program
from repro.workloads.stencil import jacobi_program

P = 8
GRID = (4, 2)


def _build(workload, n):
    if workload == "jacobi":
        ds, graph = jacobi_program(n, *GRID, iters=10)
    else:
        ds, graph = multigrid_program(n, *GRID, cycles=2)
    rng = np.random.default_rng(4)
    for name in ds.created_arrays():
        data = ds.arrays[name].data
        data[...] = rng.uniform(-2.0, 2.0, size=data.shape)
    return ds, graph


def _run(workload, n, opt_level):
    ds, graph = _build(workload, n)
    machine = DistributedMachine(MachineConfig(P))
    result = ProgramRunner(ds, machine, opt_level=opt_level).run(graph)
    return ds, machine, result


def test_a4_claims():
    rows = []
    for workload, n in (("jacobi", 64), ("multigrid", 64)):
        ds0, m0, r0 = _run(workload, n, 0)
        ds2, m2, r2 = _run(workload, n, 2)
        words_cut = 1.0 - m2.stats.total_words / m0.stats.total_words
        msgs_cut = (1.0 - m2.stats.total_messages
                    / m0.stats.total_messages)
        rows.append({
            "workload": workload,
            "words_O0": m0.stats.total_words,
            "words_O2": m2.stats.total_words,
            "msgs_O0": m0.stats.total_messages,
            "msgs_O2": m2.stats.total_messages,
            "words_cut": round(words_cut, 3),
            "msgs_cut": round(msgs_cut, 3),
        })
        # the acceptance thresholds
        assert words_cut >= 0.40
        assert msgs_cut >= 0.50
        # numerics and attribution are opt-level invariant
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds2.arrays[name].data,
                                          ds0.arrays[name].data)
        for rep0, rep2 in zip(r0.reports, r2.reports):
            assert rep0.words_by_pattern() == rep2.words_by_pattern()
    print()
    print(format_table(rows))


@pytest.mark.parametrize("opt_level", [0, 2], ids=["O0", "O2"])
def test_a4_bench_jacobi(benchmark, opt_level):
    def once():
        return _run("jacobi", 64, opt_level)[1].stats.total_words
    words = benchmark(once)
    assert words > 0
