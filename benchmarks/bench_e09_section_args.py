"""E9 — §8.1.2 array-section arguments (A(2:996:2) of CYCLIC(3) A)."""

from conftest import assert_and_print
from repro.core.dataspace import DataSpace
from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.distributions.cyclic import Cyclic
from repro.fortran.triplet import Triplet


def test_e09_claims(experiment):
    assert_and_print(experiment("E9"))


def _caller(n=100_000, np_=16):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.distribute("A", [Cyclic(3)], to="PR")
    return ds


def test_e09_bench_section_inheritance(benchmark):
    """Inheriting a strided section's mapping (restriction object)."""
    ds = _caller()
    proc = Procedure("SUB", [DummySpec("X", DummyMode.INHERIT)],
                     lambda frame, x: frame.distribution_of("X"))
    section = ("A", (Triplet(2, 99_996, 2),))
    rec = benchmark(proc.call, ds, section)
    assert rec.result is not None and not rec.entry_remaps


def test_e09_bench_inherited_owner_map(benchmark):
    """Owner map of an inherited strided-section distribution."""
    from repro.core.procedures import InheritedSectionDistribution
    ds = _caller()
    sec = ds.section("A", Triplet(2, 99_996, 2))
    inh = InheritedSectionDistribution(ds.distribution_of("A"), sec)
    pmap = benchmark(inh.primary_owner_map)
    assert pmap.shape == (49_998,)
