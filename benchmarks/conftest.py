"""Shared helpers for the benchmark suite.

Every benchmark file regenerates one paper artifact (DESIGN.md §3).  Each
file contains:

* a ``test_<id>_claims`` function that runs the experiment, asserts every
  paper-claim check and prints the regenerated table (visible with
  ``pytest benchmarks/ -s``);
* one or more ``test_<id>_bench_*`` functions that time the experiment's
  computational kernel with pytest-benchmark.

``pytest benchmarks/ --benchmark-only`` runs just the timed kernels;
``pytest benchmarks/`` runs both.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_experiment


@pytest.fixture(scope="session")
def experiment():
    """Run-and-cache experiments so claims tests don't recompute."""
    cache: dict = {}

    def run(exp_id: str, **kwargs):
        key = (exp_id, tuple(sorted(kwargs.items())))
        if key not in cache:
            cache[key] = run_experiment(exp_id, **kwargs)
        return cache[key]

    return run


def assert_and_print(result) -> None:
    print()
    print(result.render())
    failing = [k for k, v in result.checks.items() if not v]
    assert not failing, f"{result.experiment} failing checks: {failing}"
