"""Ablation A2 — user-defined (INDIRECT) distributions close the §8.1.2
expressiveness gap.

"HPF cannot ... describe explicitly every distribution that it can
actually generate."  With the INDIRECT extension, the inherited
distribution of A(2:996:2) (CYCLIC(3) parent) *is* directly expressible;
this ablation verifies the equivalence and measures what the generality
costs: INDIRECT owner lookups stay O(1), but its owned sets decompose
into many regular pieces, so analytic comm sets degrade gracefully
toward the oracle.
"""

import numpy as np

from repro.bench.harness import format_table
from repro.core.dataspace import DataSpace
from repro.core.procedures import InheritedSectionDistribution
from repro.distributions.cyclic import Cyclic
from repro.distributions.indirect import Indirect
from repro.engine.commsets import (
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.fortran.section import full_section
from repro.fortran.triplet import Triplet


def _inherited_mapping(n=1000, np_=4):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.distribute("A", [Cyclic(3)], to="PR")
    sec = ds.section("A", Triplet(2, n - 4, 2))
    inherited = InheritedSectionDistribution(ds.distribution_of("A"), sec)
    return ds, inherited


def test_a2_claims():
    ds, inherited = _inherited_mapping()
    mapping = inherited.primary_owner_map()
    ds.declare("X", len(mapping))
    ds.distribute("X", [Indirect(mapping)], to="PR")
    direct = ds.distribution_of("X")
    assert np.array_equal(direct.primary_owner_map(), mapping)

    # comm sets against a CYCLIC operand: analytic (with a generous
    # piece budget) must equal the oracle
    ds.declare("Y", len(mapping))
    ds.distribute("Y", [Cyclic()], to="PR")
    sec = full_section(ds.arrays["X"].domain)
    m1, _, _ = comm_matrix(direct, sec, ds.distribution_of("Y"), sec, 4)
    pieces = analytic_comm_sets(direct, sec, ds.distribution_of("Y"),
                                sec, piece_limit=4096)
    m2 = words_matrix_from_pieces(pieces, 4)
    np.testing.assert_array_equal(m1, m2)

    rows = [{
        "spec": "INDIRECT(inherited map of A(2:996:2))",
        "equals_inherited": True,
        "analytic_pieces": len(pieces),
    }]
    print()
    print("== A2: INDIRECT expressiveness ablation ==")
    print(format_table(rows))


def test_a2_bench_indirect_owner_map(benchmark):
    rng = np.random.default_rng(23)
    n, np_ = 200_000, 16
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("X", n)
    ds.distribute("X", [Indirect(rng.integers(0, np_, size=n))],
                  to="PR")
    pmap = benchmark(ds.owner_map, "X")
    assert pmap.shape == (n,)


def test_a2_bench_indirect_vs_cyclic_lookup(benchmark):
    """Point lookups through the mapping array (O(1), like CYCLIC)."""
    rng = np.random.default_rng(29)
    n, np_ = 100_000, 8
    dd = Indirect(rng.integers(0, np_, size=n)).bind(Triplet(1, n), np_)

    def probe():
        return sum(dd.owner_coord(i) for i in range(1, n, 37))

    assert benchmark(probe) >= 0
