"""Ablation A3 — the §8 footnote measured on the machine.

The BLOCK-definition choice (HPF ceiling vs Vienna balanced) is a design
decision DESIGN.md calls out; this ablation sweeps N around multiples of
the per-dimension processor count and measures staggered-stencil traffic
under both.  The HPF definition's traffic spikes ~3x exactly at the
divisible extents; the Vienna definition is flat — quantifying the
footnote's "will cause a problem if and only if the number of processors
divides N exactly".
"""

from repro.bench.harness import format_table
from repro.engine.executor import SimulatedExecutor
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import staggered_grid_case


def _words(strategy, n, grid=4):
    case = staggered_grid_case(n, grid, grid, strategy)
    machine = DistributedMachine(MachineConfig(grid * grid))
    return SimulatedExecutor(case.ds, machine).execute(
        case.statement).total_words


def test_a3_claims():
    rows = []
    for n in (30, 31, 32, 33, 36, 40):
        hpf = _words("direct-hpf-block", n)
        vienna = _words("direct-block", n)
        divisible = n % 4 == 0
        rows.append({"N": n, "4_divides_N": divisible,
                     "hpf_words": hpf, "vienna_words": vienna,
                     "ratio": f"{hpf / vienna:.2f}"})
        assert (hpf > vienna) == divisible
        if divisible:
            assert hpf >= 2 * vienna
    print()
    print("== A3: BLOCK-definition ablation (staggered stencil words) ==")
    print(format_table(rows))


def test_a3_bench_sweep(benchmark):
    def sweep():
        return [_words("direct-block", n) for n in range(30, 38)]

    words = benchmark(sweep)
    assert len(words) == 8
