"""Ablation A1 — ghost-region (overlap) execution vs naive per-reference
traffic.

SUPERB [11] introduced overlap areas; the paper's compilation-technology
citation [13] relies on them.  This ablation compares the two execution
modes of the simulated executor on the Jacobi and width-2 stencils:
overlap trades slightly higher volume (full halo strips) for far fewer,
larger messages — exactly the trade the alpha-beta model rewards.
"""


from repro.bench.harness import format_table
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import jacobi_case


def _width2_stmt(n):
    return Assignment(
        ArrayRef("B", (Triplet(3, n - 2),)),
        ArrayRef("A", (Triplet(1, n - 4),))
        + ArrayRef("A", (Triplet(2, n - 3),))
        + ArrayRef("A", (Triplet(4, n - 1),))
        + ArrayRef("A", (Triplet(5, n),)))


def _width2_ds(n, np_):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Block()], to="PR")
    return ds


def test_a1_claims():
    config = MachineConfig(16)
    rows = []
    for label, make in (
            ("jacobi-512", lambda: (jacobi_case(512, 4, 4).ds,
                                    jacobi_case(512, 4, 4).statement)),
            ("width2-4096", lambda: (_width2_ds(4096, 16),
                                     _width2_stmt(4096)))):
        ds, stmt = make()
        naive = DistributedMachine(config)
        SimulatedExecutor(ds, naive).execute(stmt)
        halo = DistributedMachine(config)
        SimulatedExecutor(ds, halo, use_overlap=True).execute(stmt)
        rows.append({
            "workload": label,
            "naive_msgs": naive.stats.total_messages,
            "halo_msgs": halo.stats.total_messages,
            "naive_words": naive.stats.total_words,
            "halo_words": halo.stats.total_words,
            "naive_time": f"{naive.stats.estimated_time(config):.0f}",
            "halo_time": f"{halo.stats.estimated_time(config):.0f}",
        })
        assert halo.stats.total_messages <= naive.stats.total_messages
        assert (halo.stats.estimated_time(config)
                <= naive.stats.estimated_time(config) * 1.05)
    print()
    print("== A1: overlap (ghost region) ablation ==")
    print(format_table(rows))


def test_a1_bench_overlap_execution(benchmark):
    case = jacobi_case(512, 4, 4)
    machine = DistributedMachine(MachineConfig(16))
    ex = SimulatedExecutor(case.ds, machine, use_overlap=True)
    report = benchmark(ex.execute, case.statement)
    assert report.strategies.get("*") == "overlap"


def test_a1_bench_naive_execution(benchmark):
    case = jacobi_case(512, 4, 4)
    machine = DistributedMachine(MachineConfig(16))
    ex = SimulatedExecutor(case.ds, machine)
    report = benchmark(ex.execute, case.statement)
    assert report.total_words > 0
