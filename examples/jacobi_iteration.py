#!/usr/bin/env python3
"""Iterative Jacobi relaxation with ghost-region (overlap) execution.

Runs K sweeps of the 5-point Jacobi stencil on a BLOCK x BLOCK grid,
comparing naive per-reference communication with SUPERB-style halo
exchanges, and tracks numeric convergence against the sequential
semantics (they are identical by construction — the simulator validates
numerics against the reference executor).

Run:  python examples/jacobi_iteration.py [N] [iterations]
"""

import sys

import numpy as np

from repro.bench.harness import format_table
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import jacobi_case


def main(n: int = 128, iterations: int = 20) -> None:
    rows_cols = (4, 4)
    config = MachineConfig(16)
    results = {}
    for mode, use_overlap in (("naive", False), ("halo", True)):
        case = jacobi_case(n, *rows_cols)
        ds = case.ds
        # hot boundary, cold interior
        ds.arrays["X"].data[:] = 0.0
        ds.arrays["X"].data[0, :] = 100.0
        ds.arrays["XNEW"].data[:] = ds.arrays["X"].data
        machine = DistributedMachine(config)
        ex = SimulatedExecutor(ds, machine, use_overlap=use_overlap)
        inner = Triplet(2, n - 1)
        back = Assignment(ArrayRef("X", (inner, inner)),
                          ArrayRef("XNEW", (inner, inner)))
        residual = None
        for _ in range(iterations):
            before = ds.arrays["X"].data.copy()
            ex.execute(case.statement)   # XNEW = average of neighbours
            ex.execute(back)             # X = XNEW (same mapping: free)
            residual = float(np.abs(ds.arrays["X"].data - before).max())
        results[mode] = (machine, residual, ds.arrays["X"].data.copy())

    naive_m, naive_res, naive_x = results["naive"]
    halo_m, halo_res, halo_x = results["halo"]
    assert np.array_equal(naive_x, halo_x), "numerics must be identical"

    table = [{
        "mode": mode,
        "messages": m.stats.total_messages,
        "words": m.stats.total_words,
        "est_time": f"{m.stats.estimated_time(config):.0f}",
        "final_residual": f"{res:.4f}",
    } for mode, (m, res, _) in results.items()]
    print(f"Jacobi {n}x{n}, {iterations} sweeps, 4x4 processors")
    print(format_table(table))
    print()
    print("halo mode exchanges full boundary strips once per sweep; the")
    print("alpha-beta machine rewards the fewer, larger messages.")
    print(f"temperature at centre after {iterations} sweeps: "
          f"{naive_x[n // 2, n // 2]:.6f}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    main(n, iters)
